"""Ablations (ours, per DESIGN.md): design choices GBR depends on.

1. Variable order: dependency order vs raw declaration order — the
   paper proves termination for any order but notes quality depends on
   picking < well (§4.4's suboptimality example).
2. Prefix search: binary search vs a linear scan — the log-factor in
   the predicate-invocation budget.
3. The learned-clause machinery: how many iterations (learned sets) GBR
   needs per instance.
"""

from repro.decompiler.oracle import build_reduction_problem
from repro.harness.metrics import geometric_mean
from repro.reduction import (
    declaration_order,
    generalized_binary_reduction,
)
from repro.reduction.predicate import InstrumentedPredicate


def _instances(corpus, limit=4):
    pairs = []
    for benchmark in corpus:
        for instance in benchmark.instances:
            pairs.append((benchmark, instance))
    return pairs[:limit]


def test_bench_variable_order_ablation(benchmark, corpus, emit):
    pairs = _instances(corpus)

    def run(order_kind):
        sizes, calls = [], []
        for bench, instance in pairs:
            problem = build_reduction_problem(
                bench.app, instance.oracle.decompiler
            )
            order = (
                declaration_order(problem.variables)
                if order_kind == "declaration"
                else None
            )
            result = generalized_binary_reduction(problem, order=order)
            sizes.append(max(len(result.solution), 1))
            calls.append(result.predicate_calls)
        return geometric_mean(sizes), geometric_mean(calls)

    dep_sizes, dep_calls = benchmark.pedantic(
        run, args=("dependency",), rounds=1, iterations=1
    )
    dec_sizes, dec_calls = run("declaration")
    emit(
        "ablation_variable_order",
        "\n".join(
            [
                "Ablation: variable order < for MSA/progressions",
                "-----------------------------------------------",
                f"dependency order : geo-mean {dep_sizes:7.1f} items kept, "
                f"{dep_calls:6.1f} predicate runs",
                f"declaration order: geo-mean {dec_sizes:7.1f} items kept, "
                f"{dec_calls:6.1f} predicate runs",
            ]
        ),
    )


def test_bench_prefix_search_ablation(benchmark, corpus, emit):
    """Binary vs linear prefix search: same answers, different budgets."""
    import repro.reduction.gbr as gbr_module

    pairs = _instances(corpus)
    original = gbr_module._shortest_satisfying_prefix

    def linear(predicate, progression):
        for r in range(1, len(progression)):
            if predicate(progression.prefix_union(r)):
                return r
        raise gbr_module.ReductionError("predicate not monotone")

    def run_all():
        collected = []
        for label, finder in (("binary", original), ("linear", linear)):
            gbr_module._shortest_satisfying_prefix = finder
            try:
                calls = []
                for bench, instance in pairs:
                    problem = build_reduction_problem(
                        bench.app, instance.oracle.decompiler
                    )
                    result = generalized_binary_reduction(problem)
                    calls.append(result.predicate_calls)
                collected.append((label, geometric_mean(calls)))
            finally:
                gbr_module._shortest_satisfying_prefix = original
        return collected

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    emit(
        "ablation_prefix_search",
        "\n".join(
            ["Ablation: prefix search inside GBR", "-" * 34]
            + [
                f"{label:<7s}: geo-mean {calls:6.1f} predicate runs"
                for label, calls in rows
            ]
        ),
    )
    assert rows[0][1] <= rows[1][1] * 1.05  # binary never meaningfully worse


def test_bench_learned_set_counts(benchmark, corpus, emit):
    """How many learned sets (iterations) GBR needs per instance."""
    def run_all():
        collected = []
        for bench, instance in _instances(corpus, limit=6):
            problem = build_reduction_problem(
                bench.app, instance.oracle.decompiler
            )
            result = generalized_binary_reduction(problem)
            collected.append(
                f"{bench.benchmark_id}/{instance.decompiler}: "
                f"{result.iterations} learned sets, "
                f"{result.predicate_calls} predicate runs, "
                f"{len(result.solution)} items kept"
            )
        return collected

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "ablation_learned_sets",
        "\n".join(["GBR learned-set counts", "-" * 22] + rows),
    )

"""BENCH_9: the process-parallel corpus scheduler at scale.

Three claims, measured:

1. **Corpus wall speedup.**  On a latency-bound corpus (``--corpus-jobs
   8`` worker processes overlapping real per-probe tool latency), the
   scheduler beats the ``jobs=1`` serial runner by >= 3x wall clock
   while producing byte-identical per-instance results (everything but
   ``real_seconds`` and the placement-dependent store residency
   counters — see ``outcome_signature``).  Chaos and warm-store lanes
   assert the same identity under fault injection and a shared warm
   predicate store.
2. **Distributional fidelity.**  The ``CorpusConfig.njr()`` profile's
   geo-mean classes / bytes / items / clauses land within tolerance of
   the paper's Table 1 statistics (184 classes, 285 KB, 2.9k items,
   8.7k clauses), checked over a generated sample.
3. **Streaming report.**  Outcomes stream through ``ResultsWriter`` to
   JSONL and ``report_from_results`` reproduces the same aggregates as
   the in-memory outcome list.

Usage::

    PYTHONPATH=src python benchmarks/bench_corpus_scale.py            # measure, write BENCH_9.json
    PYTHONPATH=src python benchmarks/bench_corpus_scale.py --check    # assert committed numbers still hold
"""

from __future__ import annotations

import argparse
import json
import math
import os
import statistics
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.harness.experiments import (  # noqa: E402
    ExperimentConfig,
    outcome_signature,
    run_corpus_experiment,
)
from repro.harness.report import (  # noqa: E402
    ResultsWriter,
    StreamingReport,
    report_from_results,
)
from repro.parallel.scheduler import (  # noqa: E402
    StoreSpec,
    run_scheduled_corpus_experiment,
)
from repro.resilience import FaultPlan  # noqa: E402
from repro.workloads.corpus import (  # noqa: E402
    PAPER_GEO_BYTES,
    PAPER_GEO_CLASSES,
    PAPER_GEO_CLAUSES,
    PAPER_GEO_ITEMS,
    CorpusConfig,
    build_corpus,
)

HERE = os.path.dirname(os.path.abspath(__file__))
BENCH_PATH = os.path.join(HERE, "BENCH_9.json")

#: The latency-bound bench corpus: enough instances to keep 8 workers
#: busy, apps small enough that per-probe CPU stays well under the
#: simulated tool latency (the 1-CPU worst case: all speedup must come
#: from overlapping the sleeps, none from extra cores).
CORPUS_BENCHMARKS = 64
TOOL_LATENCY = 0.02
CORPUS_JOBS = 8

SPEEDUP_GATE = 3.0
FIDELITY_TOLERANCE = 0.12  # geo-means within 12% of the paper's
FIDELITY_SAMPLE = 30


def _bench_corpus():
    config = CorpusConfig(
        num_benchmarks=CORPUS_BENCHMARKS,
        min_classes=10,
        max_classes=24,
        decompilers=("alpha", "beta"),
    )
    return build_corpus(config)


def _bench_config(**overrides) -> ExperimentConfig:
    base = dict(
        strategies=("our-reducer",),
        tool_latency_seconds=TOOL_LATENCY,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def measure_speedup() -> dict:
    corpus = _bench_corpus()
    config = _bench_config()
    instances = sum(len(b.instances) for b in corpus)

    start = time.perf_counter()
    serial = run_corpus_experiment(corpus, config)
    serial_wall = time.perf_counter() - start

    start = time.perf_counter()
    pooled = run_scheduled_corpus_experiment(
        benchmarks=corpus, config=config, jobs=CORPUS_JOBS
    )
    pooled_wall = time.perf_counter() - start

    identical = [outcome_signature(o) for o in serial] == [
        outcome_signature(o) for o in pooled
    ]
    return {
        "benchmarks": len(corpus),
        "instances": instances,
        "corpus_jobs": CORPUS_JOBS,
        "tool_latency_seconds": TOOL_LATENCY,
        "serial_wall_seconds": round(serial_wall, 3),
        "pooled_wall_seconds": round(pooled_wall, 3),
        "speedup": round(serial_wall / pooled_wall, 3),
        "results_identical": identical,
    }


def measure_lanes() -> dict:
    """Chaos and warm-store identity lanes (smaller corpus, no latency)."""
    corpus = build_corpus(
        CorpusConfig(
            num_benchmarks=6, min_classes=8, max_classes=16,
            decompilers=("alpha", "beta"),
        )
    )
    lanes = {}

    chaos_config = _bench_config(
        tool_latency_seconds=0.0,
        chaos=FaultPlan(kind="flaky", rate=0.2, seed=7),
        retries=3,
        keep_going=True,
    )
    serial = run_corpus_experiment(corpus, chaos_config)
    pooled = run_scheduled_corpus_experiment(
        benchmarks=corpus, config=chaos_config, jobs=4
    )
    lanes["chaos_identical"] = [outcome_signature(o) for o in serial] == [
        outcome_signature(o) for o in pooled
    ]

    with tempfile.TemporaryDirectory() as tmp:
        spec = StoreSpec(path=os.path.join(tmp, "store"))
        warm_config = _bench_config(tool_latency_seconds=0.0)
        # Warm the store, then compare a warm serial and a warm pooled run.
        run_scheduled_corpus_experiment(
            benchmarks=corpus, config=warm_config, jobs=1, store_spec=spec
        )
        warm_serial = run_scheduled_corpus_experiment(
            benchmarks=corpus, config=warm_config, jobs=1, store_spec=spec
        )
        warm_pooled = run_scheduled_corpus_experiment(
            benchmarks=corpus, config=warm_config, jobs=4, store_spec=spec
        )
        lanes["warm_store_identical"] = [
            outcome_signature(o) for o in warm_serial
        ] == [outcome_signature(o) for o in warm_pooled]
        lanes["warm_store_zero_fresh_probes"] = all(
            o.predicate_calls == 0 for o in warm_pooled
        )
    return lanes


def measure_fidelity(sample: int = FIDELITY_SAMPLE) -> dict:
    from repro.bytecode.constraints import generate_constraints
    from repro.bytecode.items import items_of
    from repro.bytecode.metrics import application_size_bytes
    from repro.workloads.corpus import build_benchmark

    config = CorpusConfig.njr()

    def geo(values):
        return math.exp(statistics.mean(math.log(v) for v in values))

    classes, sizes, items, clauses = [], [], [], []
    for index in range(sample):
        benchmark = build_benchmark(index, config)
        classes.append(len(benchmark.app.classes))
        sizes.append(application_size_bytes(benchmark.app))
        items.append(len(items_of(benchmark.app)))
        clauses.append(len(generate_constraints(benchmark.app).clauses))

    measured = {
        "classes": geo(classes),
        "bytes": geo(sizes),
        "items": geo(items),
        "clauses": geo(clauses),
    }
    targets = {
        "classes": PAPER_GEO_CLASSES,
        "bytes": PAPER_GEO_BYTES,
        "items": PAPER_GEO_ITEMS,
        "clauses": PAPER_GEO_CLAUSES,
    }
    deviations = {
        key: measured[key] / targets[key] - 1.0 for key in targets
    }
    return {
        "sample": sample,
        "geo_means": {k: round(v, 1) for k, v in measured.items()},
        "paper_geo_means": targets,
        "deviations": {k: round(v, 4) for k, v in deviations.items()},
        "within_tolerance": all(
            abs(v) <= FIDELITY_TOLERANCE for v in deviations.values()
        ),
        "tolerance": FIDELITY_TOLERANCE,
    }


def measure_streaming() -> dict:
    corpus = build_corpus(
        CorpusConfig(num_benchmarks=4, min_classes=8, max_classes=14,
                     decompilers=("alpha",))
    )
    config = _bench_config(tool_latency_seconds=0.0)
    with tempfile.TemporaryDirectory() as tmp:
        results_path = os.path.join(tmp, "results.jsonl")
        with ResultsWriter(results_path) as writer:
            count = run_scheduled_corpus_experiment(
                benchmarks=corpus, config=config, jobs=2,
                on_outcome=writer.write, collect=False,
            )
        replayed = report_from_results(results_path)
        reference = StreamingReport()
        for outcome in run_corpus_experiment(corpus, config):
            reference.add(outcome)
        return {
            "rows_streamed": count,
            "replay_matches_inline": replayed.render() == reference.render(),
        }


def run_bench() -> dict:
    print("BENCH_9: corpus scheduler at scale", flush=True)
    speedup = measure_speedup()
    print(
        f"  speedup: {speedup['speedup']}x "
        f"({speedup['serial_wall_seconds']}s -> "
        f"{speedup['pooled_wall_seconds']}s, "
        f"identical={speedup['results_identical']})",
        flush=True,
    )
    lanes = measure_lanes()
    print(f"  lanes: {lanes}", flush=True)
    fidelity = measure_fidelity()
    print(
        f"  fidelity: {fidelity['geo_means']} "
        f"(deviation {fidelity['deviations']})",
        flush=True,
    )
    streaming = measure_streaming()
    print(f"  streaming: {streaming}", flush=True)
    return {
        "bench": "corpus_scale",
        "speedup_gate": SPEEDUP_GATE,
        "speedup": speedup,
        "lanes": lanes,
        "fidelity": fidelity,
        "streaming": streaming,
    }


def check(results: dict) -> list:
    failures = []
    speedup = results["speedup"]
    if speedup["speedup"] < results.get("speedup_gate", SPEEDUP_GATE):
        failures.append(
            f"corpus speedup {speedup['speedup']}x < "
            f"{results.get('speedup_gate', SPEEDUP_GATE)}x gate"
        )
    if not speedup["results_identical"]:
        failures.append("pooled results differ from serial run")
    for lane, passed in results["lanes"].items():
        if not passed:
            failures.append(f"lane failed: {lane}")
    if not results["fidelity"]["within_tolerance"]:
        failures.append(
            f"distributional fidelity out of tolerance: "
            f"{results['fidelity']['deviations']}"
        )
    if not results["streaming"]["replay_matches_inline"]:
        failures.append("streamed report replay diverged")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-measure and fail if any gate regresses",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=BENCH_PATH,
        help="where to write the measured payload "
        "(default: benchmarks/BENCH_9.json)",
    )
    args = parser.parse_args()

    results = run_bench()
    failures = check(results)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}", flush=True)
    if failures:
        prefix = "FAIL" if args.check else "WARNING"
        for failure in failures:
            print(f"{prefix}: {failure}", flush=True)
        return 1
    if args.check:
        print("BENCH_9 gates hold", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())

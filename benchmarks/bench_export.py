"""Machine-readable export of every evaluation series.

Writes the outcome table, the Figure 8a CFD series, and the Figure 8b
timeline series as CSVs under ``benchmarks/artifacts/csv/`` so the
figures can be re-plotted with any tool.
"""

import pathlib

from repro.harness import export_all

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts" / "csv"


def test_bench_csv_export(benchmark, outcomes, emit):
    written = benchmark.pedantic(
        export_all, args=(outcomes, ARTIFACTS), rounds=1, iterations=1
    )
    assert set(written) >= {"outcomes", "cfd_bytes", "timeline"}
    listing = "\n".join(
        f"  {name}: {path}" for name, path in sorted(written.items())
    )
    emit("csv_export", "CSV series written:\n" + listing)

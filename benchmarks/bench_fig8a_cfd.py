"""Figure 8a — cumulative frequency diagrams.

Three panels: time spent, final relative size in classes, and final
relative size in bytes, per strategy.  "In all figures, steeper is
better."  The quantile rows below are the text rendering of each curve.
"""

from repro.harness import render_cfd_table, run_instance
from repro.harness.experiments import ExperimentConfig


def test_bench_single_instance_our_reducer(benchmark, corpus):
    benchmark_obj = next(b for b in corpus if b.instances)
    instance = benchmark_obj.instances[0]
    outcome = benchmark.pedantic(
        run_instance,
        args=(benchmark_obj, instance, "our-reducer", ExperimentConfig()),
        rounds=1,
        iterations=1,
    )
    assert outcome.relative_bytes <= 1.0


def test_bench_fig8a_tables(benchmark, outcomes, emit):
    def render_all():
        return "\n\n".join(
            [
                render_cfd_table(
                    outcomes, "time", "Figure 8a-1: time spent (simulated)"
                ),
                render_cfd_table(
                    outcomes,
                    "classes",
                    "Figure 8a-2: final relative size (classes) "
                    "[paper geo-means: ours 8.4%, J-Reduce 22.8%]",
                ),
                render_cfd_table(
                    outcomes,
                    "bytes",
                    "Figure 8a-3: final relative size (bytes) "
                    "[paper geo-means: ours 4.6%, J-Reduce 24.3%]",
                ),
            ]
        )

    text = benchmark(render_all)
    emit("fig8a_cfd", text)

"""Figure 8b — mean reduction over time.

"We can stop both algorithms at any point in the execution and use the
smallest input until that point"; the figure plots the mean reduction
factor against time.  Our time axis is the simulated clock (33 s per
fresh decompile+compile, the paper's average).
"""

from repro.harness import mean_reduction_over_time, render_timeline
from repro.harness.report import by_strategy


def test_bench_fig8b_series(benchmark, outcomes, emit):
    groups = by_strategy(outcomes)
    horizon = max(o.simulated_seconds for o in outcomes)
    grid = [horizon * i / 15 for i in range(16)]

    def build_series():
        return {
            name: mean_reduction_over_time(group, grid=grid)
            for name, group in groups.items()
            if name in ("our-reducer", "jreduce")
        }

    series = benchmark(build_series)
    ours_end = series["our-reducer"][-1][1]
    jreduce_end = series["jreduce"][-1][1]
    assert ours_end > jreduce_end  # our curve ends much lower/deeper
    emit("fig8b_timeline", render_timeline(series))


def test_bench_fixed_budget_comparison(benchmark, outcomes, emit):
    """Paper: 'If we only want the amount of reduction produced by
    J-Reduce, we can achieve that with our reducer in only 6 minutes' —
    the time our reducer needs to match J-Reduce's final factor."""
    from repro.harness.timeline import reduction_factor_at

    def compute():
        groups = by_strategy(outcomes)
        ours = {
            (o.benchmark_id, o.decompiler): o for o in groups["our-reducer"]
        }
        times = []
        for jr in groups["jreduce"]:
            mine = ours.get((jr.benchmark_id, jr.decompiler))
            if mine is None:
                continue
            target = jr.total_bytes / max(jr.final_bytes, 1)
            when = mine.simulated_seconds
            for (t, _size) in mine.timeline:
                if reduction_factor_at(mine, t) >= target:
                    when = t
                    break
            times.append(when / 60.0)
        times.sort()
        return times[len(times) // 2]

    median = benchmark(compute)
    emit(
        "fig8b_fixed_budget",
        "\n".join(
            [
                "Fixed-budget comparison",
                "-----------------------",
                f"median time for our reducer to match J-Reduce's final "
                f"reduction: {median:.1f} minutes (paper: ~6 minutes, "
                "below 10% of J-Reduce's total running time)",
            ]
        ),
    )

"""Section 5 headline numbers.

Paper: "Our tool reduces Java bytecode to 4.6% of its original size,
which is 5.3 times better than the 24.3% achieved by J-Reduce.  It does
this while only being 3.1 times slower."
"""

from repro.harness import render_headline
from repro.harness.metrics import geometric_mean
from repro.harness.report import by_strategy


def test_bench_headline(benchmark, outcomes, emit):
    text = benchmark(render_headline, outcomes)
    emit("headline", text)

    groups = by_strategy(outcomes)
    ours = geometric_mean(
        [o.relative_bytes for o in groups["our-reducer"]]
    )
    jreduce = geometric_mean([o.relative_bytes for o in groups["jreduce"]])
    # The qualitative claims of the paper, asserted:
    assert ours < 0.25, "our reducer should reach deep reduction"
    assert jreduce / ours > 2.0, "our reducer should beat J-Reduce clearly"
    time_ours = geometric_mean(
        [o.simulated_seconds for o in groups["our-reducer"]]
    )
    time_jreduce = geometric_mean(
        [o.simulated_seconds for o in groups["jreduce"]]
    )
    assert time_ours > time_jreduce, "the extra reduction costs extra runs"

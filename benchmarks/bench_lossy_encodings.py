"""Section 4.3 / 5 — the two lossy encodings.

Paper: execution times within a few percent of our reducer; the first
variant produces 5% more bytes and the second 8% more; our reducer is
strictly better than them on 48% / 51% of benchmarks (79% / 84% for
benchmarks with at least 5% non-graph constraints).
"""

from repro.bytecode.constraints import generate_constraints
from repro.harness import render_lossy_comparison
from repro.harness.report import by_strategy
from repro.reduction import LossyVariant, lossy_reduce
from repro.decompiler.oracle import build_reduction_problem


def test_bench_lossy_comparison(benchmark, outcomes, emit):
    text = benchmark(render_lossy_comparison, outcomes)
    emit("lossy_encodings", text)
    groups = by_strategy(outcomes)
    assert groups.get("lossy-first") and groups.get("lossy-last")


def test_bench_lossy_reduce_one_instance(benchmark, corpus):
    benchmark_obj = next(b for b in corpus if b.instances)
    instance = benchmark_obj.instances[0]
    problem = build_reduction_problem(
        benchmark_obj.app, instance.oracle.decompiler
    )
    result = benchmark.pedantic(
        lossy_reduce,
        args=(problem, LossyVariant.FIRST),
        rounds=1,
        iterations=1,
    )
    assert problem.constraint.satisfied_by(result.solution)


def test_bench_non_graph_fraction_split(benchmark, outcomes, corpus, emit):
    """The paper's refinement: the gap grows on instances with >= 5%
    non-graph constraints."""
    def compute_fractions():
        out = {}
        for bench in corpus:
            if not bench.instances:
                continue
            cnf = generate_constraints(bench.app)
            out[bench.benchmark_id] = 1.0 - cnf.graph_clause_fraction()
        return out

    fractions = benchmark(compute_fractions)

    groups = by_strategy(outcomes)
    ours = {(o.benchmark_id, o.decompiler): o for o in groups["our-reducer"]}
    lines = [
        "Strictly-better split by non-graph fraction",
        "-------------------------------------------",
    ]
    for variant in ("lossy-first", "lossy-last"):
        rich = poor = rich_better = poor_better = 0
        for outcome in groups.get(variant, ()):
            mine = ours.get((outcome.benchmark_id, outcome.decompiler))
            if mine is None:
                continue
            non_graph = fractions.get(outcome.benchmark_id, 0.0)
            better = mine.final_bytes < outcome.final_bytes
            if non_graph >= 0.05:
                rich += 1
                rich_better += int(better)
            else:
                poor += 1
                poor_better += int(better)
        lines.append(
            f"{variant}: >=5% non-graph: "
            f"{rich_better}/{rich} strictly better; "
            f"<5% non-graph: {poor_better}/{poor} "
            "(paper: the >=5% group rises to 79%/84%)"
        )
    emit("lossy_non_graph_split", "\n".join(lines))

"""Probe-pipeline benchmark: speculative search + materialization memos.

Emits ``BENCH_5.json`` with end-to-end corpus cost and raw probe
materialization rates on two workloads:

- **corpus_end_to_end** — every ``our-reducer`` instance of a seeded
  corpus reduced three ways: an inline replica of the PR-4 sequential
  stack (raw ``reduce_application`` + ``serialize_application`` per
  probe, strictly sequential binary search), the current sequential
  stack (materialization memos, ``--speculate 1``), and the speculative
  stack (``--speculate 4`` on a shared probe pool).  The headline
  number is the **simulated-seconds speedup** — the repo's end-to-end
  clock, charging the paper's 33-second decompile+compile per fresh
  predicate round (max-of-batch for speculative rounds) — because the
  simulated decompilers run in microseconds and the GIL hides thread
  overlap from wall time.  Final bytes/classes/status equality across
  all three runs is asserted, not assumed.
- **probe_materialization** — a physical probe stream recorded from a
  real GBR run, replayed through the PR-4 path (materialize the
  sub-application, serialize every class from scratch) and through the
  memoized fast path (:class:`~repro.bytecode.serializer
  .ApplicationSerializer`), both producing the full bytes so equality
  is asserted on the timed outputs.  ``size_of_items`` — the harness's
  actual per-query hot path, which never assembles bytes — is timed as
  a third lane.

Run it directly (pytest does not collect it — ``testpaths`` excludes
``benchmarks/`` and everything here is ``__main__``-guarded)::

    PYTHONPATH=src python benchmarks/bench_probe_pipeline.py --out BENCH_5.json

CI regression gate: ``--check BENCH_5.json`` compares a fresh run
against the committed baseline and exits non-zero when the corpus
simulated speedup fell below ``--min-corpus-speedup`` (default 2x), the
materialization speedup fell below ``--min-speedup`` (default 3x), or
the memoized probe rate regressed more than ``--tolerance`` (default
20%) against the baseline's machine-dependent rate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.bytecode.metrics import application_size_bytes
from repro.bytecode.reducer import reduce_application
from repro.bytecode.serializer import (
    ApplicationSerializer,
    serialize_application,
)
from repro.decompiler.oracle import build_reduction_problem
from repro.harness import ExperimentConfig, probe_pool, run_instance
from repro.reduction import (
    InstrumentedPredicate,
    ReductionProblem,
    generalized_binary_reduction,
)
from repro.workloads.corpus import CorpusConfig, build_corpus

SEED = 2021

SPECULATE_COUNTERS = (
    "speculate.rounds",
    "speculate.probes_useful",
    "speculate.probes_wasted",
    "gbr.probes",
    "gbr.probes_cached",
    "serializer.memo_hits",
    "serializer.memo_misses",
    "closure.memo_hits",
    "closure.memo_misses",
)


def pr4_sequential_replica(benchmark, instance):
    """One instance through the pre-memo, pre-speculation stack.

    Mirrors PR-4's ``run_instance`` exactly: the oracle predicate
    materializes via a fresh :func:`reduce_application` per probe,
    ``size_of`` serializes the whole sub-application from scratch, and
    GBR runs the strictly sequential binary search.
    """
    app = benchmark.app
    oracle = instance.oracle
    problem = build_reduction_problem(app, oracle.decompiler)

    def raw_predicate(kept):
        reduced = reduce_application(app, kept)
        return oracle.errors_of(reduced) == oracle.original_errors

    predicate = InstrumentedPredicate(
        raw_predicate,
        cost_per_call=33.0,
        size_of=lambda kept: application_size_bytes(
            reduce_application(app, kept)
        ),
    )
    result = generalized_binary_reduction(
        ReductionProblem(
            variables=problem.variables,
            predicate=predicate,
            constraint=problem.constraint,
            description=problem.description,
        )
    )
    reduced = reduce_application(app, result.solution)
    return {
        "final_bytes": application_size_bytes(reduced),
        "final_classes": len(reduced.classes),
        "status": result.status,
        "simulated_seconds": predicate.virtual_now(),
        "predicate_calls": predicate.calls,
    }


def bench_corpus(apps: int, min_classes: int, max_classes: int) -> Dict:
    corpus = build_corpus(
        CorpusConfig(
            num_benchmarks=apps,
            min_classes=min_classes,
            max_classes=max_classes,
        )
    )
    pairs = [(b, i) for b in corpus for i in b.instances]

    start = time.perf_counter()
    baseline = [pr4_sequential_replica(b, i) for b, i in pairs]
    baseline_wall = time.perf_counter() - start

    def run_all(config):
        probes = probe_pool(config)
        try:
            start = time.perf_counter()
            outcomes = [
                run_instance(b, i, "our-reducer", config,
                             probe_executor=probes)
                for b, i in pairs
            ]
            return outcomes, time.perf_counter() - start
        finally:
            if probes is not None:
                probes.shutdown(wait=True)

    sequential, sequential_wall = run_all(
        ExperimentConfig(strategies=("our-reducer",))
    )
    speculative, speculative_wall = run_all(
        ExperimentConfig(strategies=("our-reducer",), speculate=4)
    )

    for old, seq, spec in zip(baseline, sequential, speculative):
        key = (seq.benchmark_id, seq.decompiler)
        for outcome in (seq, spec):
            assert outcome.final_bytes == old["final_bytes"], key
            assert outcome.final_classes == old["final_classes"], key
            assert outcome.status == old["status"], key

    def summarize(outcomes, wall):
        return {
            "simulated_seconds": round(
                sum(o.simulated_seconds for o in outcomes), 1
            ),
            "wall_seconds": round(wall, 3),
            "predicate_calls": sum(o.predicate_calls for o in outcomes),
        }

    baseline_sim = sum(entry["simulated_seconds"] for entry in baseline)
    spec_summary = summarize(speculative, speculative_wall)
    counters: Dict[str, float] = {}
    for outcome in speculative:
        for name in SPECULATE_COUNTERS:
            if name in outcome.metrics:
                counters[name] = counters.get(name, 0) + outcome.metrics[name]
    spec_summary.update(counters)

    return {
        "apps": [b.benchmark_id for b in corpus],
        "instances": len(pairs),
        "identical_results": True,
        "pr4_baseline": {
            "simulated_seconds": round(baseline_sim, 1),
            "wall_seconds": round(baseline_wall, 3),
            "predicate_calls": sum(e["predicate_calls"] for e in baseline),
        },
        "sequential": summarize(sequential, sequential_wall),
        "speculate4": spec_summary,
        "simulated_speedup": round(
            baseline_sim / spec_summary["simulated_seconds"], 2
        ),
        "wall_speedup": round(baseline_wall / speculative_wall, 2),
    }


def record_probe_stream(benchmark, instance) -> List[frozenset]:
    """The physical probe sets a real GBR run materializes, in order."""
    problem = build_reduction_problem(
        benchmark.app, instance.oracle.decompiler
    )
    raw = problem.predicate
    record: List[frozenset] = []

    def recording(kept):
        record.append(kept)
        return raw(kept)

    generalized_binary_reduction(
        ReductionProblem(
            variables=problem.variables,
            predicate=InstrumentedPredicate(recording),
            constraint=problem.constraint,
            description=problem.description,
        )
    )
    return record


def bench_materialization(apps: int, min_classes: int, max_classes: int) -> Dict:
    corpus = build_corpus(
        CorpusConfig(
            num_benchmarks=apps,
            min_classes=min_classes,
            max_classes=max_classes,
        )
    )
    streams = [
        (benchmark.app, record_probe_stream(benchmark, instance))
        for benchmark in corpus
        for instance in benchmark.instances
    ]

    # Fresh serializers per stream, exactly as run_instance builds one
    # per reduction run; lane times aggregate across every stream.
    baseline_wall = memo_wall = size_wall = 0.0
    total_probes = 0
    for app, probes in streams:
        total_probes += len(probes)
        start = time.perf_counter()
        baseline_bytes = [
            serialize_application(reduce_application(app, kept))
            for kept in probes
        ]
        baseline_wall += time.perf_counter() - start

        serializer = ApplicationSerializer(app)
        start = time.perf_counter()
        memo_bytes = [serializer.serialize_items(kept) for kept in probes]
        memo_wall += time.perf_counter() - start

        sizer = ApplicationSerializer(app)
        start = time.perf_counter()
        sizes = [sizer.size_of_items(kept) for kept in probes]
        size_wall += time.perf_counter() - start

        assert memo_bytes == baseline_bytes, "memoized serialization diverged"
        assert sizes == [len(b) for b in baseline_bytes], "size_of diverged"

    def lane(wall):
        return {
            "wall_seconds": round(wall, 4),
            "probes_per_sec": round(total_probes / wall, 1),
        }

    return {
        "probes": total_probes,
        "streams": len(streams),
        "classes": [len(b.app.classes) for b in corpus],
        "identical_results": True,
        "baseline": lane(baseline_wall),
        "serialize_memo": lane(memo_wall),
        "size_only": lane(size_wall),
        "speedup": round(baseline_wall / memo_wall, 2),
        "size_only_speedup": round(baseline_wall / size_wall, 2),
    }


def check_against_baseline(
    payload: Dict,
    baseline_path: str,
    tolerance: float,
    min_speedup: float,
    min_corpus_speedup: float,
) -> List[str]:
    failures = []
    corpus_speedup = payload["corpus_end_to_end"]["simulated_speedup"]
    if corpus_speedup < min_corpus_speedup:
        failures.append(
            f"corpus simulated speedup {corpus_speedup}x fell below "
            f"{min_corpus_speedup}x"
        )
    memo_speedup = payload["probe_materialization"]["speedup"]
    if memo_speedup < min_speedup:
        failures.append(
            f"materialization speedup {memo_speedup}x fell below "
            f"{min_speedup}x"
        )
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    old_rate = baseline["probe_materialization"]["serialize_memo"][
        "probes_per_sec"
    ]
    new_rate = payload["probe_materialization"]["serialize_memo"][
        "probes_per_sec"
    ]
    floor = old_rate * (1.0 - tolerance)
    if new_rate < floor:
        failures.append(
            f"memoized probes/sec regressed: {new_rate} < {floor:.1f} "
            f"(baseline {old_rate}, tolerance {tolerance:.0%})"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_5.json")
    parser.add_argument("--check", metavar="BASELINE", default=None)
    parser.add_argument("--tolerance", type=float, default=0.2)
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--min-corpus-speedup", type=float, default=2.0)
    parser.add_argument("--apps", type=int, default=2)
    parser.add_argument("--min-classes", type=int, default=30)
    parser.add_argument("--max-classes", type=int, default=50)
    # The microbench wants longer probe streams than the end-to-end
    # corpus apps produce, so the memo warm-up amortizes as it does in
    # a real reduction; larger apps provide them.
    parser.add_argument("--micro-apps", type=int, default=2)
    parser.add_argument("--micro-min-classes", type=int, default=120)
    parser.add_argument("--micro-max-classes", type=int, default=180)
    args = parser.parse_args(argv)

    payload = {
        "bench": "probe_pipeline",
        "seed": SEED,
        "corpus_end_to_end": bench_corpus(
            args.apps, args.min_classes, args.max_classes
        ),
        "probe_materialization": bench_materialization(
            args.micro_apps, args.micro_min_classes, args.micro_max_classes
        ),
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    corpus = payload["corpus_end_to_end"]
    micro = payload["probe_materialization"]
    print(
        f"corpus end-to-end : {corpus['simulated_speedup']}x simulated "
        f"({corpus['pr4_baseline']['simulated_seconds']}s -> "
        f"{corpus['speculate4']['simulated_seconds']}s over "
        f"{corpus['instances']} instances, identical results)"
    )
    print(
        f"materialization   : {micro['speedup']}x "
        f"({micro['baseline']['probes_per_sec']} -> "
        f"{micro['serialize_memo']['probes_per_sec']} probes/sec, "
        f"size-only {micro['size_only_speedup']}x, "
        f"{micro['probes']} probes, identical bytes)"
    )
    print(f"wrote {args.out}")

    if args.check:
        failures = check_against_baseline(
            payload,
            args.check,
            args.tolerance,
            args.min_speedup,
            args.min_corpus_speedup,
        )
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"regression gate passed against {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

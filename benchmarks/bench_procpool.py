"""Process-backend benchmark: wall-clock speedup on physical probes.

Emits ``BENCH_7.json``.  BENCH_5 showed speculation winning 2.38x in
*simulated* seconds while losing wall-clock (0.85x): with microsecond
decompilers the probe cost is pure-Python CPU work the GIL refuses to
overlap.  The paper's regime is the opposite — the predicate is an
external ~33-second tool and k of them genuinely run at once.  This
bench recreates that regime honestly: every fresh predicate attempt
pays a real ``--tool-latency-ms`` sleep (the external tool, scaled
down), identically in all lanes, and measures how much of it each
probe backend hides:

- **sequential** — ``--speculate 1``: every probe pays the full
  latency back to back (the paper's sequential reducer).
- **thread4** — ``--speculate 4`` on the thread pool: sleeps release
  the GIL, so the latency overlaps, but the probes' Python work still
  serializes.
- **process4** — ``--speculate 4 --probe-backend process``: worker
  processes overlap both the latency and the probe work.

The headline number is ``wall_speedup`` — sequential wall over
process-backend wall.  Lane equality is asserted, not assumed:
all lanes must agree on final bytes/classes/status, and the two
speculative backends must additionally agree on ``predicate_calls``,
``simulated_seconds``, and the full reduction timeline (the
byte-identity contract of DESIGN.md §10).

Run it directly (pytest does not collect it — ``testpaths`` excludes
``benchmarks/`` and everything here is ``__main__``-guarded)::

    PYTHONPATH=src python benchmarks/bench_procpool.py --out BENCH_7.json

CI regression gate: ``--check BENCH_7.json`` re-runs and exits
non-zero when ``wall_speedup`` falls below ``--min-wall-speedup``
(default 1.5x) or any lane diverges from another on results.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.harness import ExperimentConfig, probe_pool, run_instance
from repro.workloads.corpus import CorpusConfig, build_corpus

SEED = 2021

SPECULATE_COUNTERS = (
    "speculate.rounds",
    "speculate.probes_useful",
    "speculate.probes_wasted",
    "gbr.probes",
)


def run_lane(pairs, config: ExperimentConfig):
    """All instances through one backend configuration, timed."""
    probes = probe_pool(config)
    try:
        start = time.perf_counter()
        outcomes = [
            run_instance(b, i, "our-reducer", config, probe_executor=probes)
            for b, i in pairs
        ]
        return outcomes, time.perf_counter() - start
    finally:
        if probes is not None:
            probes.shutdown(wait=True)


def summarize(outcomes, wall: float) -> Dict:
    summary = {
        "wall_seconds": round(wall, 3),
        "simulated_seconds": round(
            sum(o.simulated_seconds for o in outcomes), 1
        ),
        "predicate_calls": sum(o.predicate_calls for o in outcomes),
    }
    for outcome in outcomes:
        for name in SPECULATE_COUNTERS:
            if name in outcome.metrics:
                summary[name] = (
                    summary.get(name, 0) + outcome.metrics[name]
                )
    return summary


def assert_lane_equality(sequential, thread, process) -> None:
    """The byte-identity contract, checked on every instance."""
    for seq, thr, prc in zip(sequential, thread, process):
        key = (seq.benchmark_id, seq.decompiler)
        for other in (thr, prc):
            assert other.final_bytes == seq.final_bytes, key
            assert other.final_classes == seq.final_classes, key
            assert other.status == seq.status, key
        # The two speculative backends must be indistinguishable on
        # every deterministic axis, not just the final answer.
        assert prc.predicate_calls == thr.predicate_calls, key
        assert prc.simulated_seconds == thr.simulated_seconds, key
        assert prc.timeline == thr.timeline, key


def bench_backends(
    apps: int,
    min_classes: int,
    max_classes: int,
    latency_ms: float,
    width: int,
) -> Dict:
    corpus = build_corpus(
        CorpusConfig(
            num_benchmarks=apps,
            min_classes=min_classes,
            max_classes=max_classes,
        )
    )
    pairs = [(b, i) for b in corpus for i in b.instances]
    latency = latency_ms / 1000.0

    def config(**kwargs):
        return ExperimentConfig(
            strategies=("our-reducer",),
            tool_latency_seconds=latency,
            **kwargs,
        )

    sequential, sequential_wall = run_lane(pairs, config())
    thread, thread_wall = run_lane(pairs, config(speculate=width))
    process, process_wall = run_lane(
        pairs, config(speculate=width, probe_backend="process")
    )
    assert_lane_equality(sequential, thread, process)

    return {
        "apps": [b.benchmark_id for b in corpus],
        "instances": len(pairs),
        "tool_latency_ms": latency_ms,
        "speculate": width,
        "identical_results": True,
        "sequential": summarize(sequential, sequential_wall),
        "thread4": summarize(thread, thread_wall),
        "process4": summarize(process, process_wall),
        "wall_speedup": round(sequential_wall / process_wall, 2),
        "thread_wall_speedup": round(sequential_wall / thread_wall, 2),
        "simulated_speedup": round(
            sum(o.simulated_seconds for o in sequential)
            / sum(o.simulated_seconds for o in process),
            2,
        ),
    }


def check_payload(payload: Dict, min_wall_speedup: float) -> List[str]:
    failures = []
    backends = payload["backends"]
    if not backends.get("identical_results"):
        failures.append("backends diverged on reduction results")
    speedup = backends["wall_speedup"]
    if speedup < min_wall_speedup:
        failures.append(
            f"process-backend wall speedup {speedup}x fell below "
            f"{min_wall_speedup}x"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_7.json")
    parser.add_argument("--check", metavar="BASELINE", default=None)
    parser.add_argument("--min-wall-speedup", type=float, default=1.5)
    parser.add_argument("--apps", type=int, default=2)
    parser.add_argument("--min-classes", type=int, default=30)
    parser.add_argument("--max-classes", type=int, default=50)
    parser.add_argument("--tool-latency-ms", type=float, default=300.0)
    parser.add_argument("--speculate", type=int, default=4)
    args = parser.parse_args(argv)

    payload = {
        "bench": "procpool",
        "seed": SEED,
        "backends": bench_backends(
            args.apps,
            args.min_classes,
            args.max_classes,
            args.tool_latency_ms,
            args.speculate,
        ),
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    backends = payload["backends"]
    print(
        f"wall speedup      : {backends['wall_speedup']}x process "
        f"({backends['sequential']['wall_seconds']}s -> "
        f"{backends['process4']['wall_seconds']}s over "
        f"{backends['instances']} instances at "
        f"{backends['tool_latency_ms']:.0f}ms tool latency, "
        "identical results)"
    )
    print(
        f"thread comparison : {backends['thread_wall_speedup']}x thread "
        f"({backends['thread4']['wall_seconds']}s), "
        f"simulated {backends['simulated_speedup']}x"
    )
    print(f"wrote {args.out}")

    if args.check:
        # The gate re-validates the fresh payload (the baseline file
        # pins the committed expectations for humans; wall numbers are
        # machine-dependent, so only the fresh run's ratios are gated).
        with open(args.check) as handle:
            baseline = json.load(handle)
        if not baseline["backends"].get("identical_results"):
            print("REGRESSION: committed baseline lacks identical_results",
                  file=sys.stderr)
            return 1
        failures = check_payload(payload, args.min_wall_speedup)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"regression gate passed against {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Section 2 / Figure 2 / Section 4.5 — the running example.

Reproduces: 20 variables, 32 unique constraints, 6,766 valid sub-inputs
(#SAT), and GBR finding the Figure 1b optimum in 11 predicate runs.
"""

from repro.fji.examples import (
    MAIN_CODE,
    figure1_constraints,
    figure1_optimal_solution,
    figure1_problem,
    figure1_program,
)
from repro.fji.variables import variables_of
from repro.logic import count_models
from repro.reduction import generalized_binary_reduction


def run_gbr_on_example():
    problem = figure1_problem()
    return generalized_binary_reduction(
        problem, require_true=frozenset({MAIN_CODE})
    )


def test_bench_gbr_on_example(benchmark, emit):
    result = benchmark(run_gbr_on_example)
    assert result.solution == figure1_optimal_solution()
    variables = variables_of(figure1_program())
    models = count_models(figure1_constraints(include_main_requirement=False))
    emit(
        "section2_example",
        "\n".join(
            [
                "Section 2 running example (Figures 1 & 2, Section 4.5)",
                "------------------------------------------------------",
                f"variables          : {len(variables)}   (paper: 20)",
                f"unique constraints : {len(figure1_constraints())}"
                "   (paper: 32 + 1 duplicate)",
                f"valid sub-inputs   : {models}   (paper: 6,766)",
                f"GBR predicate runs : {result.predicate_calls}"
                "   (paper: 11)",
                f"solution size      : {len(result.solution)} items "
                "= the Figure 1b optimum",
            ]
        ),
    )


def test_bench_model_counting(benchmark):
    cnf = figure1_constraints(include_main_requirement=False)
    count = benchmark(count_models, cnf)
    assert count == 6766

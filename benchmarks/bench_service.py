"""Service-tier load benchmark: the throughput/latency curve.

Emits ``BENCH_10.json`` by standing up the real ``jlreduce serve``
stack — asyncio HTTP front-end, multi-tenant admission control,
process-pool fan-out, one shared tenant-namespaced warm store — and
driving it with the asyncio load generator at 100+ concurrent jobs:

- **cold** — a balanced three-tenant mix against a fresh store:
  jobs/sec and end-to-end p50/p95/p99 as tenants would see them.
- **warm** — the *same* job list again: repeat specs hit the shared
  warm store, so per-job p50 collapses (the repeat-job lane).
- **skewed** — a 4:1 heavy/light mix: weighted-fair dispatch must not
  starve the light tenant while the heavy one floods the queue.
- **identity** — a sample of specs run through the service (fresh
  tenant namespace, so a cold store lane) and re-run offline via
  ``run_instance_task``; the full ``outcome_signature`` must match
  byte-for-byte — the service adds scheduling, never semantics.

Run it directly (pytest does not collect it — ``testpaths`` excludes
``benchmarks/``)::

    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_10.json

CI regression gate: ``--check`` exits non-zero when cold throughput
drops under ``--min-jobs-per-second``, the warm lane's p50 fails to
collapse under ``--warm-p50-ratio`` of cold, any lane loses a job
(errors, give-ups, incomplete tenants), or any identity signature
diverges from its offline run.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time

from repro.harness.experiments import (
    ExperimentConfig,
    InstanceOutcome,
    outcome_signature,
)
from repro.parallel.scheduler import (
    StoreSpec,
    close_worker_caches,
    run_instance_task,
)
from repro.service import ServiceClient, ServiceConfig
from repro.service.jobs import Job, JobRequest, job_spec, workload_pairs
from repro.service.loadgen import build_jobs, run_loadgen
from repro.service.server import serve

PROFILE = "tiny"
BENCHMARKS = 4
IDENTITY_SAMPLES = 3


def _start_server(workers: int, store_path: str):
    """A live process-backend server on a free port."""
    config = ServiceConfig(
        host="127.0.0.1",
        port=0,
        workers=workers,
        backend="process",
        store_spec=StoreSpec(path=store_path),
        base_config=ExperimentConfig(strategies=("our-reducer",)),
    )
    ready = {}
    up = threading.Event()

    def _ready(host, port):
        ready.update(host=host, port=port)
        up.set()

    thread = threading.Thread(
        target=serve, args=(config,), kwargs={"ready": _ready}, daemon=True
    )
    thread.start()
    if not up.wait(60):
        raise RuntimeError("service did not come up")
    client = ServiceClient(ready["host"], ready["port"], timeout=120)
    client.wait_until_up()
    return thread, client, ready["host"], ready["port"]


def _identity_lane(client, host: str, port: int, workdir: str) -> dict:
    """Service vs offline signatures on a fresh-tenant (cold) namespace."""
    pairs = workload_pairs(PROFILE, BENCHMARKS)[:IDENTITY_SAMPLES]
    matched = 0
    mismatches = []
    for index, (benchmark_id, decompiler) in enumerate(pairs):
        payload = {
            "tenant": "identity",
            "benchmark_id": benchmark_id,
            "decompiler": decompiler,
            "profile": PROFILE,
        }
        record = client.wait(
            client.submit(payload)["job_id"], timeout=300
        )
        if record["status"] != "success":
            mismatches.append(
                f"{benchmark_id}/{decompiler}: service error "
                f"{record.get('error')}"
            )
            continue
        offline_job = Job(
            job_id=f"offline-{index}",
            request=JobRequest.from_payload(payload),
            serial=record["serial"],
        )
        spec = job_spec(
            offline_job,
            base=ExperimentConfig(strategies=("our-reducer",)),
            store_spec=StoreSpec(
                path=os.path.join(workdir, f"offline-store-{index}")
            ),
        )
        result = run_instance_task(spec)
        if result.error is not None or not result.strategies:
            mismatches.append(
                f"{benchmark_id}/{decompiler}: offline error "
                f"{result.error}"
            )
            continue
        service_sig = json.loads(json.dumps(
            outcome_signature(InstanceOutcome(**record["outcome"])),
            sort_keys=True,
        ))
        offline_sig = json.loads(json.dumps(
            outcome_signature(result.strategies[0].outcome),
            sort_keys=True,
        ))
        if service_sig == offline_sig:
            matched += 1
        else:
            diff = sorted(
                key for key in set(service_sig) | set(offline_sig)
                if service_sig.get(key) != offline_sig.get(key)
            )
            mismatches.append(
                f"{benchmark_id}/{decompiler}: signatures differ on "
                f"{diff}"
            )
    close_worker_caches()
    return {
        "jobs": len(pairs),
        "matched": matched,
        "mismatches": mismatches,
        "ok": matched == len(pairs) and not mismatches,
    }


def _lane_ok(curve: dict) -> bool:
    return (
        curve["completed"] == curve["jobs"]
        and curve["errors"] == 0
        and curve["gave_up"] == 0
    )


def bench(jobs: int, concurrency: int, workers: int) -> dict:
    workdir = tempfile.mkdtemp(prefix="bench-service-")
    store_path = os.path.join(workdir, "store")
    thread, client, host, port = _start_server(workers, store_path)
    try:
        balanced = build_jobs(
            {"acme": 1, "beta": 1, "gamma": 1},
            jobs,
            profile=PROFILE,
            benchmarks=BENCHMARKS,
        )
        print(
            f"cold lane: {jobs} jobs, 3 tenants, "
            f"concurrency {concurrency}, {workers} workers ...",
            flush=True,
        )
        cold = run_loadgen(host, port, balanced, concurrency=concurrency)
        print(
            f"  {cold['jobs_per_second']:.2f} jobs/s "
            f"p50={cold['latency']['p50']:.2f}s "
            f"p95={cold['latency']['p95']:.2f}s",
            flush=True,
        )
        print("warm lane: same jobs against the warm store ...", flush=True)
        warm = run_loadgen(host, port, balanced, concurrency=concurrency)
        print(
            f"  {warm['jobs_per_second']:.2f} jobs/s "
            f"p50={warm['latency']['p50']:.2f}s",
            flush=True,
        )
        skew_jobs = max(10, jobs // 2)
        skewed_list = build_jobs(
            {"heavy": 4, "light": 1},
            skew_jobs,
            profile=PROFILE,
            benchmarks=BENCHMARKS,
        )
        print(f"skewed lane: {skew_jobs} jobs at 4:1 ...", flush=True)
        skewed = run_loadgen(
            host, port, skewed_list, concurrency=concurrency
        )
        print("identity lane: service vs offline signatures ...", flush=True)
        identity = _identity_lane(client, host, port, workdir)
        stats = client.stats()
    finally:
        try:
            client.shutdown()
        except Exception:  # noqa: BLE001 — best-effort teardown
            pass
        thread.join(timeout=120)
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "bench": "service",
        "created_unix": time.time(),
        "env": {
            "cpus": os.cpu_count(),
            "workers": workers,
            "backend": "process",
            "profile": PROFILE,
            "benchmarks": BENCHMARKS,
        },
        "lanes": {"cold": cold, "warm": warm, "skewed": skewed},
        "identity": identity,
        "tenants": stats["tenants"],
    }


def check(payload: dict, min_jobs_per_second: float,
          warm_p50_ratio: float) -> int:
    failures = []
    cold = payload["lanes"]["cold"]
    warm = payload["lanes"]["warm"]
    skewed = payload["lanes"]["skewed"]
    if cold["concurrency"] < 100:
        failures.append(
            f"cold lane ran at concurrency {cold['concurrency']} < 100"
        )
    for name, lane in (("cold", cold), ("warm", warm),
                       ("skewed", skewed)):
        if not _lane_ok(lane):
            failures.append(
                f"{name} lane lost jobs: completed "
                f"{lane['completed']}/{lane['jobs']}, "
                f"errors={lane['errors']} gave_up={lane['gave_up']}"
            )
    if cold["jobs_per_second"] < min_jobs_per_second:
        failures.append(
            f"cold throughput {cold['jobs_per_second']:.2f} jobs/s "
            f"under the {min_jobs_per_second} floor"
        )
    cold_p50 = cold["latency"]["p50"]
    warm_p50 = warm["latency"]["p50"]
    if cold_p50 > 0 and warm_p50 > warm_p50_ratio * cold_p50:
        failures.append(
            f"warm p50 {warm_p50:.2f}s did not collapse under "
            f"{warm_p50_ratio:.0%} of cold p50 {cold_p50:.2f}s"
        )
    light = skewed["per_tenant"].get("light", {})
    if not light.get("count"):
        failures.append("skewed lane starved the light tenant entirely")
    if not payload["identity"]["ok"]:
        failures.append(
            "identity lane diverged: "
            + "; ".join(payload["identity"]["mismatches"])
        )
    if failures:
        for failure in failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"gates ok: {cold['jobs_per_second']:.2f} jobs/s cold "
        f"(floor {min_jobs_per_second}), warm p50 "
        f"{warm_p50 / cold_p50:.0%} of cold, "
        f"{payload['identity']['matched']}/"
        f"{payload['identity']['jobs']} identities matched"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", metavar="FILE", help="write JSON here")
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when any gate fails",
    )
    parser.add_argument(
        "--jobs", type=int, default=120,
        help="jobs in the cold/warm lanes (default 120)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=120,
        help="concurrent in-flight jobs (default 120; the gate "
        "requires >= 100)",
    )
    parser.add_argument(
        "--workers", type=int,
        default=min(8, max(2, os.cpu_count() or 2)),
        help="service pool workers (default min(8, cpus))",
    )
    parser.add_argument(
        "--min-jobs-per-second", type=float, default=0.8,
        help="cold-lane throughput floor (default 0.8; conservative "
        "for 2-core CI runners)",
    )
    parser.add_argument(
        "--warm-p50-ratio", type=float, default=0.85,
        help="warm p50 must be under this fraction of cold p50 "
        "(default 0.85)",
    )
    args = parser.parse_args()
    payload = bench(args.jobs, args.concurrency, args.workers)
    rendered = json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.out}")
    else:
        print(rendered)
    if args.check:
        return check(
            payload, args.min_jobs_per_second, args.warm_p50_ratio
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

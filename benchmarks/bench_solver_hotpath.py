"""Solver hot-path benchmark: incremental sessions vs the legacy engine.

Emits ``BENCH_4.json`` with solve calls/sec, propagation counts, and
wall time on two solver-bound workloads:

- **section2_gbr** — the paper's running example reduced end-to-end by
  GBR, once through the current session-backed stack and once through
  an inline replica of the pre-session stack
  (:func:`build_progression_reference`, fresh solvers per rebuild).
  Byte-identity of the ``ReductionResult`` (same solution, same
  iteration count) is asserted, not assumed.
- **corpus_microbench** — repeated ``solve(assume_true=…,
  assume_false=…)`` queries against synthetic-corpus constraint CNFs,
  answered by one reused :class:`SolverSession` vs the per-call legacy
  path (:func:`solve_legacy`).  Every query's ``SatResult`` must match
  exactly.

Run it directly (pytest does not collect it — ``testpaths`` excludes
``benchmarks/`` and everything here is ``__main__``-guarded)::

    PYTHONPATH=src python benchmarks/bench_solver_hotpath.py --out BENCH_4.json

CI regression gate: ``--check BENCH_4.json`` compares the fresh run
against the committed baseline and exits non-zero when session solve
calls/sec regressed more than ``--tolerance`` (default 20%), or when
the session/legacy speedup fell below ``--min-speedup`` (default 2x,
the machine-independent check).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict, List

from repro.fji.examples import MAIN_CODE, figure1_optimal_solution, figure1_problem
from repro.bytecode.constraints import generate_constraints
from repro.logic.session import SolverSession
from repro.logic.solver import solve_legacy
from repro.observability import scoped_metrics
from repro.reduction import generalized_binary_reduction
from repro.reduction.gbr import _shortest_satisfying_prefix
from repro.reduction.ordering import dependency_order
from repro.reduction.predicate import InstrumentedPredicate
from repro.reduction.progression import build_progression_reference
from repro.workloads.corpus import CorpusConfig, build_corpus

SEED = 2021


def reference_gbr(problem, require_true):
    """The pre-session GBR loop: materializing progression rebuilds.

    Mirrors :func:`generalized_binary_reduction` exactly (same binary
    search, same learned-set trajectory) but rebuilds via
    :func:`build_progression_reference`, i.e. a fresh restricted CNF,
    occurrence index, and solver per iteration.
    """
    predicate = InstrumentedPredicate(problem.predicate)
    constraint = problem.constraint
    order = dependency_order(constraint, problem.variables)
    universe = problem.universe
    learned: List[frozenset] = []
    scope = universe
    progression = build_progression_reference(
        constraint, order, learned, scope, require_true
    )
    iterations = 0
    while not predicate(progression.first):
        iterations += 1
        r = _shortest_satisfying_prefix(predicate, progression)
        learned.append(progression[r])
        scope = progression.prefix_union(r)
        progression = build_progression_reference(
            constraint, order, learned, scope, require_true
        )
    return progression.first, iterations


def bench_section2(repeats: int) -> Dict:
    require = frozenset({MAIN_CODE})
    optimum = figure1_optimal_solution()

    def timed(runner):
        with scoped_metrics() as metrics:
            start = time.perf_counter()
            results = [runner() for _ in range(repeats)]
            wall = time.perf_counter() - start
        counters = metrics.counter_values()
        return results, wall, counters

    session_runs, session_wall, session_counters = timed(
        lambda: generalized_binary_reduction(
            figure1_problem(), require_true=require
        )
    )
    reference_runs, reference_wall, reference_counters = timed(
        lambda: reference_gbr(figure1_problem(), require)
    )

    for result, (solution, iterations) in zip(session_runs, reference_runs):
        assert result.solution == solution, "GBR solutions diverged"
        assert result.solution == optimum, "GBR missed the Figure 1b optimum"
        assert result.iterations == iterations, "GBR trajectories diverged"

    return {
        "repeats": repeats,
        "identical_results": True,
        "session": {
            "wall_seconds": round(session_wall, 4),
            "solver_calls": session_counters.get("solver.calls", 0),
            "propagations": session_counters.get("solver.propagations", 0),
        },
        "legacy": {
            "wall_seconds": round(reference_wall, 4),
            "solver_calls": reference_counters.get("solver.calls", 0),
            "propagations": reference_counters.get("solver.propagations", 0),
        },
        "speedup": round(reference_wall / session_wall, 2),
    }


def _query_workload(cnf, queries: int, seed: int):
    names = sorted(cnf.variables, key=repr)
    rng = random.Random(seed)
    workload = []
    for _ in range(queries):
        chosen = rng.sample(names, k=min(len(names), rng.randint(0, 6)))
        split = rng.randint(0, len(chosen))
        workload.append(
            (frozenset(chosen[:split]), frozenset(chosen[split:]))
        )
    return workload


def bench_corpus(apps: int, queries: int) -> Dict:
    corpus = build_corpus(CorpusConfig.small())
    picked = corpus[:apps]
    per_app = []
    total_session_wall = 0.0
    total_legacy_wall = 0.0
    total_queries = 0
    for position, benchmark in enumerate(picked):
        cnf = generate_constraints(benchmark.app)
        workload = _query_workload(cnf, queries, SEED + position)

        with scoped_metrics() as metrics:
            session = SolverSession(cnf)
            start = time.perf_counter()
            session_results = [
                session.solve(assume_true=t, assume_false=f)
                for t, f in workload
            ]
            session_wall = time.perf_counter() - start
        session_propagations = metrics.counter_values().get(
            "solver.propagations", 0
        )

        with scoped_metrics() as metrics:
            start = time.perf_counter()
            legacy_results = [
                solve_legacy(cnf, assume_true=t, assume_false=f)
                for t, f in workload
            ]
            legacy_wall = time.perf_counter() - start
        legacy_propagations = metrics.counter_values().get(
            "solver.propagations", 0
        )

        assert session_results == legacy_results, (
            f"engines diverged on {benchmark.benchmark_id}"
        )
        total_session_wall += session_wall
        total_legacy_wall += legacy_wall
        total_queries += len(workload)
        per_app.append(
            {
                "benchmark_id": benchmark.benchmark_id,
                "variables": len(cnf.variables),
                "clauses": len(cnf),
                "queries": len(workload),
                "session": {
                    "wall_seconds": round(session_wall, 4),
                    "calls_per_sec": round(len(workload) / session_wall, 1),
                    "propagations": session_propagations,
                },
                "legacy": {
                    "wall_seconds": round(legacy_wall, 4),
                    "calls_per_sec": round(len(workload) / legacy_wall, 1),
                    "propagations": legacy_propagations,
                },
                "speedup": round(legacy_wall / session_wall, 2),
            }
        )
    return {
        "apps": [entry["benchmark_id"] for entry in per_app],
        "identical_results": True,
        "queries": total_queries,
        "session_calls_per_sec": round(total_queries / total_session_wall, 1),
        "legacy_calls_per_sec": round(total_queries / total_legacy_wall, 1),
        "speedup": round(total_legacy_wall / total_session_wall, 2),
        "per_app": per_app,
    }


def check_against_baseline(
    payload: Dict, baseline_path: str, tolerance: float, min_speedup: float
) -> List[str]:
    failures = []
    speedup = payload["corpus_microbench"]["speedup"]
    if speedup < min_speedup:
        failures.append(
            f"session/legacy speedup {speedup}x fell below {min_speedup}x"
        )
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    old_rate = baseline["corpus_microbench"]["session_calls_per_sec"]
    new_rate = payload["corpus_microbench"]["session_calls_per_sec"]
    floor = old_rate * (1.0 - tolerance)
    if new_rate < floor:
        failures.append(
            f"solver calls/sec regressed: {new_rate} < {floor:.1f} "
            f"(baseline {old_rate}, tolerance {tolerance:.0%})"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_4.json")
    parser.add_argument("--check", metavar="BASELINE", default=None)
    parser.add_argument("--tolerance", type=float, default=0.2)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--apps", type=int, default=2)
    parser.add_argument("--queries", type=int, default=150)
    args = parser.parse_args(argv)

    payload = {
        "bench": "solver_hotpath",
        "seed": SEED,
        "section2_gbr": bench_section2(args.repeats),
        "corpus_microbench": bench_corpus(args.apps, args.queries),
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    section2 = payload["section2_gbr"]
    corpus = payload["corpus_microbench"]
    print(f"section2 GBR   : {section2['speedup']}x "
          f"({section2['legacy']['wall_seconds']}s -> "
          f"{section2['session']['wall_seconds']}s, "
          f"{section2['repeats']} repeats, identical results)")
    print(f"corpus queries : {corpus['speedup']}x "
          f"({corpus['legacy_calls_per_sec']} -> "
          f"{corpus['session_calls_per_sec']} calls/sec over "
          f"{corpus['queries']} queries, identical results)")
    print(f"wrote {args.out}")

    if args.check:
        failures = check_against_baseline(
            payload, args.check, args.tolerance, args.min_speedup
        )
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"regression gate passed against {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

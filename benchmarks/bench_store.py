"""Predicate-store cache-tier benchmark: startup, throughput, warm runs.

Emits ``BENCH_8.json``.  PR 3's single-file v1 store re-parses its
*entire* history on every open — O(total history) before the first
probe can be answered.  The sharded tier opens by reading a one-line
manifest and faults shards on demand, so startup is proportional to
the shards a run actually touches.  This bench measures that, plus the
operational properties the cache tier promises:

- **startup** — build identical v1 and sharded stores of
  ``--entries`` outcomes; time cold-open-plus-first-lookup for each.
  The headline is ``startup_speedup`` (v1 over sharded), gated in CI.
  The ratio is machine-independent: both sides parse the same JSONL,
  the sharded side just parses ~1/``shards`` of it.
- **throughput** — resident-shard lookup and append-record ops/sec on
  the sharded backend (the hot path of a warm corpus run).
- **warm corpus** — a 2-app corpus run twice against one sharded
  store: the second run must answer every probe from the cache (zero
  fresh predicate calls) and the ``store.hits`` counter must show it.
- **differential** — the same corpus, cold, through v1, sharded, and
  sqlite backends: final bytes/classes, predicate calls, simulated
  seconds, and timelines must be identical (the backend is invisible
  to reduction results).

Run it directly (pytest does not collect it — ``testpaths`` excludes
``benchmarks/`` and everything here is ``__main__``-guarded)::

    PYTHONPATH=src python benchmarks/bench_store.py --out BENCH_8.json

CI regression gate: ``--check BENCH_8.json`` re-runs and exits
non-zero when ``startup_speedup`` falls below ``--min-startup-speedup``
(default 3x), warm-run probes are not zero, the cross-run hit counter
is zero, lookup throughput falls below ``--min-lookup-ops``, or any
backend diverges on reduction results.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from typing import Dict, List

from repro.harness import ExperimentConfig, run_instance
from repro.observability.metrics import MetricsRegistry, scoped_metrics
from repro.parallel import (
    PredicateStore,
    ShardedPredicateStore,
    open_store,
)
from repro.workloads.corpus import CorpusConfig, build_corpus

SEED = 2021


def _fingerprint(i: int) -> str:
    return f"oracle-{i % 7}"


def _sub_input(i: int):
    return frozenset({f"var-{i}", f"var-{i + 1}"})


def bench_startup(root: str, entries: int, shards: int) -> Dict:
    """Cold open + first lookup: v1 full scan vs sharded lazy fault."""
    v1_path = f"{root}/startup-v1.jsonl"
    sharded_path = f"{root}/startup-sharded"
    with PredicateStore(v1_path) as v1:
        for i in range(entries):
            v1.record(_fingerprint(i), _sub_input(i), i % 2 == 0)
    with ShardedPredicateStore(sharded_path, shards=shards) as tier:
        for i in range(entries):
            tier.record(_fingerprint(i), _sub_input(i), i % 2 == 0)

    start = time.perf_counter()
    with PredicateStore(v1_path) as store:
        assert store.lookup(_fingerprint(0), _sub_input(0)) is True
    v1_open = time.perf_counter() - start

    start = time.perf_counter()
    with ShardedPredicateStore(sharded_path) as store:
        assert store.lookup(_fingerprint(0), _sub_input(0)) is True
        shard_loads = store.shard_loads
    sharded_open = time.perf_counter() - start

    return {
        "entries": entries,
        "shards": shards,
        "v1_open_seconds": round(v1_open, 4),
        "sharded_open_seconds": round(sharded_open, 4),
        "sharded_shard_loads": shard_loads,
        "startup_speedup": round(v1_open / sharded_open, 2),
    }


def bench_throughput(root: str, ops: int) -> Dict:
    """Resident-shard lookup and append-record rates."""
    path = f"{root}/throughput"
    with ShardedPredicateStore(path) as store:
        start = time.perf_counter()
        for i in range(ops):
            store.record(_fingerprint(i), _sub_input(i), i % 2 == 0)
        record_wall = time.perf_counter() - start

        start = time.perf_counter()
        for i in range(ops):
            store.lookup(_fingerprint(i), _sub_input(i))
        lookup_wall = time.perf_counter() - start

    return {
        "ops": ops,
        "record_ops_per_sec": int(ops / record_wall),
        "lookup_ops_per_sec": int(ops / lookup_wall),
    }


def _comparable(outcome):
    return (
        outcome.final_bytes,
        outcome.final_classes,
        outcome.predicate_calls,
        outcome.simulated_seconds,
        outcome.status,
        tuple(map(tuple, outcome.timeline)),
    )


def _run_corpus(pairs, config, store):
    return [
        run_instance(b, i, "our-reducer", config, store) for b, i in pairs
    ]


def bench_warm_and_differential(
    root: str, apps: int, min_classes: int, max_classes: int
) -> Dict:
    corpus = build_corpus(
        CorpusConfig(
            num_benchmarks=apps,
            min_classes=min_classes,
            max_classes=max_classes,
        )
    )
    pairs = [(b, i) for b in corpus for i in b.instances]
    config = ExperimentConfig(strategies=("our-reducer",))

    results = {}
    for backend in ("v1", "sharded", "sqlite"):
        path = f"{root}/corpus-{backend}"
        with open_store(path, backend=backend) as store:
            results[backend] = _run_corpus(pairs, config, store)

    baseline = [_comparable(o) for o in results["v1"]]
    identical = all(
        [_comparable(o) for o in results[backend]] == baseline
        for backend in ("sharded", "sqlite")
    )

    # Warm rerun against the sharded store, reopened cold, counters
    # captured through a scoped registry exactly like a --trace run.
    registry = MetricsRegistry()
    with scoped_metrics(registry):
        with open_store(f"{root}/corpus-sharded", backend="sharded") as store:
            warm = _run_corpus(pairs, config, store)
    counters = registry.counter_values()
    warm_calls = sum(o.predicate_calls for o in warm)

    return {
        "apps": [b.benchmark_id for b in corpus],
        "instances": len(pairs),
        "identical_results": identical,
        "cold_predicate_calls": sum(
            o.predicate_calls for o in results["sharded"]
        ),
        "warm_predicate_calls": warm_calls,
        "warm_zero_fresh_probes": warm_calls == 0,
        "warm_store_hits": counters.get("store.hits", 0),
        "warm_store_misses": counters.get("store.misses", 0),
        "warm_shard_loads": counters.get("store.shard_loads", 0),
    }


def check_payload(
    payload: Dict, min_startup_speedup: float, min_lookup_ops: int
) -> List[str]:
    failures = []
    startup = payload["startup"]
    if startup["startup_speedup"] < min_startup_speedup:
        failures.append(
            f"sharded cold-open speedup {startup['startup_speedup']}x "
            f"fell below {min_startup_speedup}x"
        )
    throughput = payload["throughput"]
    if throughput["lookup_ops_per_sec"] < min_lookup_ops:
        failures.append(
            f"lookup throughput {throughput['lookup_ops_per_sec']}/s "
            f"fell below {min_lookup_ops}/s"
        )
    corpus = payload["corpus"]
    if not corpus["identical_results"]:
        failures.append("store backends diverged on reduction results")
    if not corpus["warm_zero_fresh_probes"]:
        failures.append(
            f"warm rerun made {corpus['warm_predicate_calls']} fresh "
            "predicate calls (expected 0)"
        )
    if corpus["warm_store_hits"] <= 0:
        failures.append("warm rerun recorded no store.hits")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_8.json")
    parser.add_argument("--check", metavar="BASELINE", default=None)
    parser.add_argument("--min-startup-speedup", type=float, default=3.0)
    parser.add_argument("--min-lookup-ops", type=int, default=20000)
    parser.add_argument("--entries", type=int, default=20000)
    parser.add_argument("--shards", type=int, default=16)
    parser.add_argument("--ops", type=int, default=20000)
    parser.add_argument("--apps", type=int, default=2)
    parser.add_argument("--min-classes", type=int, default=12)
    parser.add_argument("--max-classes", type=int, default=20)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-store-") as root:
        payload = {
            "bench": "store",
            "seed": SEED,
            "startup": bench_startup(root, args.entries, args.shards),
            "throughput": bench_throughput(root, args.ops),
            "corpus": bench_warm_and_differential(
                root, args.apps, args.min_classes, args.max_classes
            ),
        }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    startup = payload["startup"]
    corpus = payload["corpus"]
    print(
        f"startup speedup   : {startup['startup_speedup']}x "
        f"({startup['v1_open_seconds']}s full scan -> "
        f"{startup['sharded_open_seconds']}s, "
        f"{startup['sharded_shard_loads']} of {startup['shards']} "
        "shards faulted)"
    )
    print(
        f"throughput        : "
        f"{payload['throughput']['lookup_ops_per_sec']:,} lookups/s, "
        f"{payload['throughput']['record_ops_per_sec']:,} records/s"
    )
    print(
        f"warm corpus       : {corpus['cold_predicate_calls']} cold "
        f"probes -> {corpus['warm_predicate_calls']} warm "
        f"(store hits {corpus['warm_store_hits']:,}, "
        f"{corpus['warm_shard_loads']} shard loads)"
    )
    print(
        f"identical results : {corpus['identical_results']} "
        "(v1 == sharded == sqlite)"
    )

    if args.check is not None:
        with open(args.check) as handle:
            json.load(handle)  # the baseline must exist and parse
        failures = check_payload(
            payload, args.min_startup_speedup, args.min_lookup_ops
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("check             : ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())

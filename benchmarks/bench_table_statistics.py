"""Section 5 "Statistics" — the corpus statistics row.

Paper geo-means: 184 classes, 285 KB, 9.2 errors, 2.9k items,
8.7k clauses, 97.5% edges among clauses.
"""

from repro.harness import corpus_statistics, render_statistics


def test_bench_corpus_statistics(benchmark, corpus, emit):
    stats = benchmark(corpus_statistics, corpus)
    assert stats.num_instances >= 1
    assert 0.8 <= stats.edge_fraction <= 1.0
    emit("table_statistics", render_statistics(stats))

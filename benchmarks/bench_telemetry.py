"""Telemetry overhead benchmark: tracing-off vs tracing-on corpus runs.

Emits ``BENCH_6.json`` with three lanes over the same seeded corpus of
``our-reducer`` instances (identical final results asserted):

- **tracing_off** — the plain harness, process-global tracer disabled;
  every instrumented call site pays exactly one attribute check.
- **tracing_memory** — a :func:`~repro.observability.tracing_session`
  with in-memory accumulation: full span tree, dual clocks, and the
  probe provenance ledger (one event per physical probe).
- **tracing_sharded** — the same session streaming to per-worker JSONL
  shard files (the ``--jobs``/``--trace`` production configuration),
  including the flush-per-line durability write.

The lanes interleave within each rep; per rep, each tracing lane's wall
time is divided by the *same rep's* tracing-off wall time, and the gate
statistic is the **median ratio** across ``--reps`` reps — a real
regression slows the typical rep, while a scheduler hiccup in any
single rep (in either lane) cannot flip the median.  The headline
``overhead`` is the ratio of min-of-reps walls.

Run it directly (pytest does not collect it — ``testpaths`` excludes
``benchmarks/``)::

    PYTHONPATH=src python benchmarks/bench_telemetry.py --out BENCH_6.json

CI regression gate: ``--check BENCH_6.json`` exits non-zero when any
tracing-enabled lane's overhead exceeds ``--tolerance`` (default 5%),
or the per-instance trace volume grows more than 50% over the committed
baseline (telemetry bloat is a regression too — the ledger is meant to
stay physical-probes-only).
"""

from __future__ import annotations

import argparse
import gc
import json
import shutil
import sys
import tempfile
import time
from typing import Dict, List

from repro.harness import ExperimentConfig, run_instance
from repro.observability import ShardSet, load_traces, tracing_session
from repro.workloads.corpus import CorpusConfig, build_corpus

SEED = 2021


def _comparable(outcome) -> tuple:
    return (
        outcome.benchmark_id,
        outcome.decompiler,
        outcome.final_bytes,
        outcome.final_classes,
        outcome.status,
        outcome.predicate_calls,
    )


def _run_corpus(pairs, config) -> List:
    return [
        run_instance(benchmark, instance, "our-reducer", config)
        for benchmark, instance in pairs
    ]


def bench_lanes(apps: int, min_classes: int, max_classes: int,
                reps: int) -> Dict:
    corpus = build_corpus(
        CorpusConfig(
            num_benchmarks=apps,
            min_classes=min_classes,
            max_classes=max_classes,
        )
    )
    pairs = [(b, i) for b in corpus for i in b.instances]
    config = ExperimentConfig(strategies=("our-reducer",))

    reference = None
    trace_events = 0
    shard_files = 0

    def check(outcomes):
        nonlocal reference
        shaped = [_comparable(o) for o in outcomes]
        if reference is None:
            reference = shaped
        else:
            assert shaped == reference, "tracing changed the reduction"

    def lane_off() -> None:
        check(_run_corpus(pairs, config))

    def lane_memory() -> None:
        with tracing_session() as (_tracer, _metrics):
            check(_run_corpus(pairs, config))

    def lane_sharded() -> None:
        nonlocal trace_events, shard_files
        workdir = tempfile.mkdtemp(prefix="bench-telemetry-")
        base = f"{workdir}/run.jsonl"
        try:
            with ShardSet(base, run_id="bench-6") as shards:
                with tracing_session(run_id="bench-6", shards=shards):
                    check(_run_corpus(pairs, config))
                shard_files = len(shards.paths())
            trace_events = len(load_traces([base]))
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    # One untimed warm-up (imports, allocator, file-system caches), then
    # the lanes interleave within each rep so machine drift (thermal,
    # noisy neighbours) hits all three equally instead of biasing
    # whichever lane ran last.  The overhead ratio is computed *within*
    # each rep — tracing lane over that same rep's off lane — and the
    # gate takes the median ratio across reps: a real regression slows
    # the typical rep, while a one-off scheduler hiccup only spoils one.
    lanes = [lane_off, lane_memory, lane_sharded]
    for lane in lanes:
        lane()

    def timed(lane) -> float:
        gc.collect()
        start = time.perf_counter()
        lane()
        return time.perf_counter() - start

    best = [float("inf")] * len(lanes)
    ratios: List[List[float]] = [[] for _ in lanes]
    for _ in range(reps):
        walls = [timed(lane) for lane in lanes]
        for index, wall in enumerate(walls):
            best[index] = min(best[index], wall)
            ratios[index].append(wall / walls[0])
    off_wall, memory_wall, sharded_wall = best

    def median(values: List[float]) -> float:
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    def lane_summary(wall: float, lane_ratios: List[float]) -> Dict:
        return {
            "wall_seconds": round(wall, 4),
            # Headline: ratio of noise-floor (min) walls.  Gate input:
            # the *median* same-rep ratio — a real regression slows the
            # typical rep, while a scheduler hiccup in any single rep
            # (in either lane, in either direction) cannot flip it.
            "overhead": round(wall / off_wall - 1.0, 4),
            "overhead_median": round(median(lane_ratios) - 1.0, 4),
        }

    memory = lane_summary(memory_wall, ratios[1])
    sharded = lane_summary(sharded_wall, ratios[2])
    sharded["events"] = trace_events
    sharded["shard_files"] = shard_files
    return {
        "apps": [b.benchmark_id for b in corpus],
        "instances": len(pairs),
        "reps": reps,
        "identical_results": True,
        "tracing_off": {"wall_seconds": round(off_wall, 4)},
        "tracing_memory": memory,
        "tracing_sharded": sharded,
        "max_overhead": max(memory["overhead"], sharded["overhead"]),
        "events_per_instance": round(trace_events / len(pairs), 1),
    }


def check_against_baseline(
    payload: Dict, baseline_path: str, tolerance: float
) -> List[str]:
    failures = []
    lanes = payload["telemetry_overhead"]
    for lane in ("tracing_memory", "tracing_sharded"):
        overhead = lanes[lane]["overhead_median"]
        if overhead > tolerance:
            failures.append(
                f"{lane} median overhead {overhead:.1%} exceeds "
                f"{tolerance:.0%} (the typical rep ran that much slower "
                f"than its paired tracing-off rep)"
            )
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    old_volume = baseline["telemetry_overhead"]["events_per_instance"]
    new_volume = lanes["events_per_instance"]
    ceiling = old_volume * 1.5
    if new_volume > ceiling:
        failures.append(
            f"trace volume grew: {new_volume} events/instance > "
            f"{ceiling:.1f} (baseline {old_volume}; the probe ledger "
            f"must stay physical-probes-only)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_6.json")
    parser.add_argument("--check", metavar="BASELINE", default=None)
    parser.add_argument("--tolerance", type=float, default=0.05)
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument("--apps", type=int, default=2)
    parser.add_argument("--min-classes", type=int, default=30)
    parser.add_argument("--max-classes", type=int, default=50)
    args = parser.parse_args(argv)

    payload = {
        "bench": "telemetry",
        "seed": SEED,
        "telemetry_overhead": bench_lanes(
            args.apps, args.min_classes, args.max_classes, args.reps
        ),
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    lanes = payload["telemetry_overhead"]
    print(
        f"tracing off     : {lanes['tracing_off']['wall_seconds']}s over "
        f"{lanes['instances']} instances (min of {lanes['reps']} reps)"
    )
    print(
        f"tracing memory  : {lanes['tracing_memory']['wall_seconds']}s "
        f"({lanes['tracing_memory']['overhead']:+.1%})"
    )
    print(
        f"tracing sharded : {lanes['tracing_sharded']['wall_seconds']}s "
        f"({lanes['tracing_sharded']['overhead']:+.1%}, "
        f"{lanes['tracing_sharded']['events']} events, "
        f"{lanes['events_per_instance']} per instance, identical results)"
    )
    print(f"wrote {args.out}")

    if args.check:
        failures = check_against_baseline(payload, args.check, args.tolerance)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"regression gate passed against {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

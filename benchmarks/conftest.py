"""Shared fixtures for the figure/table benchmarks.

The corpus profile defaults to ``small`` (minutes on a laptop); set
``REPRO_CORPUS=paper`` for the full-scale run matching the paper's
program sizes (expect a long run — the paper's own evaluation took
machine-days; ours simulates the 33 s decompile cost instead of paying
it, but 96 programs x 3 decompilers x 4 strategies is still real work).

Every bench prints its reproduced figure/table to stdout and appends it
to ``benchmarks/artifacts/<name>.txt`` so the numbers survive pytest's
capture settings.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness.experiments import ExperimentConfig, run_corpus_experiment
from repro.workloads.corpus import CorpusConfig, build_corpus

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"


def corpus_config() -> CorpusConfig:
    profile = os.environ.get("REPRO_CORPUS", "small")
    if profile == "paper":
        return CorpusConfig.paper()
    if profile == "small":
        return CorpusConfig.small()
    raise ValueError(f"unknown REPRO_CORPUS profile {profile!r}")


@pytest.fixture(scope="session")
def corpus():
    return build_corpus(corpus_config())


@pytest.fixture(scope="session")
def outcomes(corpus):
    return run_corpus_experiment(corpus, ExperimentConfig())


@pytest.fixture()
def emit(request):
    """Print a reproduced figure and persist it under artifacts/."""

    def _emit(name: str, text: str) -> None:
        ARTIFACTS.mkdir(exist_ok=True)
        (ARTIFACTS / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _emit

"""The paper-scale flagship run: 1000 NJR-shape apps through the
corpus scheduler.

Three stages, all restart-friendly and streamed (no O(corpus) state in
the parent):

1. Generate and persist the ``CorpusConfig.njr()`` corpus (1000 apps,
   geo-means calibrated to the paper's Table 1) under
   ``benchmarks/runs/njr/corpus``.
2. Run the full corpus through ``run_scheduled_corpus_experiment``
   (``--corpus-jobs 2``, manifest-planned, longest-job-first) with the
   J-Reduce baseline plus the coverage-debloating row-group, streaming
   every outcome to ``njr_results.jsonl``.
3. Run ``our-reducer`` on the first 100 benchmarks (the paper evaluates
   on ~100 NJR programs; the full-corpus pass above is what proves the
   scheduler completes at 1000), appending to the same results file.

Finally renders the paper-style table from the streamed JSONL into
``benchmarks/artifacts/njr_report.txt``.
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.harness.experiments import ExperimentConfig  # noqa: E402
from repro.harness.report import (  # noqa: E402
    ResultsWriter,
    report_from_results,
)
from repro.parallel.scheduler import (  # noqa: E402
    load_cost_hints,
    run_scheduled_corpus_experiment,
)
from repro.workloads.corpus import (  # noqa: E402
    CorpusConfig,
    iter_corpus,
    iter_saved_corpus,
    load_manifest,
    save_corpus,
)
from repro.workloads.debloat import add_debloat_instances  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
RUN_DIR = os.path.join(HERE, "runs", "njr")
CORPUS_DIR = os.path.join(RUN_DIR, "corpus")
RESULTS = os.path.join(RUN_DIR, "njr_results.jsonl")
ARTIFACTS = os.path.join(HERE, "artifacts")
REPORT = os.path.join(ARTIFACTS, "njr_report.txt")
SAMPLE = 100  # our-reducer pass size (the paper's ~100 NJR programs)
CORPUS_JOBS = 2


def log(message: str) -> None:
    stamp = time.strftime("%H:%M:%S")
    print(f"[{stamp}] {message}", flush=True)


def generate() -> None:
    if os.path.exists(os.path.join(CORPUS_DIR, "manifest.json")):
        log("corpus already persisted, skipping generation")
        return
    os.makedirs(RUN_DIR, exist_ok=True)
    config = CorpusConfig.njr()
    log(f"generating {config.num_benchmarks} benchmarks -> {CORPUS_DIR}")
    done = [0]

    def progress(benchmark):
        done[0] += 1
        if done[0] % 25 == 0:
            log(f"  generated {done[0]}/{config.num_benchmarks}")

    save_corpus(iter_corpus(config), CORPUS_DIR, progress=progress)
    log("corpus persisted")


def full_corpus_pass() -> None:
    config = ExperimentConfig(strategies=("jreduce",), keep_going=True)
    log(f"pass A: jreduce + debloat over the full corpus "
        f"(corpus-jobs {CORPUS_JOBS})")
    done = [0]

    def progress(line: str) -> None:
        done[0] += 1
        if done[0] % 50 == 0:
            log(f"  [{done[0]}] {line}")

    with ResultsWriter(RESULTS) as writer:
        count = run_scheduled_corpus_experiment(
            corpus_path=CORPUS_DIR,
            config=config,
            jobs=CORPUS_JOBS,
            include_debloat=True,
            on_outcome=writer.write,
            collect=False,
            progress=progress,
        )
    log(f"pass A complete: {count} outcomes")


def sample_pass() -> None:
    config = ExperimentConfig(strategies=("our-reducer",), keep_going=True)
    log(f"pass B: our-reducer over the first {SAMPLE} benchmarks")
    benchmarks = list(
        itertools.islice(iter_saved_corpus(CORPUS_DIR), SAMPLE)
    )
    add_debloat_instances(benchmarks)
    hints = load_cost_hints(RESULTS) if os.path.exists(RESULTS) else None
    done = [0]

    def progress(line: str) -> None:
        done[0] += 1
        if done[0] % 10 == 0:
            log(f"  [{done[0]}] {line}")

    with ResultsWriter(RESULTS) as writer:
        count = run_scheduled_corpus_experiment(
            benchmarks=benchmarks,
            config=config,
            jobs=CORPUS_JOBS,
            on_outcome=writer.write,
            collect=False,
            progress=progress,
            cost_hints=hints,
        )
    log(f"pass B complete: {count} outcomes")


def render() -> None:
    manifest = load_manifest(CORPUS_DIR)
    entries = manifest["benchmarks"]
    import math

    def geo(values):
        return math.exp(sum(math.log(v) for v in values) / len(values))

    stats = (
        f"corpus: {len(entries)} benchmarks | geo-means: "
        f"{geo([e['classes'] for e in entries]):.0f} classes, "
        f"{geo([e['bytes'] for e in entries]) / 1024:.1f} KB, "
        f"{geo([e['items'] for e in entries]) / 1000:.1f}k items, "
        f"{geo([e['clauses'] for e in entries]) / 1000:.1f}k clauses\n"
        "paper : geo-means: 184 classes, 285.0 KB, 2.9k items, "
        "8.7k clauses\n"
    )
    report = report_from_results(RESULTS)
    os.makedirs(ARTIFACTS, exist_ok=True)
    with open(REPORT, "w", encoding="utf-8") as fh:
        fh.write(stats + "\n" + report.render() + "\n")
    log(f"report -> {REPORT}")
    summary = {
        "benchmarks": len(entries),
        "result_rows": report.rows,
        "geo_classes": round(geo([e["classes"] for e in entries]), 1),
        "geo_kb": round(geo([e["bytes"] for e in entries]) / 1024, 1),
        "geo_items": round(geo([e["items"] for e in entries]), 1),
        "geo_clauses": round(geo([e["clauses"] for e in entries]), 1),
    }
    with open(os.path.join(ARTIFACTS, "njr_summary.json"), "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    log(f"summary: {summary}")


def main() -> int:
    started = time.time()
    generate()
    if os.path.exists(RESULTS):
        os.unlink(RESULTS)
    full_corpus_pass()
    sample_pass()
    render()
    log(f"all done in {(time.time() - started) / 3600:.2f}h")
    return 0


if __name__ == "__main__":
    sys.exit(main())

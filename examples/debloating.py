#!/usr/bin/env python3
"""Using the reducer as a debloater (Section 6, "Debloating").

The paper: "Given a test suite, we define the black-box predicate in
Definition 4.1 to be true if all tests pass.  This guarantees that the
application preserves the behavior described by the test-suite."

We simulate a test suite as a set of probe methods: a test passes when
its method body is intact and the application is still valid — so the
predicate is "every probe's code item is kept".  GBR then computes the
smallest valid application preserving all tests: a debloated build.

Run:  python examples/debloating.py
"""

from repro.bytecode import application_size_bytes, items_of, reduce_application
from repro.bytecode.items import CodeItem
from repro.bytecode.validator import validate_application
from repro.decompiler.oracle import entry_items
from repro.logic.cnf import Clause
from repro.bytecode.constraints import generate_constraints
from repro.reduction import ReductionProblem, generalized_binary_reduction
from repro.workloads import generate_application
from repro.workloads.generator import WorkloadConfig


def main() -> None:
    app = generate_application(
        11, WorkloadConfig(num_classes=50, num_interfaces=8)
    )
    total = application_size_bytes(app)
    print(f"Application: {len(app.classes)} classes, {total:,} bytes.")

    # The "test suite": three probe methods spread across the app.
    probes = [
        item
        for item in items_of(app)
        if isinstance(item, CodeItem) and not item.method_name.startswith("im")
    ][::7][:3]
    print("Test suite probes:")
    for probe in probes:
        print(f"  {probe}")

    test_suite = frozenset(probes) | frozenset(entry_items(app))

    def all_tests_pass(kept) -> bool:
        return test_suite <= kept

    constraint = generate_constraints(app)
    for item in test_suite:
        constraint.add_clause(Clause.unit(item))

    problem = ReductionProblem(
        variables=items_of(app),
        predicate=all_tests_pass,
        constraint=constraint,
        description="debloat to the test suite",
    )
    result = generalized_binary_reduction(problem)
    debloated = reduce_application(app, result.solution)

    assert validate_application(debloated, raise_on_error=False) == []
    size = application_size_bytes(debloated)
    print(f"\nDebloated build: {len(debloated.classes)} classes, "
          f"{size:,} bytes ({size / total:.1%} of the original), "
          f"found in {result.predicate_calls} test-suite runs.")
    print("The debloated application is structurally valid and contains "
          "every probed behavior.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Reducing a bytecode application that crashes a decompiler.

The Section 5 scenario at single-benchmark scale: generate a synthetic
application, find a decompiler whose output fails to compile on it, then
shrink the application with every strategy while preserving the full set
of compiler error messages.

Run:  python examples/decompiler_bug_hunt.py [seed]
"""

import sys

from repro.bytecode import (
    application_size_bytes,
    class_dependency_graph,
    items_of,
    reduce_application,
)
from repro.decompiler import DECOMPILERS
from repro.decompiler.oracle import DecompilerOracle, build_reduction_problem
from repro.reduction import (
    LossyVariant,
    binary_reduction,
    generalized_binary_reduction,
    lossy_reduce,
)
from repro.workloads import generate_application
from repro.workloads.generator import WorkloadConfig


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    app = generate_application(
        seed, WorkloadConfig(num_classes=40, num_interfaces=6)
    )
    total = application_size_bytes(app)
    print(f"Generated application: {len(app.classes)} classes, "
          f"{total:,} bytes, {len(items_of(app))} reducible items.")

    oracle = None
    for name in DECOMPILERS:
        candidate = DecompilerOracle(app, name)
        if candidate.is_buggy:
            oracle = candidate
            break
    if oracle is None:
        print("All three decompilers translate this app cleanly; "
              "try another seed.")
        return

    print(f"\nDecompiler {oracle.decompiler.name!r} produces "
          f"{len(oracle.original_errors)} compiler errors:")
    for message in sorted(oracle.original_errors):
        print(f"  {message}")

    problem = build_reduction_problem(app, oracle.decompiler)

    print("\n--- Our reducer (GBR over the logical model) ---")
    result = generalized_binary_reduction(problem)
    reduced = reduce_application(app, result.solution)
    print(f"kept {len(reduced.classes)} classes, "
          f"{application_size_bytes(reduced):,} bytes "
          f"({application_size_bytes(reduced) / total:.1%}) "
          f"in {result.predicate_calls} decompiler runs")

    print("\n--- J-Reduce (binary reduction over the class graph) ---")
    jresult = binary_reduction(
        class_dependency_graph(app),
        oracle.class_predicate,
        required=[app.entry_class],
    )
    japp = app.replace_classes(
        tuple(c for c in app.classes if c.name in jresult.solution)
    )
    print(f"kept {len(japp.classes)} classes, "
          f"{application_size_bytes(japp):,} bytes "
          f"({application_size_bytes(japp) / total:.1%}) "
          f"in {jresult.predicate_calls} decompiler runs")

    for variant in LossyVariant:
        print(f"\n--- Lossy encoding ({variant.value}) + binary reduction ---")
        lresult = lossy_reduce(problem, variant)
        lapp = reduce_application(app, lresult.solution)
        print(f"kept {len(lapp.classes)} classes, "
              f"{application_size_bytes(lapp):,} bytes "
              f"({application_size_bytes(lapp) / total:.1%}) "
              f"in {lresult.predicate_calls} decompiler runs")

    # Show that the reduced app still exhibits exactly the same errors.
    assert oracle.errors_of(reduced) == oracle.original_errors
    print("\nThe GBR-reduced application still produces exactly the "
          "original error messages — ready for the bug report.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Type-checking FJI source and exploring its dependency model.

Parses an FJI program from source text, runs the constraint-generating
type checker of Section 3, prints the dependency constraints, counts the
valid sub-inputs, and reduces against a made-up requirement — all the
Section 2/3 machinery on user-supplied source.

Run:  python examples/fji_model_counting.py
"""

from repro.fji import check_program, parse_program, pretty_program, reduce_program
from repro.fji.variables import CodeVar, variables_of
from repro.logic import count_models, to_dimacs
from repro.logic.msa import MsaSolver

SOURCE = """
// A tiny plugin system: a registry dispatches to handlers through an
// interface; one handler is the "buggy" one we want to isolate.

interface Handler {
  String handle();
}

class LogHandler extends Object implements Handler {
  LogHandler() { super(); }
  String handle() { return new String(); }
}

class NetHandler extends Object implements Handler {
  NetHandler() { super(); }
  String handle() { return new String(); }
}

class Registry extends Object {
  Registry() { super(); }
  String dispatch(Handler h) { return h.handle(); }
  String run() { return new Registry().dispatch(new NetHandler()); }
}

new Registry().run();
"""


def main() -> None:
    program = parse_program(SOURCE)
    constraints = check_program(program)
    variables = variables_of(program)

    print(f"The program type checks; V(P) has {len(variables)} variables "
          f"and the type rules produced {len(constraints)} constraints:\n")
    for clause in sorted(constraints.clauses, key=repr):
        print(f"  {clause}")

    print(f"\nValid sub-inputs (#SAT): {count_models(constraints):,} "
          f"out of {2 ** len(variables):,} subsets.")

    print("\nDIMACS export (excerpt):")
    dimacs_lines = to_dimacs(constraints).splitlines()
    header_at = next(
        i for i, line in enumerate(dimacs_lines) if line.startswith("p cnf")
    )
    for line in dimacs_lines[max(0, header_at - 2): header_at + 4]:
        print(f"  {line}")

    # Find the smallest valid program that keeps NetHandler's code.
    solver = MsaSolver(constraints, variables)
    required = CodeVar("NetHandler", "handle")
    model = solver.compute(require_true={required})
    assert model is not None
    print(f"\nSmallest valid sub-input keeping {required}: "
          f"{len(model)} items")
    print(pretty_program(reduce_program(program, model)))


if __name__ == "__main__":
    main()

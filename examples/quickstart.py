#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Builds the Figure 1a program, type checks it while generating the
dependency constraints of Figure 2, counts the valid sub-inputs with the
#SAT engine, runs Generalized Binary Reduction against the hypothetical
buggy tool, and prints the reduced program — Figure 1b.

Run:  python examples/quickstart.py
"""

from repro.fji.examples import (
    MAIN_CODE,
    figure1_bug_trigger,
    figure1_constraints,
    figure1_problem,
    figure1_program,
)
from repro.fji.pretty import pretty_program
from repro.fji.reducer import reduce_program
from repro.fji.variables import variables_of
from repro.logic import count_models
from repro.reduction import generalized_binary_reduction


def main() -> None:
    program = figure1_program()
    print("=== The input program (Figure 1a) ===")
    print(pretty_program(program))

    variables = variables_of(program)
    constraints = figure1_constraints(include_main_requirement=False)
    print(f"V(P) has {len(variables)} variables; the type rules generated "
          f"{len(constraints)} constraints (Figure 2).")

    models = count_models(constraints)
    print(f"#SAT says {models:,} of the {2 ** len(variables):,} sub-inputs "
          "are valid programs.")

    trigger = ", ".join(sorted(map(str, figure1_bug_trigger())))
    print(f"\nThe tool crashes when {trigger} are present together.")

    problem = figure1_problem()
    result = generalized_binary_reduction(
        problem, require_true=frozenset({MAIN_CODE})
    )
    print(f"GBR found a {len(result.solution)}-item solution in "
          f"{result.predicate_calls} runs of the tool (the paper: 11).")

    reduced = reduce_program(program, result.solution)
    print("\n=== The reduced program (Figure 1b) ===")
    print(pretty_program(reduced))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Comparing every reduction strategy on one problem.

Runs GBR (both variable orders), the two lossy encodings, and ddmin on
the same instance and prints a comparison table — a miniature of the
evaluation, including the validity-blind ddmin baseline the paper's
introduction discusses.

Run:  python examples/strategy_comparison.py [seed]
"""

import sys

from repro.bytecode import application_size_bytes, reduce_application
from repro.decompiler import DECOMPILERS
from repro.decompiler.oracle import DecompilerOracle, build_reduction_problem
from repro.reduction import STRATEGIES, run_strategy
from repro.workloads import generate_application
from repro.workloads.generator import WorkloadConfig


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    app = generate_application(
        seed, WorkloadConfig(num_classes=18, num_interfaces=4)
    )
    oracle = next(
        (
            DecompilerOracle(app, name)
            for name in DECOMPILERS
            if DecompilerOracle(app, name).is_buggy
        ),
        None,
    )
    if oracle is None:
        print("No buggy decompiler on this seed; try another.")
        return

    problem = build_reduction_problem(app, oracle.decompiler)
    total = application_size_bytes(app)
    print(f"Instance: {len(app.classes)} classes / {total:,} bytes; "
          f"decompiler {oracle.decompiler.name!r} with "
          f"{len(oracle.original_errors)} errors.\n")
    print(f"{'strategy':<18s} {'items':>6s} {'bytes':>9s} {'rel':>7s} "
          f"{'runs':>6s} {'secs':>7s}")

    for name in sorted(STRATEGIES):
        result = run_strategy(name, problem)
        reduced = reduce_application(app, result.solution)
        size = application_size_bytes(reduced)
        print(
            f"{name:<18s} {len(result.solution):>6d} {size:>9,d} "
            f"{size / total:>6.1%} {result.predicate_calls:>6d} "
            f"{result.elapsed_seconds:>7.2f}"
        )

    print("\n(ddmin probes invalid sub-inputs blindly — note its run "
          "count; the logic-guided strategies only ever run valid "
          "inputs.)")


if __name__ == "__main__":
    main()

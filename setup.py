"""Setuptools shim.

This environment has no `wheel` package (and no network to fetch one), so
PEP 517 editable installs fail with "invalid command 'bdist_wheel'".  This
shim enables the legacy path:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()

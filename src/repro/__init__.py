"""repro — a Python reproduction of "Logical Bytecode Reduction" (PLDI 2021).

Kalhauge & Palsberg's insight: model *all* internal dependencies of a
failure-inducing input in propositional Boolean logic, so that reduction
only ever evaluates valid sub-inputs, then search with Generalized
Binary Reduction — a polynomial-time loop interleaving runs of the buggy
tool with approximate minimal-satisfying-assignment computations.

Package map (see README.md for the tour):

- :mod:`repro.logic` — CNF, SAT, MSA_<, #SAT, DIMACS,
- :mod:`repro.graphs` — digraphs, SCCs, closures,
- :mod:`repro.reduction` — the Input Reduction Problem, GBR, binary
  reduction, lossy encodings, ddmin,
- :mod:`repro.fji` — Featherweight Java with Interfaces (Section 3),
- :mod:`repro.bytecode` — the class-file substrate and its logical model,
- :mod:`repro.decompiler` — simulated buggy decompilers + mini-javac,
- :mod:`repro.workloads` — seeded program generators and the corpus,
- :mod:`repro.harness` — the Section 5 experiment harness,
- :mod:`repro.observability` — spans, metrics, JSONL run telemetry,
- :mod:`repro.cli` — the ``jlreduce`` command-line tool.
"""

__version__ = "1.0.0"
__paper__ = (
    "Christian Gram Kalhauge and Jens Palsberg. 2021. Logical Bytecode "
    "Reduction. PLDI 2021. https://doi.org/10.1145/3453483.3454091"
)

__all__ = ["__version__", "__paper__"]

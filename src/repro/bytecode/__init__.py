"""The Java-bytecode-like substrate.

Python has no production-grade JVM class-file stack, so — per the
substitution rule in DESIGN.md — this package implements one at the
fidelity the reducer needs:

- :mod:`repro.bytecode.descriptors` — JVM-style field/method descriptors,
- :mod:`repro.bytecode.constant_pool` — a deduplicating constant pool,
- :mod:`repro.bytecode.instructions` — a JVM-like instruction set whose
  instructions expose their symbolic references,
- :mod:`repro.bytecode.classfile` — class files (classes *and*
  interfaces), fields, methods, code attributes, applications,
- :mod:`repro.bytecode.serializer` — a deterministic binary format (the
  honest "bytes" metric of the evaluation),
- :mod:`repro.bytecode.hierarchy` — subtyping, method/field resolution,
- :mod:`repro.bytecode.items` — the 11 reducible item kinds,
- :mod:`repro.bytecode.constraints` — the logical dependency model
  (Section 3's "Java Bytecode" extension of FJI),
- :mod:`repro.bytecode.reducer` — applies a truth assignment to an app,
- :mod:`repro.bytecode.validator` — structural validity (the bytecode
  analogue of Theorem 3.1's "reduced program type checks"),
- :mod:`repro.bytecode.metrics` — class/byte size measures.
"""

from repro.bytecode.classfile import (
    Application,
    ClassFile,
    Code,
    Field,
    MethodDef,
)
from repro.bytecode.descriptors import (
    ArrayType,
    MethodDescriptor,
    ObjectType,
    PrimitiveType,
    parse_field_descriptor,
    parse_method_descriptor,
)
from repro.bytecode.items import (
    AttributeItem,
    ClassItem,
    CodeItem,
    ConstructorCodeItem,
    ConstructorItem,
    FieldItem,
    ImplementsItem,
    InterfaceItem,
    Item,
    MethodItem,
    SignatureItem,
    SuperClassItem,
    items_of,
)
from repro.bytecode.constraints import generate_constraints, class_dependency_graph
from repro.bytecode.reducer import reduce_application
from repro.bytecode.validator import validate_application, ValidationError
from repro.bytecode.serializer import serialize_application, deserialize_application
from repro.bytecode.metrics import application_size_bytes, SizeMetrics, size_metrics

__all__ = [
    "Application",
    "ClassFile",
    "Code",
    "Field",
    "MethodDef",
    "PrimitiveType",
    "ObjectType",
    "ArrayType",
    "MethodDescriptor",
    "parse_field_descriptor",
    "parse_method_descriptor",
    "Item",
    "ClassItem",
    "InterfaceItem",
    "SuperClassItem",
    "ImplementsItem",
    "MethodItem",
    "CodeItem",
    "ConstructorItem",
    "ConstructorCodeItem",
    "FieldItem",
    "SignatureItem",
    "AttributeItem",
    "items_of",
    "generate_constraints",
    "class_dependency_graph",
    "reduce_application",
    "validate_application",
    "ValidationError",
    "serialize_application",
    "deserialize_application",
    "application_size_bytes",
    "size_metrics",
    "SizeMetrics",
]

"""Class files and applications.

A :class:`ClassFile` models one ``.class``: name, access flags,
superclass, implemented interfaces, fields, methods (with optional
:class:`Code`), and class-level attributes.  Interfaces are class files
with ``is_interface`` set, exactly as on the JVM.

An :class:`Application` is a closed set of class files plus an entry
point — the unit the decompilers consume and the reducer shrinks.
``Object`` and a tiny built-in library (``String``) are implicit and
never part of the reducible surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.bytecode.descriptors import (
    MethodDescriptor,
    parse_field_descriptor,
    parse_method_descriptor,
)
from repro.bytecode.instructions import Instruction, MethodRef

__all__ = [
    "JAVA_OBJECT",
    "JAVA_STRING",
    "BUILTIN_CLASSES",
    "INIT",
    "Code",
    "MethodDef",
    "Field",
    "Attribute",
    "ClassFile",
    "Application",
]

JAVA_OBJECT = "java/lang/Object"
JAVA_STRING = "java/lang/String"
BUILTIN_CLASSES = frozenset({JAVA_OBJECT, JAVA_STRING})

INIT = "<init>"


@dataclass(frozen=True)
class Code:
    """A method body: stack/locals budget plus the instruction list."""

    max_stack: int
    max_locals: int
    instructions: Tuple[Instruction, ...]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass(frozen=True)
class MethodDef:
    """A method (or constructor when ``name == '<init>'``)."""

    name: str
    descriptor: str
    is_static: bool = False
    is_abstract: bool = False
    code: Optional[Code] = None

    def __post_init__(self) -> None:
        parse_method_descriptor(self.descriptor)  # validate eagerly
        if self.is_abstract and self.code is not None:
            raise ValueError(f"abstract method {self.name} has code")

    @property
    def is_constructor(self) -> bool:
        return self.name == INIT

    @property
    def parsed_descriptor(self) -> MethodDescriptor:
        return parse_method_descriptor(self.descriptor)

    @property
    def key(self) -> Tuple[str, str]:
        """(name, descriptor) — the JVM method identity within a class."""
        return (self.name, self.descriptor)


@dataclass(frozen=True)
class Field:
    """A field declaration."""

    name: str
    descriptor: str
    is_static: bool = False

    def __post_init__(self) -> None:
        parse_field_descriptor(self.descriptor)


@dataclass(frozen=True)
class Attribute:
    """A class-level attribute (SourceFile, Deprecated, ...).

    Attributes are the 11th reducible item kind: removable metadata that
    contributes bytes but no semantics.
    """

    name: str
    payload: str = ""


@dataclass(frozen=True)
class ClassFile:
    """One class or interface."""

    name: str
    superclass: str = JAVA_OBJECT
    interfaces: Tuple[str, ...] = ()
    is_interface: bool = False
    is_abstract: bool = False
    fields: Tuple[Field, ...] = ()
    methods: Tuple[MethodDef, ...] = ()
    attributes: Tuple[Attribute, ...] = ()

    def __post_init__(self) -> None:
        if self.is_interface and self.superclass != JAVA_OBJECT:
            raise ValueError(
                f"interface {self.name} must extend {JAVA_OBJECT}"
            )
        keys = [m.key for m in self.methods]
        if len(keys) != len(set(keys)):
            raise ValueError(f"class {self.name}: duplicate method keys")
        field_names = [f.name for f in self.fields]
        if len(field_names) != len(set(field_names)):
            raise ValueError(f"class {self.name}: duplicate field names")

    def method(self, name: str, descriptor: str) -> Optional[MethodDef]:
        for method in self.methods:
            if method.name == name and method.descriptor == descriptor:
                return method
        return None

    def field(self, name: str) -> Optional[Field]:
        for fdecl in self.fields:
            if fdecl.name == name:
                return fdecl
        return None

    def constructors(self) -> Tuple[MethodDef, ...]:
        return tuple(m for m in self.methods if m.is_constructor)

    def declared_methods(self) -> Tuple[MethodDef, ...]:
        return tuple(m for m in self.methods if not m.is_constructor)


@dataclass(frozen=True)
class Application:
    """A closed program: class files plus the entry point."""

    classes: Tuple[ClassFile, ...]
    entry_class: str = ""
    entry_method: str = "main"
    entry_descriptor: str = "()V"

    def __post_init__(self) -> None:
        names = [c.name for c in self.classes]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate classes: {sorted(duplicates)}")
        clash = set(names) & BUILTIN_CLASSES
        if clash:
            raise ValueError(f"classes shadow builtins: {sorted(clash)}")

    def class_file(self, name: str) -> Optional[ClassFile]:
        return self._table().get(name)

    def has_class(self, name: str) -> bool:
        return name in self._table() or name in BUILTIN_CLASSES

    def entry_ref(self) -> MethodRef:
        return MethodRef(
            self.entry_class, self.entry_method, self.entry_descriptor
        )

    def class_names(self) -> List[str]:
        return [c.name for c in self.classes]

    def replace_classes(
        self, classes: Tuple[ClassFile, ...]
    ) -> "Application":
        return replace(self, classes=classes)

    def __len__(self) -> int:
        return len(self.classes)

    def _table(self) -> Dict[str, ClassFile]:
        table = getattr(self, "_table_cache", None)
        if table is None:
            table = {c.name: c for c in self.classes}
            object.__setattr__(self, "_table_cache", table)
        return table

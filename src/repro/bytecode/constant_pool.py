"""A deduplicating constant pool.

Real class files store every name, descriptor, and string once in a
constant pool and reference it by index; sharing is what makes removing
a method shrink the file by more than its code bytes.  Our serializer
uses the same design, so the "bytes" metric responds to reduction the
way real class files do.

Indices are 1-based, as on the JVM (index 0 is reserved).
"""

from __future__ import annotations

from typing import Dict, Iterator, List

__all__ = ["ConstantPool"]


class ConstantPool:
    """A UTF-8 constant pool with stable, deduplicated 1-based indices."""

    def __init__(self) -> None:
        self._entries: List[str] = []
        self._index: Dict[str, int] = {}

    def add(self, text: str) -> int:
        """Intern ``text`` and return its (1-based) index."""
        existing = self._index.get(text)
        if existing is not None:
            return existing
        self._entries.append(text)
        index = len(self._entries)
        self._index[text] = index
        return index

    def get(self, index: int) -> str:
        """Look up an entry by its 1-based index."""
        if not 1 <= index <= len(self._entries):
            raise IndexError(f"constant pool index {index} out of range")
        return self._entries[index - 1]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __contains__(self, text: str) -> bool:
        return text in self._index

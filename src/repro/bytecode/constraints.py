"""The logical dependency model for bytecode (Section 3, "Java Bytecode").

:func:`generate_constraints` maps an application to a CNF over its
reducible items such that every satisfying assignment is a structurally
valid sub-application (see :mod:`repro.bytecode.validator` for the
validity judgment; the pair is property-tested together).

Three constraint families, mirroring the running example's taxonomy:

- **syntactic** — children require their parents (a method its class, a
  body its method, ...), so reduced class files are well-formed;
- **referential** — code requires the classes, methods (via ``mAny``),
  and fields (via ``fAny``) it mentions; members require the types in
  their descriptors; relations require both endpoints;
- **non-referential semantic** — interface/abstract-method obligations
  ``(relation-path /\\ signature) => mAny`` and subtype-path requirements
  for casts with statically known operand types; method and field
  resolution through a superclass chain also requires the chain's
  relation items, which makes ``mAny`` a disjunction of conjunctions —
  the beyond-graph fragment the paper is about.

:func:`class_dependency_graph` produces the *class-granularity* graph
J-Reduce works on (one node per class, an edge per reference).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.bytecode.classfile import (
    Application,
    BUILTIN_CLASSES,
    ClassFile,
    INIT,
    JAVA_OBJECT,
    JAVA_STRING,
    MethodDef,
)
from repro.bytecode.descriptors import (
    parse_field_descriptor,
    parse_method_descriptor,
)
from repro.bytecode.hierarchy import Hierarchy
from repro.bytecode.instructions import (
    CheckCast,
    InvokeSpecial,
    LoadClassConstant,
)
from repro.bytecode.items import (
    AttributeItem,
    ClassItem,
    CodeItem,
    ConstructorCodeItem,
    ConstructorItem,
    FieldItem,
    ImplementsItem,
    InterfaceItem,
    Item,
    MethodItem,
    SignatureItem,
    SuperClassItem,
    items_of,
)
from repro.graphs.digraph import DiGraph
from repro.logic.cnf import CNF
from repro.logic.formula import FALSE, TRUE, Formula, Implies, Var, conj, disj

__all__ = ["generate_constraints", "class_dependency_graph", "ConstraintError"]

#: Methods on the built-in classes, free to call (never reducible).
BUILTIN_METHODS = frozenset(
    {
        (JAVA_OBJECT, INIT, "()V"),
        (JAVA_OBJECT, "hashCode", "()I"),
        (JAVA_OBJECT, "toString", "()Ljava/lang/String;"),
        (JAVA_STRING, INIT, "()V"),
        (JAVA_STRING, "length", "()I"),
    }
)


class ConstraintError(ValueError):
    """The application is not closed (a reference cannot resolve)."""


def generate_constraints(app: Application) -> CNF:
    """Map an application to its dependency CNF over ``items_of(app)``."""
    return _Generator(app).run()


class _Generator:
    def __init__(self, app: Application):
        self.app = app
        self.hierarchy = Hierarchy(app)

    # ------------------------------------------------------------------

    def run(self) -> CNF:
        cnf = CNF(variables=items_of(self.app))
        for decl in self.app.classes:
            for formula in self.class_constraints(decl):
                cnf.add_formula(formula)
        return cnf

    # ------------------------------------------------------------------
    # Formula helpers
    # ------------------------------------------------------------------

    def type_formula(self, name: str) -> Formula:
        if name in BUILTIN_CLASSES:
            return TRUE
        decl = self.app.class_file(name)
        if decl is None:
            raise ConstraintError(f"reference to unknown type {name!r}")
        if decl.is_interface:
            return Var(InterfaceItem(name))
        return Var(ClassItem(name))

    def descriptor_types(self, descriptor: str, is_method: bool) -> Formula:
        if is_method:
            refs = parse_method_descriptor(descriptor).referenced_classes()
        else:
            refs = parse_field_descriptor(descriptor).referenced_classes()
        return conj(self.type_formula(name) for name in sorted(refs))

    def member_item(self, class_name: str, method: MethodDef) -> Item:
        decl = self.app.class_file(class_name)
        if method.is_constructor:
            return ConstructorItem(class_name, method.descriptor)
        if method.is_abstract or (decl is not None and decl.is_interface):
            return SignatureItem(class_name, method.name, method.descriptor)
        return MethodItem(class_name, method.name, method.descriptor)

    def paths_formula(self, sub: str, sup: str) -> Formula:
        """Disjunction over subtype derivations (FALSE when none)."""
        paths = self.hierarchy.subtype_paths(sub, sup)
        if not paths:
            return FALSE
        return disj(conj(Var(item) for item in sorted(path, key=str))
                    for path in paths)

    def m_any(self, owner: str, name: str, descriptor: str) -> Formula:
        """At least one reachable declaration of owner.name:descriptor.

        A candidate declared on ancestor X contributes
        ``(path owner->X alive) /\\ [X.name]``.
        """
        if (owner, name, descriptor) in BUILTIN_METHODS:
            return TRUE
        candidates = self.hierarchy.method_candidates(owner, name, descriptor)
        options: List[Formula] = []
        for declaring, method in candidates:
            path = self.paths_formula(owner, declaring)
            if path == FALSE:
                continue
            options.append(
                conj([path, Var(self.member_item(declaring, method))])
            )
        if not options:
            raise ConstraintError(
                f"method {owner}.{name}{descriptor} does not resolve"
            )
        return disj(options)

    def f_any(self, owner: str, name: str) -> Formula:
        candidates = self.hierarchy.field_candidates(owner, name)
        options: List[Formula] = []
        for declaring, _field in candidates:
            path = self.paths_formula(owner, declaring)
            if path == FALSE:
                continue
            options.append(
                conj([path, Var(FieldItem(declaring, name))])
            )
        if not options:
            raise ConstraintError(f"field {owner}.{name} does not resolve")
        return disj(options)

    # ------------------------------------------------------------------
    # Per-class constraints
    # ------------------------------------------------------------------

    def class_constraints(self, decl: ClassFile) -> Iterable[Formula]:
        name = decl.name
        self_var = self.type_formula(name)

        # Relations.
        if not decl.is_interface and decl.superclass != JAVA_OBJECT:
            super_item = Var(SuperClassItem(name))
            yield Implies(super_item, self_var)
            yield Implies(super_item, self.type_formula(decl.superclass))
        for iface in decl.interfaces:
            impl = Var(ImplementsItem(name, iface))
            yield Implies(impl, self_var)
            yield Implies(impl, self.type_formula(iface))

        # Attributes.
        for attribute in decl.attributes:
            yield Implies(Var(AttributeItem(name, attribute.name)), self_var)

        # Fields.
        for fdecl in decl.fields:
            field_var = Var(FieldItem(name, fdecl.name))
            yield Implies(field_var, self_var)
            types = self.descriptor_types(fdecl.descriptor, is_method=False)
            if types != TRUE:
                yield Implies(field_var, types)

        # Methods, signatures, constructors.
        for method in decl.methods:
            yield from self.method_constraints(decl, method)

        # Interface / abstract obligations (only concrete classes carry
        # them; abstract classes defer to their concrete subclasses).
        if not decl.is_interface and not decl.is_abstract:
            yield from self.obligation_constraints(decl)

    def method_constraints(
        self, decl: ClassFile, method: MethodDef
    ) -> Iterable[Formula]:
        name = decl.name
        member_var = Var(self.member_item(name, method))
        yield Implies(member_var, self.type_formula(name))
        types = self.descriptor_types(method.descriptor, is_method=True)
        if types != TRUE:
            yield Implies(member_var, types)

        if method.code is None:
            return
        if method.is_constructor:
            code_var: Formula = Var(
                ConstructorCodeItem(name, method.descriptor)
            )
        else:
            code_var = Var(CodeItem(name, method.name, method.descriptor))
        yield Implies(code_var, member_var)
        for requirement in self.code_requirements(decl, method):
            if requirement != TRUE:
                yield Implies(code_var, requirement)

    def code_requirements(
        self, decl: ClassFile, method: MethodDef
    ) -> Iterable[Formula]:
        assert method.code is not None
        for instruction in method.code:
            # Direct type references.
            for type_name in sorted(instruction.type_refs()):
                yield self.type_formula(type_name)

            method_ref = instruction.method_ref()
            if method_ref is not None:
                if isinstance(instruction, InvokeSpecial):
                    yield from self.invoke_special_requirements(
                        decl, instruction
                    )
                else:
                    yield self.m_any(
                        method_ref.owner, method_ref.name, method_ref.descriptor
                    )

            field_ref = instruction.field_ref()
            if field_ref is not None:
                yield self.f_any(field_ref.owner, field_ref.name)

            if isinstance(instruction, CheckCast):
                if instruction.known_from is not None:
                    paths = self.paths_formula(
                        instruction.known_from, instruction.class_name
                    )
                    if paths == FALSE:
                        raise ConstraintError(
                            f"cast {instruction.known_from} -> "
                            f"{instruction.class_name} can never succeed"
                        )
                    yield paths

            if isinstance(instruction, LoadClassConstant):
                # The generics/reflection approximation: reflection on C
                # depends on C extending all its superclasses.
                yield from self.reflection_requirements(
                    instruction.class_name
                )

    def invoke_special_requirements(
        self, decl: ClassFile, instruction: InvokeSpecial
    ) -> Iterable[Formula]:
        """invokespecial: constructors and super calls."""
        ref = instruction.method_ref()
        if instruction.is_super_call and ref.owner != JAVA_OBJECT:
            # An explicit super dispatch needs the extends relation:
            # without it the class extends Object and the target vanishes.
            yield Var(SuperClassItem(decl.name))
        if ref.name == INIT:
            if (ref.owner, ref.name, ref.descriptor) in BUILTIN_METHODS:
                return
            owner_decl = self.app.class_file(ref.owner)
            if owner_decl is None or owner_decl.method(INIT, ref.descriptor) is None:
                raise ConstraintError(
                    f"constructor {ref.owner}.<init>{ref.descriptor} "
                    "does not resolve"
                )
            yield Var(ConstructorItem(ref.owner, ref.descriptor))
        else:
            # Private or super method call: resolve like a virtual call.
            yield self.m_any(ref.owner, ref.name, ref.descriptor)

    def reflection_requirements(self, class_name: str) -> Iterable[Formula]:
        current = class_name
        while True:
            decl = self.app.class_file(current)
            if decl is None or decl.is_interface:
                return
            if decl.superclass == JAVA_OBJECT:
                return
            yield Var(SuperClassItem(current))
            current = decl.superclass

    def obligation_constraints(self, decl: ClassFile) -> Iterable[Formula]:
        """(relation-path alive /\\ signature alive) => mAny.

        Covers interfaces (directly or transitively implemented) and
        abstract superclasses of this concrete class.
        """
        name = decl.name

        # Interface obligations.
        for iface_name in sorted(self.hierarchy.all_interfaces(name)):
            iface = self.app.class_file(iface_name)
            if iface is None:
                continue
            paths = self.hierarchy.subtype_paths(name, iface_name)
            for signature in iface.methods:
                if signature.is_constructor:
                    continue
                sig_var = Var(
                    SignatureItem(
                        iface_name, signature.name, signature.descriptor
                    )
                )
                implementation = self.concrete_m_any(
                    name, signature.name, signature.descriptor
                )
                for path in paths:
                    antecedent = conj(
                        [sig_var]
                        + [Var(item) for item in sorted(path, key=str)]
                    )
                    yield Implies(antecedent, implementation)

        # Abstract-method obligations up the superclass chain.
        chain_items: List[Item] = []
        current = decl.superclass
        chain_source = name
        while current not in BUILTIN_CLASSES:
            ancestor = self.app.class_file(current)
            if ancestor is None:
                break
            chain_items.append(SuperClassItem(chain_source))
            for method in ancestor.methods:
                if not method.is_abstract:
                    continue
                sig_var = Var(
                    SignatureItem(current, method.name, method.descriptor)
                )
                antecedent = conj(
                    [sig_var] + [Var(item) for item in chain_items]
                )
                yield Implies(
                    antecedent,
                    self.concrete_m_any(
                        name, method.name, method.descriptor
                    ),
                )
            chain_source = current
            current = ancestor.superclass

    def concrete_m_any(
        self, owner: str, name: str, descriptor: str
    ) -> Formula:
        """Like ``m_any`` but only concrete implementations count."""
        candidates = self.hierarchy.method_candidates(owner, name, descriptor)
        options: List[Formula] = []
        for declaring, method in candidates:
            if method.is_abstract:
                continue
            declaring_decl = self.app.class_file(declaring)
            if declaring_decl is not None and declaring_decl.is_interface:
                continue
            path = self.paths_formula(owner, declaring)
            if path == FALSE:
                continue
            options.append(
                conj([path, Var(self.member_item(declaring, method))])
            )
        if not options:
            raise ConstraintError(
                f"{owner} has no concrete implementation of "
                f"{name}{descriptor}"
            )
        return disj(options)


# ---------------------------------------------------------------------------
# The class-granularity graph (J-Reduce's model)
# ---------------------------------------------------------------------------


def class_dependency_graph(app: Application) -> DiGraph:
    """One node per class; ``C -> D`` when C mentions D anywhere.

    This is the model of the FSE 2019 J-Reduce: "if a class A mentions a
    class B, then we have a dependency from A to B".
    """
    graph = DiGraph(nodes=app.class_names())

    def add(src: str, dst: str) -> None:
        if dst in BUILTIN_CLASSES or dst == src:
            return
        if app.class_file(dst) is not None:
            graph.add_edge(src, dst)

    for decl in app.classes:
        add(decl.name, decl.superclass)
        for iface in decl.interfaces:
            add(decl.name, iface)
        for fdecl in decl.fields:
            for ref in parse_field_descriptor(
                fdecl.descriptor
            ).referenced_classes():
                add(decl.name, ref)
        for method in decl.methods:
            for ref in parse_method_descriptor(
                method.descriptor
            ).referenced_classes():
                add(decl.name, ref)
            if method.code is None:
                continue
            for instruction in method.code:
                for ref in instruction.type_refs():
                    add(decl.name, ref)
    return graph

"""JVM-style type descriptors.

Field descriptors: ``I`` (int), ``J`` (long), ``Z`` (boolean), ``V``
(void, method returns only), ``LFoo;`` (object), ``[LFoo;`` (array).
Method descriptors: ``(LA;I)LB;``.

The reducer only cares about which *class names* a descriptor mentions
(:func:`referenced_classes`), but parsing/formatting real descriptor
syntax keeps the substrate honest and exercises the same code paths a
real class-file library would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Tuple, Union

__all__ = [
    "PrimitiveType",
    "ObjectType",
    "ArrayType",
    "JvmType",
    "MethodDescriptor",
    "parse_field_descriptor",
    "parse_method_descriptor",
    "DescriptorError",
]


class DescriptorError(ValueError):
    """Malformed descriptor text."""


class PrimitiveType(enum.Enum):
    """JVM primitive (and void) descriptors."""

    INT = "I"
    LONG = "J"
    FLOAT = "F"
    DOUBLE = "D"
    BOOLEAN = "Z"
    BYTE = "B"
    CHAR = "C"
    SHORT = "S"
    VOID = "V"

    def descriptor(self) -> str:
        return self.value

    def referenced_classes(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class ObjectType:
    """``LFoo;`` — a reference to class or interface ``Foo``."""

    class_name: str

    def descriptor(self) -> str:
        return f"L{self.class_name};"

    def referenced_classes(self) -> FrozenSet[str]:
        return frozenset({self.class_name})

    def __str__(self) -> str:
        return self.class_name


@dataclass(frozen=True)
class ArrayType:
    """``[T`` — an array of T."""

    element: "JvmType"

    def descriptor(self) -> str:
        return "[" + self.element.descriptor()

    def referenced_classes(self) -> FrozenSet[str]:
        return self.element.referenced_classes()

    def __str__(self) -> str:
        return f"{self.element}[]"


JvmType = Union[PrimitiveType, ObjectType, ArrayType]


@dataclass(frozen=True)
class MethodDescriptor:
    """``(params)return`` method shape."""

    parameters: Tuple[JvmType, ...]
    return_type: JvmType

    def descriptor(self) -> str:
        params = "".join(p.descriptor() for p in self.parameters)
        return f"({params}){self.return_type.descriptor()}"

    def referenced_classes(self) -> FrozenSet[str]:
        refs = set(self.return_type.referenced_classes())
        for param in self.parameters:
            refs |= param.referenced_classes()
        return frozenset(refs)

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.parameters)
        return f"({params}) -> {self.return_type}"


_PRIMITIVES = {p.value: p for p in PrimitiveType}


def parse_field_descriptor(text: str) -> JvmType:
    """Parse a single field descriptor (the whole string)."""
    parsed, rest = _parse_one(text)
    if rest:
        raise DescriptorError(f"trailing characters in descriptor: {text!r}")
    if parsed == PrimitiveType.VOID:
        raise DescriptorError("void is not a field type")
    return parsed


def parse_method_descriptor(text: str) -> MethodDescriptor:
    """Parse a ``(params)return`` method descriptor."""
    if not text.startswith("("):
        raise DescriptorError(f"method descriptor must start with '(': {text!r}")
    rest = text[1:]
    params: List[JvmType] = []
    while not rest.startswith(")"):
        if not rest:
            raise DescriptorError(f"unterminated parameter list: {text!r}")
        parsed, rest = _parse_one(rest)
        if parsed == PrimitiveType.VOID:
            raise DescriptorError("void is not a parameter type")
        params.append(parsed)
    return_type, trailing = _parse_one(rest[1:])
    if trailing:
        raise DescriptorError(f"trailing characters in descriptor: {text!r}")
    return MethodDescriptor(tuple(params), return_type)


def _parse_one(text: str) -> Tuple[JvmType, str]:
    if not text:
        raise DescriptorError("empty descriptor")
    head = text[0]
    if head in _PRIMITIVES:
        return _PRIMITIVES[head], text[1:]
    if head == "L":
        end = text.find(";")
        if end == -1:
            raise DescriptorError(f"unterminated object type: {text!r}")
        name = text[1:end]
        if not name:
            raise DescriptorError("empty class name in descriptor")
        return ObjectType(name), text[end + 1:]
    if head == "[":
        element, rest = _parse_one(text[1:])
        if element == PrimitiveType.VOID:
            raise DescriptorError("void cannot be an array element")
        return ArrayType(element), rest
    raise DescriptorError(f"unknown descriptor character {head!r}")

"""Class-hierarchy analysis: chains, resolution, subtype paths.

This is the bytecode analogue of FJI's helper rules (Figure 6):

- ``superclass_chain`` — the ``fields``/``mtype`` walk,
- ``resolve_method`` / ``method_candidates`` — ``mtype`` and ``mAny``,
- ``resolve_field`` / ``field_candidates`` — field lookup,
- ``subtype_paths`` — the subtyping judgment, returning every acyclic
  derivation as the list of *reducible relation items* it relies on
  (extends relations and implements entries).  Multiple paths are what
  push the dependency model beyond graphs: keeping the cast needs *some*
  path, a disjunction of conjunctions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.bytecode.classfile import (
    Application,
    BUILTIN_CLASSES,
    ClassFile,
    Field,
    JAVA_OBJECT,
    MethodDef,
)
from repro.bytecode.items import ImplementsItem, Item, SuperClassItem

__all__ = ["Hierarchy", "RelationEdge"]

#: One hierarchy edge a subtype path may use; None marks a free edge
#: (extending java/lang/Object is not reducible).
RelationEdge = Optional[Item]


class Hierarchy:
    """Resolution and subtyping over one application."""

    def __init__(self, app: Application):
        self.app = app

    # ------------------------------------------------------------------
    # Existence and chains
    # ------------------------------------------------------------------

    def exists(self, name: str) -> bool:
        return self.app.has_class(name)

    def is_interface(self, name: str) -> bool:
        decl = self.app.class_file(name)
        return decl is not None and decl.is_interface

    def superclass_chain(self, name: str) -> List[str]:
        """``name`` and its ancestors up to (and including) Object.

        Stops early at a missing ancestor; cycles raise ValueError.
        """
        chain: List[str] = []
        seen = set()
        current: Optional[str] = name
        while current is not None:
            if current in seen:
                raise ValueError(f"cyclic superclass chain at {current!r}")
            seen.add(current)
            chain.append(current)
            if current == JAVA_OBJECT:
                break
            if current in BUILTIN_CLASSES:
                chain.append(JAVA_OBJECT)
                break
            decl = self.app.class_file(current)
            current = decl.superclass if decl is not None else None
        return chain

    def all_interfaces(self, name: str) -> FrozenSet[str]:
        """Every interface reachable from ``name`` (classes + supers)."""
        out: set = set()
        stack = [name]
        seen = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            decl = self.app.class_file(current)
            if decl is None:
                continue
            for iface in decl.interfaces:
                out.add(iface)
                stack.append(iface)
            if not decl.is_interface and decl.superclass != JAVA_OBJECT:
                stack.append(decl.superclass)
        return frozenset(out)

    # ------------------------------------------------------------------
    # Method and field resolution
    # ------------------------------------------------------------------

    def method_candidates(
        self, owner: str, name: str, descriptor: str
    ) -> List[Tuple[str, MethodDef]]:
        """All declarations of name:descriptor visible on ``owner``.

        For classes: the superclass chain.  For interfaces: the interface
        plus its superinterfaces.  The first entry is the JVM resolution;
        the whole list feeds ``mAny``.
        """
        results: List[Tuple[str, MethodDef]] = []
        decl = self.app.class_file(owner)
        if decl is not None and decl.is_interface:
            for iface_name in self._interface_order(owner):
                iface = self.app.class_file(iface_name)
                if iface is None:
                    continue
                found = iface.method(name, descriptor)
                if found is not None:
                    results.append((iface_name, found))
            return results
        for class_name in self.superclass_chain(owner):
            class_decl = self.app.class_file(class_name)
            if class_decl is None:
                continue
            found = class_decl.method(name, descriptor)
            if found is not None:
                results.append((class_name, found))
        return results

    def resolve_method(
        self, owner: str, name: str, descriptor: str
    ) -> Optional[Tuple[str, MethodDef]]:
        candidates = self.method_candidates(owner, name, descriptor)
        return candidates[0] if candidates else None

    def field_candidates(
        self, owner: str, name: str
    ) -> List[Tuple[str, Field]]:
        """All declarations of field ``name`` on ``owner``'s chain."""
        results: List[Tuple[str, Field]] = []
        for class_name in self.superclass_chain(owner):
            decl = self.app.class_file(class_name)
            if decl is None:
                continue
            found = decl.field(name)
            if found is not None:
                results.append((class_name, found))
        return results

    def resolve_field(self, owner: str, name: str) -> Optional[Tuple[str, Field]]:
        candidates = self.field_candidates(owner, name)
        return candidates[0] if candidates else None

    def _interface_order(self, name: str) -> List[str]:
        """The interface and its superinterfaces, BFS order."""
        order: List[str] = []
        seen = set()
        queue = [name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            order.append(current)
            decl = self.app.class_file(current)
            if decl is not None:
                queue.extend(decl.interfaces)
        return order

    # ------------------------------------------------------------------
    # Subtyping
    # ------------------------------------------------------------------

    def relation_edges(
        self, name: str
    ) -> List[Tuple[str, RelationEdge]]:
        """Immediate supertypes of ``name`` with their relation items.

        Extends edges to Object are free (not reducible); other extends
        edges cost a :class:`SuperClassItem`, implements entries an
        :class:`ImplementsItem`.
        """
        decl = self.app.class_file(name)
        edges: List[Tuple[str, RelationEdge]] = []
        if decl is None:
            if name in BUILTIN_CLASSES and name != JAVA_OBJECT:
                edges.append((JAVA_OBJECT, None))
            return edges
        if not decl.is_interface:
            if decl.superclass == JAVA_OBJECT:
                edges.append((JAVA_OBJECT, None))
            else:
                edges.append((decl.superclass, SuperClassItem(name)))
        else:
            edges.append((JAVA_OBJECT, None))  # interfaces sit below Object
        for iface in decl.interfaces:
            edges.append((iface, ImplementsItem(name, iface)))
        return edges

    def subtype_paths(
        self, sub: str, sup: str, max_paths: int = 4
    ) -> List[FrozenSet[Item]]:
        """All acyclic derivations of ``sub <= sup``.

        Each derivation is returned as the frozenset of relation items it
        keeps alive.  An empty frozenset means the relation holds
        unconditionally.  At most ``max_paths`` (shortest-first) are
        returned; an empty list means ``sub`` is never a subtype.
        """
        if sub == sup or sup == JAVA_OBJECT:
            return [frozenset()]
        found: List[FrozenSet[Item]] = []
        stack: List[Tuple[str, Tuple[Item, ...], FrozenSet[str]]] = [
            (sub, (), frozenset({sub}))
        ]
        while stack and len(found) < max_paths:
            current, items, visited = stack.pop()
            for target, edge in self.relation_edges(current):
                if target in visited:
                    continue
                extended = items if edge is None else items + (edge,)
                if target == sup:
                    requirement = frozenset(extended)
                    if requirement not in found:
                        found.append(requirement)
                    continue
                stack.append((target, extended, visited | {target}))
        found.sort(key=lambda s: (len(s), sorted(map(str, s))))
        return found

    def is_subtype(self, sub: str, sup: str) -> bool:
        """Does a derivation exist in the *current* application?"""
        return bool(self.subtype_paths(sub, sup, max_paths=1))

"""A JVM-like instruction set.

Each instruction knows its opcode byte (for serialization) and exposes
the symbolic references the constraint generator needs:
``type_refs()`` (class/interface names), ``method_ref()`` and
``field_ref()``.

``CheckCast`` carries an optional ``known_from`` — the statically known
operand type.  Real bytecode carries this information implicitly in the
verifier's dataflow; threading it through explicitly is our stand-in for
that analysis (documented in DESIGN.md).  When set, validity requires a
subtype path from ``known_from`` to the target, which is exactly the
source of the paper's beyond-graph constraints ("we cast A to I ...
unless A is a subtype of I").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple, Union

__all__ = [
    "Instruction",
    "Load",
    "Store",
    "ConstInt",
    "ConstNull",
    "Dup",
    "Pop",
    "New",
    "CheckCast",
    "InstanceOf",
    "InvokeVirtual",
    "InvokeSpecial",
    "InvokeStatic",
    "InvokeInterface",
    "GetField",
    "PutField",
    "GetStatic",
    "PutStatic",
    "LoadClassConstant",
    "Return",
    "Goto",
    "IfEq",
    "MethodRef",
    "FieldRef",
    "OPCODES",
]


@dataclass(frozen=True)
class MethodRef:
    """A symbolic method reference ``owner.name:descriptor``."""

    owner: str
    name: str
    descriptor: str

    def __str__(self) -> str:
        return f"{self.owner}.{self.name}{self.descriptor}"


@dataclass(frozen=True)
class FieldRef:
    """A symbolic field reference ``owner.name:descriptor``."""

    owner: str
    name: str
    descriptor: str

    def __str__(self) -> str:
        return f"{self.owner}.{self.name}:{self.descriptor}"


class Instruction:
    """Base class; subclasses are frozen dataclasses."""

    opcode: int = 0x00

    def type_refs(self) -> FrozenSet[str]:
        """Class/interface names this instruction mentions directly."""
        return frozenset()

    def method_ref(self) -> Optional[MethodRef]:
        return None

    def field_ref(self) -> Optional[FieldRef]:
        return None


@dataclass(frozen=True)
class Load(Instruction):
    """Load local variable ``slot`` onto the stack (aload/iload)."""

    slot: int
    opcode = 0x19


@dataclass(frozen=True)
class Store(Instruction):
    """Store the stack top into local ``slot`` (astore/istore)."""

    slot: int
    opcode = 0x3A


@dataclass(frozen=True)
class ConstInt(Instruction):
    """Push an int constant (bipush/sipush/ldc)."""

    value: int
    opcode = 0x10


@dataclass(frozen=True)
class ConstNull(Instruction):
    """aconst_null."""

    opcode = 0x01


@dataclass(frozen=True)
class Dup(Instruction):
    opcode = 0x59


@dataclass(frozen=True)
class Pop(Instruction):
    opcode = 0x57


@dataclass(frozen=True)
class New(Instruction):
    """``new C``."""

    class_name: str
    opcode = 0xBB

    def type_refs(self) -> FrozenSet[str]:
        return frozenset({self.class_name})


@dataclass(frozen=True)
class CheckCast(Instruction):
    """``checkcast T`` (see module docstring for ``known_from``)."""

    class_name: str
    known_from: Optional[str] = None
    opcode = 0xC0

    def type_refs(self) -> FrozenSet[str]:
        refs = {self.class_name}
        if self.known_from is not None:
            refs.add(self.known_from)
        return frozenset(refs)


@dataclass(frozen=True)
class InstanceOf(Instruction):
    """``instanceof T``."""

    class_name: str
    opcode = 0xC1

    def type_refs(self) -> FrozenSet[str]:
        return frozenset({self.class_name})


@dataclass(frozen=True)
class _Invoke(Instruction):
    owner: str
    name: str
    descriptor: str

    def type_refs(self) -> FrozenSet[str]:
        return frozenset({self.owner})

    def method_ref(self) -> MethodRef:
        return MethodRef(self.owner, self.name, self.descriptor)


@dataclass(frozen=True)
class InvokeVirtual(_Invoke):
    opcode = 0xB6


@dataclass(frozen=True)
class InvokeSpecial(_Invoke):
    """Constructors (``<init>``), private and super calls.

    ``is_super_call`` marks an explicit ``super(...)`` /
    ``super.m(...)`` dispatch.  Real bytecode distinguishes these via
    verifier dataflow (the receiver is ``this``); carrying the bit
    explicitly is the same simplification as CheckCast.known_from.
    """

    is_super_call: bool = False
    opcode = 0xB7


@dataclass(frozen=True)
class InvokeStatic(_Invoke):
    opcode = 0xB8


@dataclass(frozen=True)
class InvokeInterface(_Invoke):
    opcode = 0xB9


@dataclass(frozen=True)
class _FieldAccess(Instruction):
    owner: str
    name: str
    descriptor: str

    def type_refs(self) -> FrozenSet[str]:
        return frozenset({self.owner})

    def field_ref(self) -> FieldRef:
        return FieldRef(self.owner, self.name, self.descriptor)


@dataclass(frozen=True)
class GetField(_FieldAccess):
    opcode = 0xB4


@dataclass(frozen=True)
class PutField(_FieldAccess):
    opcode = 0xB5


@dataclass(frozen=True)
class GetStatic(_FieldAccess):
    opcode = 0xB2


@dataclass(frozen=True)
class PutStatic(_FieldAccess):
    opcode = 0xB3


@dataclass(frozen=True)
class LoadClassConstant(Instruction):
    """``ldc [class C]`` — reflection on C (the generics approximation:
    bodies doing reflection on C depend on C's whole superclass chain)."""

    class_name: str
    opcode = 0x12

    def type_refs(self) -> FrozenSet[str]:
        return frozenset({self.class_name})


@dataclass(frozen=True)
class Return(Instruction):
    """return / areturn / ireturn, selected by ``kind``.

    kind: 'void', 'reference', or 'int'.
    """

    kind: str = "void"
    opcode = 0xB1


@dataclass(frozen=True)
class Goto(Instruction):
    """Unconditional branch to an instruction index."""

    target: int
    opcode = 0xA7


@dataclass(frozen=True)
class IfEq(Instruction):
    """Branch to ``target`` when the stack top is zero."""

    target: int
    opcode = 0x99


#: opcode byte -> instruction class, for the serializer.
OPCODES = {
    cls.opcode: cls
    for cls in (
        Load,
        Store,
        ConstInt,
        ConstNull,
        Dup,
        Pop,
        New,
        CheckCast,
        InstanceOf,
        InvokeVirtual,
        InvokeSpecial,
        InvokeStatic,
        InvokeInterface,
        GetField,
        PutField,
        GetStatic,
        PutStatic,
        LoadClassConstant,
        Return,
        Goto,
        IfEq,
    )
}

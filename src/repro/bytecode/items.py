"""The reducible item kinds of the bytecode model.

The paper: "We have a total of 11 kinds of items that can be removed,
including constructors, fields, and super-class relations."  Ours:

 1.  :class:`ClassItem` — a class,
 2.  :class:`InterfaceItem` — an interface,
 3.  :class:`SuperClassItem` — the ``extends D`` relation of a class
     (removal rewrites it to ``extends java/lang/Object``),
 4.  :class:`ImplementsItem` — one entry of an implements list (also an
     interface's ``extends`` entry, which the JVM stores the same way),
 5.  :class:`MethodItem` — a concrete method,
 6.  :class:`CodeItem` — a concrete method's body,
 7.  :class:`ConstructorItem` — a constructor,
 8.  :class:`ConstructorCodeItem` — a constructor's body,
 9.  :class:`FieldItem` — a field,
 10. :class:`SignatureItem` — an abstract/interface method declaration,
 11. :class:`AttributeItem` — a class-level attribute.

``str()`` renders the paper's bracket notation.  Items are frozen
dataclasses, usable directly as CNF variables and graph nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

__all__ = [
    "ClassItem",
    "InterfaceItem",
    "SuperClassItem",
    "ImplementsItem",
    "MethodItem",
    "CodeItem",
    "ConstructorItem",
    "ConstructorCodeItem",
    "FieldItem",
    "SignatureItem",
    "AttributeItem",
    "Item",
    "items_of",
    "items_of_class",
    "items_by_class",
    "type_item",
    "ITEM_KINDS",
]


@dataclass(frozen=True, order=True)
class ClassItem:
    class_name: str

    def __str__(self) -> str:
        return f"[{self.class_name}]"


@dataclass(frozen=True, order=True)
class InterfaceItem:
    interface_name: str

    def __str__(self) -> str:
        return f"[{self.interface_name}]"


@dataclass(frozen=True, order=True)
class SuperClassItem:
    class_name: str

    def __str__(self) -> str:
        return f"[{self.class_name}<:super]"


@dataclass(frozen=True, order=True)
class ImplementsItem:
    class_name: str
    interface_name: str

    def __str__(self) -> str:
        return f"[{self.class_name}<{self.interface_name}]"


@dataclass(frozen=True, order=True)
class MethodItem:
    class_name: str
    method_name: str
    descriptor: str

    def __str__(self) -> str:
        return f"[{self.class_name}.{self.method_name}{self.descriptor}]"


@dataclass(frozen=True, order=True)
class CodeItem:
    class_name: str
    method_name: str
    descriptor: str

    def __str__(self) -> str:
        return (
            f"[{self.class_name}.{self.method_name}{self.descriptor}!code]"
        )


@dataclass(frozen=True, order=True)
class ConstructorItem:
    class_name: str
    descriptor: str

    def __str__(self) -> str:
        return f"[{self.class_name}.<init>{self.descriptor}]"


@dataclass(frozen=True, order=True)
class ConstructorCodeItem:
    class_name: str
    descriptor: str

    def __str__(self) -> str:
        return f"[{self.class_name}.<init>{self.descriptor}!code]"


@dataclass(frozen=True, order=True)
class FieldItem:
    class_name: str
    field_name: str

    def __str__(self) -> str:
        return f"[{self.class_name}.{self.field_name}]"


@dataclass(frozen=True, order=True)
class SignatureItem:
    """An abstract method on a class or a method on an interface."""

    class_name: str
    method_name: str
    descriptor: str

    def __str__(self) -> str:
        return f"[{self.class_name}:{self.method_name}{self.descriptor}]"


@dataclass(frozen=True, order=True)
class AttributeItem:
    class_name: str
    attribute_name: str

    def __str__(self) -> str:
        return f"[{self.class_name}!{self.attribute_name}]"


Item = Union[
    ClassItem,
    InterfaceItem,
    SuperClassItem,
    ImplementsItem,
    MethodItem,
    CodeItem,
    ConstructorItem,
    ConstructorCodeItem,
    FieldItem,
    SignatureItem,
    AttributeItem,
]

ITEM_KINDS = (
    ClassItem,
    InterfaceItem,
    SuperClassItem,
    ImplementsItem,
    MethodItem,
    CodeItem,
    ConstructorItem,
    ConstructorCodeItem,
    FieldItem,
    SignatureItem,
    AttributeItem,
)


def type_item(app, name: str):
    """The ClassItem/InterfaceItem for a declared type, None for builtins."""
    decl = app.class_file(name)
    if decl is None:
        return None
    if decl.is_interface:
        return InterfaceItem(name)
    return ClassItem(name)


def items_of_class(decl) -> List[Item]:
    """The reducible items owned by one class declaration, in order."""
    from repro.bytecode.classfile import JAVA_OBJECT

    out: List[Item] = []
    if decl.is_interface:
        out.append(InterfaceItem(decl.name))
    else:
        out.append(ClassItem(decl.name))
        if decl.superclass != JAVA_OBJECT:
            out.append(SuperClassItem(decl.name))
    for iface in decl.interfaces:
        out.append(ImplementsItem(decl.name, iface))
    for attribute in decl.attributes:
        out.append(AttributeItem(decl.name, attribute.name))
    for fdecl in decl.fields:
        out.append(FieldItem(decl.name, fdecl.name))
    for method in decl.methods:
        if method.is_constructor:
            out.append(ConstructorItem(decl.name, method.descriptor))
            if method.code is not None:
                out.append(
                    ConstructorCodeItem(decl.name, method.descriptor)
                )
        elif method.is_abstract or decl.is_interface:
            out.append(
                SignatureItem(decl.name, method.name, method.descriptor)
            )
        else:
            out.append(
                MethodItem(decl.name, method.name, method.descriptor)
            )
            if method.code is not None:
                out.append(
                    CodeItem(decl.name, method.name, method.descriptor)
                )
    return out


def items_of(app) -> List[Item]:
    """All reducible items of an application, in declaration order.

    Declaration order doubles as the default variable order ``<``.
    """
    out: List[Item] = []
    for decl in app.classes:
        out.extend(items_of_class(decl))
    return out


def items_by_class(app):
    """``{class name: frozenset of its items}`` for every declared class.

    Every item kind names the class that owns it, so an application's
    item set partitions cleanly by class — the key fact behind the
    per-class materialization and serialization memos: intersecting a
    probe's kept-item set with one class's partition yields a key that
    changes only when *that class's* survivors change.
    """
    return {
        decl.name: frozenset(items_of_class(decl)) for decl in app.classes
    }

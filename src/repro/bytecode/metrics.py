"""Size metrics for applications.

The evaluation reports final relative size in *classes* and in *bytes*;
bytes are measured on the serialized binary form, so shared constant-pool
entries, dropped methods, and removed attributes all show up the way
they would in real class files.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.bytecode.classfile import Application
from repro.bytecode.serializer import serialize_application

__all__ = ["SizeMetrics", "size_metrics", "application_size_bytes"]


class SizeMetrics(NamedTuple):
    """Absolute sizes of one application."""

    classes: int
    methods: int
    fields: int
    instructions: int
    bytes: int


def application_size_bytes(app: Application) -> int:
    """Serialized size in bytes."""
    return len(serialize_application(app))


def size_metrics(app: Application) -> SizeMetrics:
    """All size measures at once."""
    methods = sum(len(decl.methods) for decl in app.classes)
    fields = sum(len(decl.fields) for decl in app.classes)
    instructions = sum(
        len(method.code)
        for decl in app.classes
        for method in decl.methods
        if method.code is not None
    )
    return SizeMetrics(
        classes=len(app.classes),
        methods=methods,
        fields=fields,
        instructions=instructions,
        bytes=application_size_bytes(app),
    )

"""Applying a truth assignment to an application.

The bytecode analogue of Figure 5's ``reduce(P, phi)``:

- classes/interfaces without their item are dropped wholesale,
- a removed extends relation rewrites the superclass to
  ``java/lang/Object``,
- removed implements entries, attributes, and fields are dropped,
- a method whose item survives but whose code item does not gets the
  *trivial body*: load its own arguments and tail-call itself (the
  infinite-recursion trick of Figure 5, which is type-correct at any
  return type and references nothing outside the method),
- constructors get the same treatment (``this(...)`` recursion),
- abstract/interface methods without code are kept or dropped on their
  signature item alone.
"""

from __future__ import annotations

from typing import AbstractSet, List, Optional, Tuple

from repro.bytecode.classfile import (
    Application,
    ClassFile,
    Code,
    Field,
    INIT,
    JAVA_OBJECT,
    MethodDef,
)
from repro.bytecode.descriptors import (
    ObjectType,
    ArrayType,
    PrimitiveType,
    parse_method_descriptor,
)
from repro.bytecode.instructions import (
    Instruction,
    InvokeSpecial,
    InvokeStatic,
    InvokeVirtual,
    Load,
    Return,
)
from repro.bytecode.items import (
    AttributeItem,
    ClassItem,
    CodeItem,
    ConstructorCodeItem,
    ConstructorItem,
    FieldItem,
    ImplementsItem,
    InterfaceItem,
    Item,
    MethodItem,
    SignatureItem,
    SuperClassItem,
    items_by_class,
)
from repro.observability import get_metrics

__all__ = ["reduce_application", "MaterializationMemo", "trivial_code"]


def reduce_application(
    app: Application, true_items: AbstractSet[Item]
) -> Application:
    """``reduce(app, phi)`` where ``phi``'s true set is ``true_items``."""
    kept: List[ClassFile] = []
    for decl in app.classes:
        item = (
            InterfaceItem(decl.name)
            if decl.is_interface
            else ClassItem(decl.name)
        )
        if item in true_items:
            kept.append(_reduce_class(decl, true_items))
    return app.replace_classes(tuple(kept))


class MaterializationMemo:
    """Per-class memo for repeated reductions of one base application.

    Consecutive probes of a reduction run keep near-identical item sets
    — a binary-search step toggles one progression entry — yet
    :func:`reduce_application` rebuilds every kept class from scratch on
    each call.  Every item names the class that owns it, so the kept
    set partitions by class, and a class's reduced form depends only on
    the intersection of the kept set with *its own* items.  The memo
    keys each class on that intersection and reuses the reduced
    :class:`ClassFile` object whenever it recurs, which also lets
    downstream per-class caches (decompile, serialize) key by identity.

    Thread-safety: worker threads evaluating speculative probes share
    one memo.  Entries are pure functions of their key, so concurrent
    duplicate computation is benign (last write wins, same value); no
    lock sits on the hot path.

    Telemetry: ``reducer.memo_hits`` / ``reducer.memo_misses``.
    """

    def __init__(self, app: Application) -> None:
        self.app = app
        self._class_items = items_by_class(app)
        self._reduced: dict = {}

    def reduce(self, true_items: AbstractSet[Item]) -> Application:
        """``reduce(app, phi)`` — same result as :func:`reduce_application`."""
        metrics = get_metrics()
        hits = misses = 0
        kept: List[ClassFile] = []
        for decl in self.app.classes:
            relevant = self._class_items[decl.name] & true_items
            root = (
                InterfaceItem(decl.name)
                if decl.is_interface
                else ClassItem(decl.name)
            )
            if root not in relevant:
                continue
            key = (decl.name, relevant)
            reduced = self._reduced.get(key)
            if reduced is None:
                misses += 1
                reduced = _reduce_class(decl, relevant)
                self._reduced[key] = reduced
            else:
                hits += 1
            kept.append(reduced)
        if hits:
            metrics.counter("reducer.memo_hits").inc(hits)
        if misses:
            metrics.counter("reducer.memo_misses").inc(misses)
        return self.app.replace_classes(tuple(kept))


def _reduce_class(
    decl: ClassFile, true_items: AbstractSet[Item]
) -> ClassFile:
    name = decl.name
    superclass = decl.superclass
    if (
        not decl.is_interface
        and superclass != JAVA_OBJECT
        and SuperClassItem(name) not in true_items
    ):
        superclass = JAVA_OBJECT

    interfaces = tuple(
        iface
        for iface in decl.interfaces
        if ImplementsItem(name, iface) in true_items
    )
    attributes = tuple(
        attr
        for attr in decl.attributes
        if AttributeItem(name, attr.name) in true_items
    )
    fields = tuple(
        fdecl
        for fdecl in decl.fields
        if FieldItem(name, fdecl.name) in true_items
    )

    methods: List[MethodDef] = []
    for method in decl.methods:
        reduced = _reduce_method(decl, method, true_items)
        if reduced is not None:
            methods.append(reduced)

    return ClassFile(
        name=name,
        superclass=superclass,
        interfaces=interfaces,
        is_interface=decl.is_interface,
        is_abstract=decl.is_abstract,
        fields=fields,
        methods=tuple(methods),
        attributes=attributes,
    )


def _reduce_method(
    decl: ClassFile, method: MethodDef, true_items: AbstractSet[Item]
) -> Optional[MethodDef]:
    name = decl.name
    if method.is_constructor:
        if ConstructorItem(name, method.descriptor) not in true_items:
            return None
        if (
            method.code is not None
            and ConstructorCodeItem(name, method.descriptor) in true_items
        ):
            return method
        return MethodDef(
            name=INIT,
            descriptor=method.descriptor,
            is_static=False,
            code=trivial_code(name, method),
        )

    if method.is_abstract or decl.is_interface:
        keep = SignatureItem(name, method.name, method.descriptor)
        return method if keep in true_items else None

    if MethodItem(name, method.name, method.descriptor) not in true_items:
        return None
    if (
        method.code is not None
        and CodeItem(name, method.name, method.descriptor) in true_items
    ):
        return method
    return MethodDef(
        name=method.name,
        descriptor=method.descriptor,
        is_static=method.is_static,
        code=trivial_code(name, method),
    )


def trivial_code(class_name: str, method: MethodDef) -> Code:
    """The self-recursive replacement body.

    Loads the receiver (unless static) and every argument, re-invokes the
    method itself, and returns its result — the bytecode rendering of
    Figure 5's ``return this.m(x);``.
    """
    descriptor = parse_method_descriptor(method.descriptor)
    instructions: List[Instruction] = []
    slot = 0
    if not method.is_static:
        instructions.append(Load(0))
        slot = 1
    for _param in descriptor.parameters:
        instructions.append(Load(slot))
        slot += 1

    if method.is_constructor:
        instructions.append(
            InvokeSpecial(class_name, INIT, method.descriptor)
        )
    elif method.is_static:
        instructions.append(
            InvokeStatic(class_name, method.name, method.descriptor)
        )
    else:
        instructions.append(
            InvokeVirtual(class_name, method.name, method.descriptor)
        )

    instructions.append(Return(_return_kind(descriptor.return_type)))
    return Code(
        max_stack=max(slot, 1),
        max_locals=max(slot, 1),
        instructions=tuple(instructions),
    )


def _return_kind(return_type) -> str:
    if return_type == PrimitiveType.VOID:
        return "void"
    if isinstance(return_type, (ObjectType, ArrayType)):
        return "reference"
    return "int"

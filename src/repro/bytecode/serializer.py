"""A deterministic binary format for applications.

The evaluation's headline metric is "final relative size (bytes)".  To
keep that metric honest our applications serialize to a compact binary
format in the style of real class files — magic, version, a shared
constant pool, then per-class structures — and the measured size is the
length of these bytes.  :func:`deserialize_application` inverts
:func:`serialize_application` exactly (round-trip property tested).
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.bytecode.classfile import (
    Application,
    Attribute,
    ClassFile,
    Code,
    Field,
    MethodDef,
)
from repro.bytecode.constant_pool import ConstantPool
from repro.bytecode.instructions import (
    CheckCast,
    ConstInt,
    ConstNull,
    Dup,
    Goto,
    IfEq,
    InstanceOf,
    Instruction,
    InvokeInterface,
    InvokeSpecial,
    InvokeStatic,
    InvokeVirtual,
    GetField,
    GetStatic,
    Load,
    LoadClassConstant,
    New,
    Pop,
    PutField,
    PutStatic,
    Return,
    Store,
)

__all__ = ["serialize_application", "deserialize_application", "FormatError"]

MAGIC = b"RJBC"
VERSION = 1

_FLAG_INTERFACE = 0x01
_FLAG_ABSTRACT = 0x02
_FLAG_STATIC = 0x01
_FLAG_METHOD_ABSTRACT = 0x02

_RETURN_KINDS = ("void", "reference", "int")


class FormatError(ValueError):
    """Malformed serialized data."""


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def serialize_application(app: Application) -> bytes:
    """Serialize the application to deterministic bytes."""
    pool = ConstantPool()
    _collect_strings(app, pool)

    out = bytearray()
    out += MAGIC
    out += struct.pack(">H", VERSION)

    out += struct.pack(">H", len(pool))
    for entry in pool:
        data = entry.encode("utf-8")
        out += struct.pack(">H", len(data))
        out += data

    out += struct.pack(">H", len(app.classes))
    for decl in app.classes:
        _write_class(out, decl, pool)

    out += struct.pack(
        ">HHH",
        pool.add(app.entry_class),
        pool.add(app.entry_method),
        pool.add(app.entry_descriptor),
    )
    return bytes(out)


def _collect_strings(app: Application, pool: ConstantPool) -> None:
    """Intern every string first so pool indices are stable."""
    for decl in app.classes:
        pool.add(decl.name)
        pool.add(decl.superclass)
        for iface in decl.interfaces:
            pool.add(iface)
        for fdecl in decl.fields:
            pool.add(fdecl.name)
            pool.add(fdecl.descriptor)
        for method in decl.methods:
            pool.add(method.name)
            pool.add(method.descriptor)
            if method.code is not None:
                for instruction in method.code:
                    for text in _instruction_strings(instruction):
                        pool.add(text)
        for attribute in decl.attributes:
            pool.add(attribute.name)
            pool.add(attribute.payload)
    pool.add(app.entry_class)
    pool.add(app.entry_method)
    pool.add(app.entry_descriptor)


def _instruction_strings(instruction: Instruction) -> List[str]:
    texts: List[str] = []
    ref = instruction.method_ref() or instruction.field_ref()
    if ref is not None:
        texts.extend((ref.owner, ref.name, ref.descriptor))
    elif isinstance(
        instruction, (New, CheckCast, InstanceOf, LoadClassConstant)
    ):
        texts.append(instruction.class_name)
        if isinstance(instruction, CheckCast) and instruction.known_from:
            texts.append(instruction.known_from)
    return texts


def _write_class(out: bytearray, decl: ClassFile, pool: ConstantPool) -> None:
    flags = (_FLAG_INTERFACE if decl.is_interface else 0) | (
        _FLAG_ABSTRACT if decl.is_abstract else 0
    )
    out += struct.pack(
        ">HHB", pool.add(decl.name), pool.add(decl.superclass), flags
    )
    out += struct.pack(">H", len(decl.interfaces))
    for iface in decl.interfaces:
        out += struct.pack(">H", pool.add(iface))

    out += struct.pack(">H", len(decl.fields))
    for fdecl in decl.fields:
        out += struct.pack(
            ">HHB",
            pool.add(fdecl.name),
            pool.add(fdecl.descriptor),
            _FLAG_STATIC if fdecl.is_static else 0,
        )

    out += struct.pack(">H", len(decl.methods))
    for method in decl.methods:
        flags = (_FLAG_STATIC if method.is_static else 0) | (
            _FLAG_METHOD_ABSTRACT if method.is_abstract else 0
        )
        out += struct.pack(
            ">HHB",
            pool.add(method.name),
            pool.add(method.descriptor),
            flags,
        )
        if method.code is None:
            out += struct.pack(">B", 0)
        else:
            out += struct.pack(">B", 1)
            _write_code(out, method.code, pool)

    out += struct.pack(">H", len(decl.attributes))
    for attribute in decl.attributes:
        out += struct.pack(
            ">HH", pool.add(attribute.name), pool.add(attribute.payload)
        )


def _write_code(out: bytearray, code: Code, pool: ConstantPool) -> None:
    out += struct.pack(">HHH", code.max_stack, code.max_locals, len(code))
    for instruction in code:
        _write_instruction(out, instruction, pool)


def _write_instruction(
    out: bytearray, instruction: Instruction, pool: ConstantPool
) -> None:
    out += struct.pack(">B", instruction.opcode)
    if isinstance(instruction, (Load, Store)):
        out += struct.pack(">H", instruction.slot)
    elif isinstance(instruction, ConstInt):
        out += struct.pack(">i", instruction.value)
    elif isinstance(instruction, (ConstNull, Dup, Pop)):
        pass
    elif isinstance(instruction, (New, InstanceOf, LoadClassConstant)):
        out += struct.pack(">H", pool.add(instruction.class_name))
    elif isinstance(instruction, CheckCast):
        out += struct.pack(">H", pool.add(instruction.class_name))
        if instruction.known_from is None:
            out += struct.pack(">H", 0)
        else:
            out += struct.pack(">H", pool.add(instruction.known_from))
    elif isinstance(
        instruction,
        (InvokeVirtual, InvokeStatic, InvokeInterface, InvokeSpecial),
    ):
        out += struct.pack(
            ">HHH",
            pool.add(instruction.owner),
            pool.add(instruction.name),
            pool.add(instruction.descriptor),
        )
        if isinstance(instruction, InvokeSpecial):
            out += struct.pack(">B", 1 if instruction.is_super_call else 0)
    elif isinstance(
        instruction, (GetField, PutField, GetStatic, PutStatic)
    ):
        out += struct.pack(
            ">HHH",
            pool.add(instruction.owner),
            pool.add(instruction.name),
            pool.add(instruction.descriptor),
        )
    elif isinstance(instruction, Return):
        out += struct.pack(">B", _RETURN_KINDS.index(instruction.kind))
    elif isinstance(instruction, (Goto, IfEq)):
        out += struct.pack(">H", instruction.target)
    else:
        raise FormatError(f"cannot serialize {instruction!r}")


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, fmt: str):
        size = struct.calcsize(fmt)
        if self.pos + size > len(self.data):
            raise FormatError("truncated data")
        values = struct.unpack_from(fmt, self.data, self.pos)
        self.pos += size
        return values if len(values) > 1 else values[0]

    def take_bytes(self, size: int) -> bytes:
        if self.pos + size > len(self.data):
            raise FormatError("truncated data")
        chunk = self.data[self.pos : self.pos + size]
        self.pos += size
        return chunk


def deserialize_application(data: bytes) -> Application:
    """Inverse of :func:`serialize_application`."""
    reader = _Reader(data)
    if reader.take_bytes(4) != MAGIC:
        raise FormatError("bad magic")
    version = reader.take(">H")
    if version != VERSION:
        raise FormatError(f"unsupported version {version}")

    pool = ConstantPool()
    for _ in range(reader.take(">H")):
        length = reader.take(">H")
        pool.add(reader.take_bytes(length).decode("utf-8"))

    classes = tuple(
        _read_class(reader, pool) for _ in range(reader.take(">H"))
    )
    entry_class_idx, entry_method_idx, entry_desc_idx = reader.take(">HHH")
    if reader.pos != len(data):
        raise FormatError("trailing bytes")
    return Application(
        classes=classes,
        entry_class=pool.get(entry_class_idx),
        entry_method=pool.get(entry_method_idx),
        entry_descriptor=pool.get(entry_desc_idx),
    )


def _read_class(reader: _Reader, pool: ConstantPool) -> ClassFile:
    name_idx, super_idx, flags = reader.take(">HHB")
    interfaces = tuple(
        pool.get(reader.take(">H")) for _ in range(reader.take(">H"))
    )
    fields = []
    for _ in range(reader.take(">H")):
        fname_idx, fdesc_idx, fflags = reader.take(">HHB")
        fields.append(
            Field(
                name=pool.get(fname_idx),
                descriptor=pool.get(fdesc_idx),
                is_static=bool(fflags & _FLAG_STATIC),
            )
        )
    methods = []
    for _ in range(reader.take(">H")):
        mname_idx, mdesc_idx, mflags = reader.take(">HHB")
        has_code = reader.take(">B")
        code = _read_code(reader, pool) if has_code else None
        methods.append(
            MethodDef(
                name=pool.get(mname_idx),
                descriptor=pool.get(mdesc_idx),
                is_static=bool(mflags & _FLAG_STATIC),
                is_abstract=bool(mflags & _FLAG_METHOD_ABSTRACT),
                code=code,
            )
        )
    attributes = []
    for _ in range(reader.take(">H")):
        aname_idx, apayload_idx = reader.take(">HH")
        attributes.append(
            Attribute(
                name=pool.get(aname_idx), payload=pool.get(apayload_idx)
            )
        )
    return ClassFile(
        name=pool.get(name_idx),
        superclass=pool.get(super_idx),
        interfaces=interfaces,
        is_interface=bool(flags & _FLAG_INTERFACE),
        is_abstract=bool(flags & _FLAG_ABSTRACT),
        fields=tuple(fields),
        methods=tuple(methods),
        attributes=tuple(attributes),
    )


def _read_code(reader: _Reader, pool: ConstantPool) -> Code:
    max_stack, max_locals, count = reader.take(">HHH")
    instructions = tuple(
        _read_instruction(reader, pool) for _ in range(count)
    )
    return Code(
        max_stack=max_stack, max_locals=max_locals, instructions=instructions
    )


def _read_instruction(reader: _Reader, pool: ConstantPool) -> Instruction:
    opcode = reader.take(">B")
    if opcode == Load.opcode:
        return Load(reader.take(">H"))
    if opcode == Store.opcode:
        return Store(reader.take(">H"))
    if opcode == ConstInt.opcode:
        return ConstInt(reader.take(">i"))
    if opcode == ConstNull.opcode:
        return ConstNull()
    if opcode == Dup.opcode:
        return Dup()
    if opcode == Pop.opcode:
        return Pop()
    if opcode == New.opcode:
        return New(pool.get(reader.take(">H")))
    if opcode == InstanceOf.opcode:
        return InstanceOf(pool.get(reader.take(">H")))
    if opcode == LoadClassConstant.opcode:
        return LoadClassConstant(pool.get(reader.take(">H")))
    if opcode == CheckCast.opcode:
        class_idx, from_idx = reader.take(">HH")
        known_from = pool.get(from_idx) if from_idx else None
        return CheckCast(pool.get(class_idx), known_from)
    if opcode in (
        InvokeVirtual.opcode,
        InvokeStatic.opcode,
        InvokeInterface.opcode,
    ):
        owner_idx, name_idx, desc_idx = reader.take(">HHH")
        cls = {
            InvokeVirtual.opcode: InvokeVirtual,
            InvokeStatic.opcode: InvokeStatic,
            InvokeInterface.opcode: InvokeInterface,
        }[opcode]
        return cls(
            pool.get(owner_idx), pool.get(name_idx), pool.get(desc_idx)
        )
    if opcode == InvokeSpecial.opcode:
        owner_idx, name_idx, desc_idx = reader.take(">HHH")
        is_super = bool(reader.take(">B"))
        return InvokeSpecial(
            pool.get(owner_idx),
            pool.get(name_idx),
            pool.get(desc_idx),
            is_super_call=is_super,
        )
    if opcode in (
        GetField.opcode,
        PutField.opcode,
        GetStatic.opcode,
        PutStatic.opcode,
    ):
        owner_idx, name_idx, desc_idx = reader.take(">HHH")
        cls = {
            GetField.opcode: GetField,
            PutField.opcode: PutField,
            GetStatic.opcode: GetStatic,
            PutStatic.opcode: PutStatic,
        }[opcode]
        return cls(
            pool.get(owner_idx), pool.get(name_idx), pool.get(desc_idx)
        )
    if opcode == Return.opcode:
        return Return(_RETURN_KINDS[reader.take(">B")])
    if opcode == Goto.opcode:
        return Goto(reader.take(">H"))
    if opcode == IfEq.opcode:
        return IfEq(reader.take(">H"))
    raise FormatError(f"unknown opcode 0x{opcode:02X}")

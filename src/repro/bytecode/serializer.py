"""A deterministic binary format for applications.

The evaluation's headline metric is "final relative size (bytes)".  To
keep that metric honest our applications serialize to a compact binary
format in the style of real class files — magic, version, a shared
constant pool, then per-class structures — and the measured size is the
length of these bytes.  :func:`deserialize_application` inverts
:func:`serialize_application` exactly (round-trip property tested).
"""

from __future__ import annotations

import struct
from typing import AbstractSet, Dict, Iterable, List, Sequence, Tuple

from repro.bytecode.classfile import (
    Application,
    Attribute,
    ClassFile,
    Code,
    Field,
    MethodDef,
)
from repro.bytecode.constant_pool import ConstantPool
from repro.bytecode.instructions import (
    CheckCast,
    ConstInt,
    ConstNull,
    Dup,
    Goto,
    IfEq,
    InstanceOf,
    Instruction,
    InvokeInterface,
    InvokeSpecial,
    InvokeStatic,
    InvokeVirtual,
    GetField,
    GetStatic,
    Load,
    LoadClassConstant,
    New,
    Pop,
    PutField,
    PutStatic,
    Return,
    Store,
)

__all__ = [
    "serialize_application",
    "deserialize_application",
    "ApplicationSerializer",
    "FormatError",
]

MAGIC = b"RJBC"
VERSION = 1

_FLAG_INTERFACE = 0x01
_FLAG_ABSTRACT = 0x02
_FLAG_STATIC = 0x01
_FLAG_METHOD_ABSTRACT = 0x02

_RETURN_KINDS = ("void", "reference", "int")


class FormatError(ValueError):
    """Malformed serialized data."""


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def serialize_application(app: Application) -> bytes:
    """Serialize the application to deterministic bytes."""
    pool = ConstantPool()
    _collect_strings(app, pool)

    out = bytearray()
    out += MAGIC
    out += struct.pack(">H", VERSION)

    out += struct.pack(">H", len(pool))
    for entry in pool:
        data = entry.encode("utf-8")
        out += struct.pack(">H", len(data))
        out += data

    out += struct.pack(">H", len(app.classes))
    for decl in app.classes:
        _write_class(out, decl, pool)

    out += struct.pack(
        ">HHH",
        pool.add(app.entry_class),
        pool.add(app.entry_method),
        pool.add(app.entry_descriptor),
    )
    return bytes(out)


def _collect_strings(app: Application, pool: ConstantPool) -> None:
    """Intern every string first so pool indices are stable."""
    for decl in app.classes:
        pool.add(decl.name)
        pool.add(decl.superclass)
        for iface in decl.interfaces:
            pool.add(iface)
        for fdecl in decl.fields:
            pool.add(fdecl.name)
            pool.add(fdecl.descriptor)
        for method in decl.methods:
            pool.add(method.name)
            pool.add(method.descriptor)
            if method.code is not None:
                for instruction in method.code:
                    for text in _instruction_strings(instruction):
                        pool.add(text)
        for attribute in decl.attributes:
            pool.add(attribute.name)
            pool.add(attribute.payload)
    pool.add(app.entry_class)
    pool.add(app.entry_method)
    pool.add(app.entry_descriptor)


def _instruction_strings(instruction: Instruction) -> List[str]:
    texts: List[str] = []
    ref = instruction.method_ref() or instruction.field_ref()
    if ref is not None:
        texts.extend((ref.owner, ref.name, ref.descriptor))
    elif isinstance(
        instruction, (New, CheckCast, InstanceOf, LoadClassConstant)
    ):
        texts.append(instruction.class_name)
        if isinstance(instruction, CheckCast) and instruction.known_from:
            texts.append(instruction.known_from)
    return texts


def _write_class(out: bytearray, decl: ClassFile, pool: ConstantPool) -> None:
    flags = (_FLAG_INTERFACE if decl.is_interface else 0) | (
        _FLAG_ABSTRACT if decl.is_abstract else 0
    )
    out += struct.pack(
        ">HHB", pool.add(decl.name), pool.add(decl.superclass), flags
    )
    out += struct.pack(">H", len(decl.interfaces))
    for iface in decl.interfaces:
        out += struct.pack(">H", pool.add(iface))

    out += struct.pack(">H", len(decl.fields))
    for fdecl in decl.fields:
        out += struct.pack(
            ">HHB",
            pool.add(fdecl.name),
            pool.add(fdecl.descriptor),
            _FLAG_STATIC if fdecl.is_static else 0,
        )

    out += struct.pack(">H", len(decl.methods))
    for method in decl.methods:
        flags = (_FLAG_STATIC if method.is_static else 0) | (
            _FLAG_METHOD_ABSTRACT if method.is_abstract else 0
        )
        out += struct.pack(
            ">HHB",
            pool.add(method.name),
            pool.add(method.descriptor),
            flags,
        )
        if method.code is None:
            out += struct.pack(">B", 0)
        else:
            out += struct.pack(">B", 1)
            _write_code(out, method.code, pool)

    out += struct.pack(">H", len(decl.attributes))
    for attribute in decl.attributes:
        out += struct.pack(
            ">HH", pool.add(attribute.name), pool.add(attribute.payload)
        )


def _write_code(out: bytearray, code: Code, pool: ConstantPool) -> None:
    out += struct.pack(">HHH", code.max_stack, code.max_locals, len(code))
    for instruction in code:
        _write_instruction(out, instruction, pool)


def _write_instruction(
    out: bytearray, instruction: Instruction, pool: ConstantPool
) -> None:
    out += struct.pack(">B", instruction.opcode)
    if isinstance(instruction, (Load, Store)):
        out += struct.pack(">H", instruction.slot)
    elif isinstance(instruction, ConstInt):
        out += struct.pack(">i", instruction.value)
    elif isinstance(instruction, (ConstNull, Dup, Pop)):
        pass
    elif isinstance(instruction, (New, InstanceOf, LoadClassConstant)):
        out += struct.pack(">H", pool.add(instruction.class_name))
    elif isinstance(instruction, CheckCast):
        out += struct.pack(">H", pool.add(instruction.class_name))
        if instruction.known_from is None:
            out += struct.pack(">H", 0)
        else:
            out += struct.pack(">H", pool.add(instruction.known_from))
    elif isinstance(
        instruction,
        (InvokeVirtual, InvokeStatic, InvokeInterface, InvokeSpecial),
    ):
        out += struct.pack(
            ">HHH",
            pool.add(instruction.owner),
            pool.add(instruction.name),
            pool.add(instruction.descriptor),
        )
        if isinstance(instruction, InvokeSpecial):
            out += struct.pack(">B", 1 if instruction.is_super_call else 0)
    elif isinstance(
        instruction, (GetField, PutField, GetStatic, PutStatic)
    ):
        out += struct.pack(
            ">HHH",
            pool.add(instruction.owner),
            pool.add(instruction.name),
            pool.add(instruction.descriptor),
        )
    elif isinstance(instruction, Return):
        out += struct.pack(">B", _RETURN_KINDS.index(instruction.kind))
    elif isinstance(instruction, (Goto, IfEq)):
        out += struct.pack(">H", instruction.target)
    else:
        raise FormatError(f"cannot serialize {instruction!r}")


# ---------------------------------------------------------------------------
# Memoized serialization (probe fast path)
# ---------------------------------------------------------------------------


class _ClassTemplate:
    """One class's serialized bytes with constant-pool refs left blank.

    ``blob`` is the exact byte sequence :func:`_write_class` would emit,
    except every pool index is a two-byte ``\\x00\\x00`` placeholder;
    ``patches`` lists ``(offset, local string id)`` pairs to fill in and
    ``strings`` holds the class's distinct strings in first-use order.
    Because every pool reference in the format is a fixed-width ``>H``,
    ``len(blob)`` does not depend on the final pool — which is what lets
    :meth:`ApplicationSerializer.size_of_items` skip patching entirely.
    """

    __slots__ = ("blob", "patches", "strings")

    def __init__(
        self,
        blob: bytes,
        patches: Tuple[Tuple[int, int], ...],
        strings: Tuple[str, ...],
    ) -> None:
        self.blob = blob
        self.patches = patches
        self.strings = strings


class _TemplateWriter:
    def __init__(self) -> None:
        self.out = bytearray()
        self.patches: List[Tuple[int, int]] = []
        self.strings: List[str] = []
        self._ids: Dict[str, int] = {}

    def pack(self, fmt: str, *values) -> None:
        self.out += struct.pack(fmt, *values)

    def ref(self, text: str) -> None:
        """A two-byte placeholder to be patched with ``pool.add(text)``."""
        sid = self._ids.get(text)
        if sid is None:
            sid = len(self.strings)
            self._ids[text] = sid
            self.strings.append(text)
        self.patches.append((len(self.out), sid))
        self.out += b"\x00\x00"


def _encode_class_template(decl: ClassFile) -> _ClassTemplate:
    writer = _TemplateWriter()
    _template_class(writer, decl)
    return _ClassTemplate(
        bytes(writer.out), tuple(writer.patches), tuple(writer.strings)
    )


def _template_class(w: _TemplateWriter, decl: ClassFile) -> None:
    # Mirrors _write_class byte for byte (struct ">HHB" == ">H">H">B";
    # big-endian struct never pads).
    flags = (_FLAG_INTERFACE if decl.is_interface else 0) | (
        _FLAG_ABSTRACT if decl.is_abstract else 0
    )
    w.ref(decl.name)
    w.ref(decl.superclass)
    w.pack(">B", flags)
    w.pack(">H", len(decl.interfaces))
    for iface in decl.interfaces:
        w.ref(iface)

    w.pack(">H", len(decl.fields))
    for fdecl in decl.fields:
        w.ref(fdecl.name)
        w.ref(fdecl.descriptor)
        w.pack(">B", _FLAG_STATIC if fdecl.is_static else 0)

    w.pack(">H", len(decl.methods))
    for method in decl.methods:
        mflags = (_FLAG_STATIC if method.is_static else 0) | (
            _FLAG_METHOD_ABSTRACT if method.is_abstract else 0
        )
        w.ref(method.name)
        w.ref(method.descriptor)
        w.pack(">B", mflags)
        if method.code is None:
            w.pack(">B", 0)
        else:
            w.pack(">B", 1)
            _template_code(w, method.code)

    w.pack(">H", len(decl.attributes))
    for attribute in decl.attributes:
        w.ref(attribute.name)
        w.ref(attribute.payload)


def _template_code(w: _TemplateWriter, code: Code) -> None:
    w.pack(">HHH", code.max_stack, code.max_locals, len(code))
    for instruction in code:
        _template_instruction(w, instruction)


def _template_instruction(
    w: _TemplateWriter, instruction: Instruction
) -> None:
    w.pack(">B", instruction.opcode)
    if isinstance(instruction, (Load, Store)):
        w.pack(">H", instruction.slot)
    elif isinstance(instruction, ConstInt):
        w.pack(">i", instruction.value)
    elif isinstance(instruction, (ConstNull, Dup, Pop)):
        pass
    elif isinstance(instruction, (New, InstanceOf, LoadClassConstant)):
        w.ref(instruction.class_name)
    elif isinstance(instruction, CheckCast):
        w.ref(instruction.class_name)
        if instruction.known_from is None:
            w.pack(">H", 0)
        else:
            w.ref(instruction.known_from)
    elif isinstance(
        instruction,
        (InvokeVirtual, InvokeStatic, InvokeInterface, InvokeSpecial),
    ):
        w.ref(instruction.owner)
        w.ref(instruction.name)
        w.ref(instruction.descriptor)
        if isinstance(instruction, InvokeSpecial):
            w.pack(">B", 1 if instruction.is_super_call else 0)
    elif isinstance(
        instruction, (GetField, PutField, GetStatic, PutStatic)
    ):
        w.ref(instruction.owner)
        w.ref(instruction.name)
        w.ref(instruction.descriptor)
    elif isinstance(instruction, Return):
        w.pack(">B", _RETURN_KINDS.index(instruction.kind))
    elif isinstance(instruction, (Goto, IfEq)):
        w.pack(">H", instruction.target)
    else:
        raise FormatError(f"cannot serialize {instruction!r}")


class ApplicationSerializer:
    """Memoized serialization of one base application's reductions.

    Probe pipelines serialize near-identical reductions thousands of
    times — measuring candidate sizes re-renders every kept class even
    though a single binary-search step changes at most a handful.  This
    serializer caches a :class:`_ClassTemplate` per class, keyed by the
    frozenset of *that class's* surviving items (the per-class partition
    of :func:`repro.bytecode.items.items_by_class`), so a probe only
    pays rendering cost for classes whose survivors actually changed.

    Two probe granularities are served:

    - **item granularity** (GBR / our reducer):
      :meth:`serialize_items` is byte-identical to
      ``serialize_application(reduce_application(app, true_items))``
      (property-tested); :meth:`size_of_items` returns just the length
      — with **no patching at all**, since every pool ref is a
      fixed-width ``>H`` and pool content is recoverable from the
      templates' string lists.
    - **class granularity** (the jreduce baseline):
      :meth:`serialize_classes` / :meth:`size_of_classes` keep whole
      classes untouched, keyed by class name.

    Thread-safety: like
    :class:`~repro.bytecode.reducer.MaterializationMemo`, entries are
    pure functions of their key, so concurrent duplicate computation by
    speculative probe workers is benign; no lock on the hot path.

    Telemetry: ``serializer.memo_hits`` / ``serializer.memo_misses``.
    """

    def __init__(self, app: Application) -> None:
        from repro.bytecode.items import items_by_class

        self.app = app
        self._class_items = items_by_class(app)
        self._entry = (
            app.entry_class,
            app.entry_method,
            app.entry_descriptor,
        )
        self._reduced: Dict[tuple, _ClassTemplate] = {}
        self._full: Dict[str, _ClassTemplate] = {}
        self._utf8_len: Dict[str, int] = {}

    # -- item granularity ---------------------------------------------

    def serialize_items(self, true_items: AbstractSet) -> bytes:
        """== ``serialize_application(reduce_application(app, true_items))``."""
        return self._assemble(self._templates_for_items(true_items))

    def size_of_items(self, true_items: AbstractSet) -> int:
        """``len(serialize_items(true_items))`` without building the bytes."""
        return self._measure(self._templates_for_items(true_items))

    def _templates_for_items(
        self, true_items: AbstractSet
    ) -> List[_ClassTemplate]:
        from repro.bytecode.items import ClassItem, InterfaceItem
        from repro.bytecode.reducer import _reduce_class

        hits = misses = 0
        templates: List[_ClassTemplate] = []
        for decl in self.app.classes:
            relevant = self._class_items[decl.name] & true_items
            root = (
                InterfaceItem(decl.name)
                if decl.is_interface
                else ClassItem(decl.name)
            )
            if root not in relevant:
                continue
            key = (decl.name, relevant)
            template = self._reduced.get(key)
            if template is None:
                misses += 1
                template = _encode_class_template(
                    _reduce_class(decl, relevant)
                )
                self._reduced[key] = template
            else:
                hits += 1
            templates.append(template)
        self._count(hits, misses)
        return templates

    # -- class granularity (jreduce) ----------------------------------

    def serialize_classes(self, kept_names: Iterable[str]) -> bytes:
        """== ``serialize_application(app.replace_classes(kept))``."""
        return self._assemble(self._templates_for_classes(kept_names))

    def size_of_classes(self, kept_names: Iterable[str]) -> int:
        return self._measure(self._templates_for_classes(kept_names))

    def _templates_for_classes(
        self, kept_names: Iterable[str]
    ) -> List[_ClassTemplate]:
        kept = (
            kept_names
            if isinstance(kept_names, (set, frozenset))
            else set(kept_names)
        )
        hits = misses = 0
        templates: List[_ClassTemplate] = []
        for decl in self.app.classes:
            if decl.name not in kept:
                continue
            template = self._full.get(decl.name)
            if template is None:
                misses += 1
                template = _encode_class_template(decl)
                self._full[decl.name] = template
            else:
                hits += 1
            templates.append(template)
        self._count(hits, misses)
        return templates

    # -- assembly ------------------------------------------------------

    def _assemble(self, templates: Sequence[_ClassTemplate]) -> bytes:
        pool = ConstantPool()
        for template in templates:
            for text in template.strings:
                pool.add(text)
        for text in self._entry:
            pool.add(text)

        out = bytearray()
        out += MAGIC
        out += struct.pack(">H", VERSION)
        out += struct.pack(">H", len(pool))
        for entry in pool:
            data = entry.encode("utf-8")
            out += struct.pack(">H", len(data))
            out += data

        out += struct.pack(">H", len(templates))
        for template in templates:
            blob = bytearray(template.blob)
            for offset, sid in template.patches:
                struct.pack_into(
                    ">H", blob, offset, pool.add(template.strings[sid])
                )
            out += blob

        out += struct.pack(
            ">HHH",
            pool.add(self._entry[0]),
            pool.add(self._entry[1]),
            pool.add(self._entry[2]),
        )
        return bytes(out)

    def _measure(self, templates: Sequence[_ClassTemplate]) -> int:
        seen = set()
        pool_bytes = 0
        body = 0
        for template in templates:
            body += len(template.blob)
            for text in template.strings:
                if text not in seen:
                    seen.add(text)
                    pool_bytes += 2 + self._utf8(text)
        for text in self._entry:
            if text not in seen:
                seen.add(text)
                pool_bytes += 2 + self._utf8(text)
        # magic + version + pool count + pool + class count + classes
        # + entry triple.
        return 4 + 2 + 2 + pool_bytes + 2 + body + 6

    def _utf8(self, text: str) -> int:
        length = self._utf8_len.get(text)
        if length is None:
            length = len(text.encode("utf-8"))
            self._utf8_len[text] = length
        return length

    @staticmethod
    def _count(hits: int, misses: int) -> None:
        from repro.observability import get_metrics

        metrics = get_metrics()
        if hits:
            metrics.counter("serializer.memo_hits").inc(hits)
        if misses:
            metrics.counter("serializer.memo_misses").inc(misses)


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, fmt: str):
        size = struct.calcsize(fmt)
        if self.pos + size > len(self.data):
            raise FormatError("truncated data")
        values = struct.unpack_from(fmt, self.data, self.pos)
        self.pos += size
        return values if len(values) > 1 else values[0]

    def take_bytes(self, size: int) -> bytes:
        if self.pos + size > len(self.data):
            raise FormatError("truncated data")
        chunk = self.data[self.pos : self.pos + size]
        self.pos += size
        return chunk


def deserialize_application(data: bytes) -> Application:
    """Inverse of :func:`serialize_application`."""
    reader = _Reader(data)
    if reader.take_bytes(4) != MAGIC:
        raise FormatError("bad magic")
    version = reader.take(">H")
    if version != VERSION:
        raise FormatError(f"unsupported version {version}")

    pool = ConstantPool()
    for _ in range(reader.take(">H")):
        length = reader.take(">H")
        pool.add(reader.take_bytes(length).decode("utf-8"))

    classes = tuple(
        _read_class(reader, pool) for _ in range(reader.take(">H"))
    )
    entry_class_idx, entry_method_idx, entry_desc_idx = reader.take(">HHH")
    if reader.pos != len(data):
        raise FormatError("trailing bytes")
    return Application(
        classes=classes,
        entry_class=pool.get(entry_class_idx),
        entry_method=pool.get(entry_method_idx),
        entry_descriptor=pool.get(entry_desc_idx),
    )


def _read_class(reader: _Reader, pool: ConstantPool) -> ClassFile:
    name_idx, super_idx, flags = reader.take(">HHB")
    interfaces = tuple(
        pool.get(reader.take(">H")) for _ in range(reader.take(">H"))
    )
    fields = []
    for _ in range(reader.take(">H")):
        fname_idx, fdesc_idx, fflags = reader.take(">HHB")
        fields.append(
            Field(
                name=pool.get(fname_idx),
                descriptor=pool.get(fdesc_idx),
                is_static=bool(fflags & _FLAG_STATIC),
            )
        )
    methods = []
    for _ in range(reader.take(">H")):
        mname_idx, mdesc_idx, mflags = reader.take(">HHB")
        has_code = reader.take(">B")
        code = _read_code(reader, pool) if has_code else None
        methods.append(
            MethodDef(
                name=pool.get(mname_idx),
                descriptor=pool.get(mdesc_idx),
                is_static=bool(mflags & _FLAG_STATIC),
                is_abstract=bool(mflags & _FLAG_METHOD_ABSTRACT),
                code=code,
            )
        )
    attributes = []
    for _ in range(reader.take(">H")):
        aname_idx, apayload_idx = reader.take(">HH")
        attributes.append(
            Attribute(
                name=pool.get(aname_idx), payload=pool.get(apayload_idx)
            )
        )
    return ClassFile(
        name=pool.get(name_idx),
        superclass=pool.get(super_idx),
        interfaces=interfaces,
        is_interface=bool(flags & _FLAG_INTERFACE),
        is_abstract=bool(flags & _FLAG_ABSTRACT),
        fields=tuple(fields),
        methods=tuple(methods),
        attributes=tuple(attributes),
    )


def _read_code(reader: _Reader, pool: ConstantPool) -> Code:
    max_stack, max_locals, count = reader.take(">HHH")
    instructions = tuple(
        _read_instruction(reader, pool) for _ in range(count)
    )
    return Code(
        max_stack=max_stack, max_locals=max_locals, instructions=instructions
    )


def _read_instruction(reader: _Reader, pool: ConstantPool) -> Instruction:
    opcode = reader.take(">B")
    if opcode == Load.opcode:
        return Load(reader.take(">H"))
    if opcode == Store.opcode:
        return Store(reader.take(">H"))
    if opcode == ConstInt.opcode:
        return ConstInt(reader.take(">i"))
    if opcode == ConstNull.opcode:
        return ConstNull()
    if opcode == Dup.opcode:
        return Dup()
    if opcode == Pop.opcode:
        return Pop()
    if opcode == New.opcode:
        return New(pool.get(reader.take(">H")))
    if opcode == InstanceOf.opcode:
        return InstanceOf(pool.get(reader.take(">H")))
    if opcode == LoadClassConstant.opcode:
        return LoadClassConstant(pool.get(reader.take(">H")))
    if opcode == CheckCast.opcode:
        class_idx, from_idx = reader.take(">HH")
        known_from = pool.get(from_idx) if from_idx else None
        return CheckCast(pool.get(class_idx), known_from)
    if opcode in (
        InvokeVirtual.opcode,
        InvokeStatic.opcode,
        InvokeInterface.opcode,
    ):
        owner_idx, name_idx, desc_idx = reader.take(">HHH")
        cls = {
            InvokeVirtual.opcode: InvokeVirtual,
            InvokeStatic.opcode: InvokeStatic,
            InvokeInterface.opcode: InvokeInterface,
        }[opcode]
        return cls(
            pool.get(owner_idx), pool.get(name_idx), pool.get(desc_idx)
        )
    if opcode == InvokeSpecial.opcode:
        owner_idx, name_idx, desc_idx = reader.take(">HHH")
        is_super = bool(reader.take(">B"))
        return InvokeSpecial(
            pool.get(owner_idx),
            pool.get(name_idx),
            pool.get(desc_idx),
            is_super_call=is_super,
        )
    if opcode in (
        GetField.opcode,
        PutField.opcode,
        GetStatic.opcode,
        PutStatic.opcode,
    ):
        owner_idx, name_idx, desc_idx = reader.take(">HHH")
        cls = {
            GetField.opcode: GetField,
            PutField.opcode: PutField,
            GetStatic.opcode: GetStatic,
            PutStatic.opcode: PutStatic,
        }[opcode]
        return cls(
            pool.get(owner_idx), pool.get(name_idx), pool.get(desc_idx)
        )
    if opcode == Return.opcode:
        return Return(_RETURN_KINDS[reader.take(">B")])
    if opcode == Goto.opcode:
        return Goto(reader.take(">H"))
    if opcode == IfEq.opcode:
        return IfEq(reader.take(">H"))
    raise FormatError(f"unknown opcode 0x{opcode:02X}")

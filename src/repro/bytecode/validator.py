"""Structural validity of an application.

This is the ground truth the constraint model is sound against — the
bytecode analogue of "the reduced program type checks" (Theorem 3.1).
The property test in ``tests/bytecode/test_soundness.py`` checks that
every satisfying assignment of :func:`repro.bytecode.constraints.
generate_constraints` reduces to an application this module accepts.

Checked:

- hierarchy closure: superclasses/interfaces exist, kinds line up,
  no cycles;
- descriptor closure: every mentioned class exists;
- reference resolution: invoked methods, accessed fields, constructed
  classes, and constructor targets all resolve;
- explicit super calls target the *current* superclass;
- casts with a statically known operand type have a subtype derivation;
- every concrete class implements every (transitively) inherited
  interface method and abstract method.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.classfile import (
    Application,
    BUILTIN_CLASSES,
    ClassFile,
    INIT,
    JAVA_OBJECT,
    MethodDef,
)
from repro.bytecode.constraints import BUILTIN_METHODS
from repro.bytecode.descriptors import (
    DescriptorError,
    parse_field_descriptor,
    parse_method_descriptor,
)
from repro.bytecode.hierarchy import Hierarchy
from repro.bytecode.instructions import (
    CheckCast,
    InvokeInterface,
    InvokeSpecial,
    New,
)
from repro.bytecode.items import Item

__all__ = ["ValidationError", "validate_application"]


class ValidationError(ValueError):
    """The application is structurally invalid; ``problems`` lists why."""

    def __init__(self, problems: List[str]):
        self.problems = problems
        preview = "; ".join(problems[:5])
        more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        super().__init__(f"invalid application: {preview}{more}")


def validate_application(
    app: Application, raise_on_error: bool = True
) -> List[str]:
    """Validate; returns the list of problems (empty when valid)."""
    problems = _Validator(app).run()
    if problems and raise_on_error:
        raise ValidationError(problems)
    return problems


class _Validator:
    def __init__(self, app: Application):
        self.app = app
        self.hierarchy = Hierarchy(app)
        self.problems: List[str] = []

    def complain(self, message: str) -> None:
        self.problems.append(message)

    def run(self) -> List[str]:
        for decl in self.app.classes:
            self.check_hierarchy(decl)
        if self.problems:
            return self.problems  # resolution needs a sane hierarchy
        for decl in self.app.classes:
            self.check_members(decl)
            if not decl.is_interface and not decl.is_abstract:
                self.check_obligations(decl)
        self.check_entry_point()
        return self.problems

    # ------------------------------------------------------------------

    def check_hierarchy(self, decl: ClassFile) -> None:
        name = decl.name
        superclass = self.app.class_file(decl.superclass)
        if decl.superclass not in BUILTIN_CLASSES and superclass is None:
            self.complain(f"{name}: missing superclass {decl.superclass}")
        if superclass is not None and superclass.is_interface:
            self.complain(f"{name}: superclass {decl.superclass} is an interface")
        for iface in decl.interfaces:
            iface_decl = self.app.class_file(iface)
            if iface_decl is None:
                self.complain(f"{name}: missing interface {iface}")
            elif not iface_decl.is_interface:
                self.complain(f"{name}: implements non-interface {iface}")
        try:
            self.hierarchy.superclass_chain(name)
        except ValueError as exc:
            self.complain(f"{name}: {exc}")

    # ------------------------------------------------------------------

    def check_members(self, decl: ClassFile) -> None:
        name = decl.name
        for fdecl in decl.fields:
            self.check_descriptor_types(
                name, fdecl.descriptor, is_method=False,
                where=f"field {fdecl.name}",
            )
        for method in decl.methods:
            where = f"method {method.name}{method.descriptor}"
            self.check_descriptor_types(
                name, method.descriptor, is_method=True, where=where
            )
            if decl.is_interface and method.is_constructor:
                self.complain(f"{name}: interface has a constructor")
            if method.code is not None:
                self.check_code(decl, method)

    def check_descriptor_types(
        self, class_name: str, descriptor: str, is_method: bool, where: str
    ) -> None:
        try:
            if is_method:
                refs = parse_method_descriptor(descriptor).referenced_classes()
            else:
                refs = parse_field_descriptor(descriptor).referenced_classes()
        except DescriptorError as exc:
            self.complain(f"{class_name}: {where}: {exc}")
            return
        for ref in refs:
            if not self.hierarchy.exists(ref):
                self.complain(
                    f"{class_name}: {where}: missing type {ref}"
                )

    # ------------------------------------------------------------------

    def check_code(self, decl: ClassFile, method: MethodDef) -> None:
        name = decl.name
        where = f"{name}.{method.name}{method.descriptor}"
        assert method.code is not None
        for instruction in method.code:
            for type_name in instruction.type_refs():
                if not self.hierarchy.exists(type_name):
                    self.complain(f"{where}: missing type {type_name}")

            if isinstance(instruction, New):
                target = self.app.class_file(instruction.class_name)
                if target is not None and (
                    target.is_interface or target.is_abstract
                ):
                    self.complain(
                        f"{where}: instantiates abstract type "
                        f"{instruction.class_name}"
                    )

            method_ref = instruction.method_ref()
            if method_ref is not None:
                self.check_method_ref(decl, where, instruction, method_ref)

            field_ref = instruction.field_ref()
            if field_ref is not None:
                if not self.hierarchy.exists(field_ref.owner):
                    continue  # already complained above
                if self.hierarchy.resolve_field(
                    field_ref.owner, field_ref.name
                ) is None:
                    self.complain(
                        f"{where}: field {field_ref} does not resolve"
                    )

            if isinstance(instruction, CheckCast):
                known = instruction.known_from
                if (
                    known is not None
                    and self.hierarchy.exists(known)
                    and self.hierarchy.exists(instruction.class_name)
                    and not self.hierarchy.is_subtype(
                        known, instruction.class_name
                    )
                ):
                    self.complain(
                        f"{where}: cast from {known} to "
                        f"{instruction.class_name} can never succeed"
                    )

    def check_method_ref(
        self, decl: ClassFile, where: str, instruction, ref
    ) -> None:
        if not self.hierarchy.exists(ref.owner):
            return  # already complained
        if (ref.owner, ref.name, ref.descriptor) in BUILTIN_METHODS:
            return
        if ref.owner in BUILTIN_CLASSES:
            self.complain(f"{where}: unknown builtin method {ref}")
            return

        if isinstance(instruction, InvokeSpecial):
            if instruction.is_super_call and ref.owner != decl.superclass:
                self.complain(
                    f"{where}: super call targets {ref.owner}, but the "
                    f"superclass is {decl.superclass}"
                )
            if ref.name == INIT:
                owner = self.app.class_file(ref.owner)
                if owner is None or owner.method(INIT, ref.descriptor) is None:
                    self.complain(
                        f"{where}: constructor {ref} does not resolve"
                    )
                return

        if isinstance(instruction, InvokeInterface):
            if not self.hierarchy.is_interface(ref.owner):
                self.complain(
                    f"{where}: invokeinterface on non-interface {ref.owner}"
                )

        if not self.hierarchy.method_candidates(
            ref.owner, ref.name, ref.descriptor
        ):
            self.complain(f"{where}: method {ref} does not resolve")

    # ------------------------------------------------------------------

    def check_obligations(self, decl: ClassFile) -> None:
        name = decl.name
        for iface_name in sorted(self.hierarchy.all_interfaces(name)):
            iface = self.app.class_file(iface_name)
            if iface is None:
                continue
            for signature in iface.methods:
                if signature.is_constructor:
                    continue
                if not self._has_concrete_impl(
                    name, signature.name, signature.descriptor
                ):
                    self.complain(
                        f"{name}: does not implement {iface_name}."
                        f"{signature.name}{signature.descriptor}"
                    )
        for ancestor_name in self.hierarchy.superclass_chain(name)[1:]:
            ancestor = self.app.class_file(ancestor_name)
            if ancestor is None:
                continue
            for method in ancestor.methods:
                if method.is_abstract and not self._has_concrete_impl(
                    name, method.name, method.descriptor
                ):
                    self.complain(
                        f"{name}: does not implement abstract "
                        f"{ancestor_name}.{method.name}{method.descriptor}"
                    )

    def _has_concrete_impl(
        self, owner: str, name: str, descriptor: str
    ) -> bool:
        for declaring, method in self.hierarchy.method_candidates(
            owner, name, descriptor
        ):
            declaring_decl = self.app.class_file(declaring)
            if method.is_abstract:
                continue
            if declaring_decl is not None and declaring_decl.is_interface:
                continue
            return True
        return False

    # ------------------------------------------------------------------

    def check_entry_point(self) -> None:
        if not self.app.entry_class:
            return
        entry = self.app.class_file(self.app.entry_class)
        if entry is None:
            self.complain(f"entry class {self.app.entry_class} is missing")
            return
        if entry.method(
            self.app.entry_method, self.app.entry_descriptor
        ) is None:
            self.complain(
                f"entry method {self.app.entry_class}."
                f"{self.app.entry_method}{self.app.entry_descriptor} "
                "is missing"
            )

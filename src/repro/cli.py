"""The ``jlreduce`` command-line tool.

Subcommands:

- ``jlreduce demo`` — the paper's Section 2 running example end to end.
- ``jlreduce count FILE.fji`` — type check an FJI file and count its
  valid sub-inputs with the #SAT engine.
- ``jlreduce reduce FILE.fji --keep ITEM ...`` — reduce an FJI program
  to the smallest valid sub-program whose kept-item set contains the
  named items (a containment predicate stands in for the buggy tool;
  item syntax matches the bracket rendering, e.g. ``[A.m()!code]``).
- ``jlreduce bench [--profile small|paper] [--jobs N] [--store F]`` —
  run the corpus experiment and print the Section 5 reports; ``--jobs``
  fans instances out to a worker pool (0: one per CPU), ``--store``
  persists predicate outcomes so repeat runs skip fresh invocations.
- ``jlreduce trace summarize FILE.jsonl`` — aggregate a JSONL trace
  written by ``--trace`` (per-span totals/mean/p95, counter totals).

``reduce`` and ``bench`` accept ``--trace FILE.jsonl`` (record spans and
metrics for the run) and ``--json`` (machine-readable result on stdout).

Exit status is 0 on success, 1 on user errors (bad file, unknown item),
2 on argument errors (argparse's convention).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jlreduce",
        description=(
            "Logical bytecode reduction (PLDI 2021 reproduction): "
            "dependency-aware input reduction via propositional logic "
            "and Generalized Binary Reduction."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run the paper's running example")

    count = sub.add_parser(
        "count", help="count valid sub-inputs of an FJI file"
    )
    count.add_argument("file", help="path to an .fji source file")

    reduce_cmd = sub.add_parser(
        "reduce", help="reduce an FJI file around required items"
    )
    reduce_cmd.add_argument("file", help="path to an .fji source file")
    reduce_cmd.add_argument(
        "--keep",
        action="append",
        default=[],
        metavar="ITEM",
        help="item that must survive, e.g. '[A.m()!code]' (repeatable)",
    )
    reduce_cmd.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        help="write span/metric telemetry for the run as JSONL",
    )
    reduce_cmd.add_argument(
        "--json",
        action="store_true",
        help="print the result as JSON instead of the reduced program",
    )

    bench = sub.add_parser(
        "bench", help="run the corpus experiment and print the reports"
    )
    bench.add_argument(
        "--profile",
        choices=("small", "paper"),
        default="small",
        help="corpus size profile (default: small)",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker threads for instance runs (0: one per CPU; default 1)",
    )
    bench.add_argument(
        "--store",
        metavar="FILE.jsonl",
        help="persistent predicate cache; warm entries skip fresh "
        "predicate invocations",
    )
    bench.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        help="write span/metric telemetry for the experiment as JSONL",
    )
    bench.add_argument(
        "--json",
        action="store_true",
        help="print per-instance outcomes as JSON instead of the reports",
    )

    trace = sub.add_parser("trace", help="inspect JSONL trace files")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize_cmd = trace_sub.add_parser(
        "summarize", help="aggregate a trace into per-span/counter tables"
    )
    summarize_cmd.add_argument("file", help="path to a .jsonl trace file")
    summarize_cmd.add_argument(
        "--json",
        action="store_true",
        help="print the aggregate summary as JSON",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _demo()
    if args.command == "count":
        return _count(args.file)
    if args.command == "reduce":
        return _reduce(args.file, args.keep, args.trace, args.json)
    if args.command == "bench":
        return _bench(
            args.profile, args.trace, args.json, args.jobs, args.store
        )
    if args.command == "trace":
        if args.trace_command == "summarize":
            return _trace_summarize(args.file, args.json)
        raise AssertionError(f"unhandled trace command {args.trace_command!r}")
    raise AssertionError(f"unhandled command {args.command!r}")


# ---------------------------------------------------------------------------


def _demo() -> int:
    from repro.fji.examples import (
        MAIN_CODE,
        figure1_constraints,
        figure1_problem,
        figure1_program,
    )
    from repro.fji.pretty import pretty_program
    from repro.fji.reducer import reduce_program
    from repro.logic import count_models
    from repro.reduction import generalized_binary_reduction

    program = figure1_program()
    constraints = figure1_constraints(include_main_requirement=False)
    print(pretty_program(program))
    print(f"constraints: {len(constraints)}; valid sub-inputs: "
          f"{count_models(constraints):,}")
    result = generalized_binary_reduction(
        figure1_problem(), require_true=frozenset({MAIN_CODE})
    )
    print(f"GBR: {len(result.solution)} items in "
          f"{result.predicate_calls} tool runs\n")
    print(pretty_program(reduce_program(program, result.solution)))
    return 0


def _open_trace(path: str):
    """Open a trace file for writing, failing fast (before the run)."""
    try:
        return open(path, "w", encoding="utf-8")
    except OSError as exc:
        print(f"jlreduce: cannot write {path}: {exc}", file=sys.stderr)
        return None


def _load_program(path: str):
    from repro.fji import ParseError, TypeError_, check_program, parse_program

    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        print(f"jlreduce: cannot read {path}: {exc}", file=sys.stderr)
        return None
    try:
        program = parse_program(source)
        constraints = check_program(program)
    except (ParseError, TypeError_) as exc:
        print(f"jlreduce: {path}: {exc}", file=sys.stderr)
        return None
    return program, constraints


def _count(path: str) -> int:
    from repro.fji.variables import variables_of
    from repro.logic import count_models

    loaded = _load_program(path)
    if loaded is None:
        return 1
    program, constraints = loaded
    variables = variables_of(program)
    print(f"variables    : {len(variables)}")
    print(f"constraints  : {len(constraints)}")
    print(f"graph clauses: {constraints.graph_clause_fraction():.1%}")
    print(f"valid inputs : {count_models(constraints):,} "
          f"of {2 ** len(variables):,}")
    return 0


def _reduce(
    path: str,
    keep: List[str],
    trace_path: Optional[str] = None,
    json_output: bool = False,
) -> int:
    from repro.fji.pretty import pretty_program
    from repro.fji.reducer import reduce_program
    from repro.fji.variables import variables_of
    from repro.observability import tracing_session, write_trace
    from repro.reduction import ReductionProblem, generalized_binary_reduction

    loaded = _load_program(path)
    if loaded is None:
        return 1
    program, constraints = loaded
    variables = variables_of(program)
    by_name = {str(v): v for v in variables}
    required = set()
    for name in keep:
        if name not in by_name:
            known = ", ".join(sorted(by_name))
            print(f"jlreduce: unknown item {name!r}; known items: {known}",
                  file=sys.stderr)
            return 1
        required.add(by_name[name])

    target = frozenset(required)
    problem = ReductionProblem(
        variables=variables,
        predicate=lambda kept: target <= kept,
        constraint=constraints,
        description=path,
    )
    if trace_path:
        trace_handle = _open_trace(trace_path)
        if trace_handle is None:
            return 1
        with trace_handle:
            with tracing_session() as (tracer, metrics):
                result = generalized_binary_reduction(
                    problem, require_true=target
                )
            write_trace(
                trace_handle, tracer, metrics, label=f"reduce {path}"
            )
    else:
        result = generalized_binary_reduction(problem, require_true=target)

    if json_output:
        payload = {
            "file": path,
            "keep": sorted(keep),
            "total_items": len(variables),
            "kept_items": len(result.solution),
            "solution": sorted(str(v) for v in result.solution),
            "predicate_calls": result.predicate_calls,
            "iterations": result.iterations,
            "elapsed_seconds": result.elapsed_seconds,
            "metrics": result.extras.get("metrics", {}),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"// kept {len(result.solution)} of {len(variables)} items "
              f"in {result.predicate_calls} predicate runs")
        print(pretty_program(reduce_program(program, result.solution)))
    return 0


def _bench(
    profile: str,
    trace_path: Optional[str] = None,
    json_output: bool = False,
    jobs: int = 1,
    store_path: Optional[str] = None,
) -> int:
    from repro.observability import tracing_session, write_trace
    from repro.workloads.corpus import CorpusConfig, build_corpus

    if jobs < 0:
        print(f"jlreduce: --jobs must be >= 0, got {jobs}", file=sys.stderr)
        return 1
    config = (
        CorpusConfig.paper() if profile == "paper" else CorpusConfig.small()
    )
    progress = (
        None if json_output else lambda line: print(f"  {line}")
    )
    if not json_output:
        print(f"building corpus ({profile} profile) ...")
    corpus = build_corpus(config)
    store = None
    if store_path:
        from repro.parallel import PredicateStore

        try:
            store = PredicateStore(store_path)
        except OSError as exc:
            print(
                f"jlreduce: cannot open store {store_path}: {exc}",
                file=sys.stderr,
            )
            return 1
    try:
        if trace_path:
            trace_handle = _open_trace(trace_path)
            if trace_handle is None:
                return 1
            with trace_handle:
                with tracing_session() as (tracer, metrics):
                    outcomes = _run_bench(
                        corpus, profile, json_output, progress, jobs, store
                    )
                write_trace(
                    trace_handle, tracer, metrics, label=f"bench {profile}"
                )
        else:
            outcomes = _run_bench(
                corpus, profile, json_output, progress, jobs, store
            )
    finally:
        if store is not None:
            store.close()

    if json_output:
        from dataclasses import asdict

        payload = {
            "profile": profile,
            "outcomes": [asdict(outcome) for outcome in outcomes],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _run_bench(corpus, profile, json_output, progress, jobs=1, store=None):
    from repro.harness import (
        corpus_statistics,
        mean_reduction_over_time,
        render_cfd_table,
        render_headline,
        render_lossy_comparison,
        render_statistics,
        render_timeline,
        run_corpus_experiment,
    )
    from repro.harness.report import by_strategy

    if not json_output:
        print(render_statistics(corpus_statistics(corpus)))
        print("\nrunning strategies ...")
    outcomes = run_corpus_experiment(
        corpus, progress=progress, jobs=jobs, store=store
    )
    if json_output:
        return outcomes
    print()
    print(render_headline(outcomes))
    print()
    print(render_lossy_comparison(outcomes))
    print()
    for metric, title in (
        ("time", "Figure 8a-1: time spent (simulated)"),
        ("classes", "Figure 8a-2: final relative size (classes)"),
        ("bytes", "Figure 8a-3: final relative size (bytes)"),
    ):
        print(render_cfd_table(outcomes, metric, title))
        print()
    series = {
        name: mean_reduction_over_time(group)
        for name, group in by_strategy(outcomes).items()
        if name in ("our-reducer", "jreduce")
    }
    print(render_timeline(series))
    return outcomes


def _trace_summarize(path: str, json_output: bool = False) -> int:
    from repro.observability import load_trace, render_summary, summarize

    try:
        events = load_trace(path)
    except OSError as exc:
        print(f"jlreduce: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"jlreduce: {path}: {exc}", file=sys.stderr)
        return 1
    summary = summarize(events)
    if json_output:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""The ``jlreduce`` command-line tool.

Subcommands:

- ``jlreduce demo`` — the paper's Section 2 running example end to end.
- ``jlreduce count FILE.fji`` — type check an FJI file and count its
  valid sub-inputs with the #SAT engine.
- ``jlreduce reduce FILE.fji --keep ITEM ...`` — reduce an FJI program
  to the smallest valid sub-program whose kept-item set contains the
  named items (a containment predicate stands in for the buggy tool;
  item syntax matches the bracket rendering, e.g. ``[A.m()!code]``).
- ``jlreduce bench [--profile small|paper|njr] [--jobs N] [--store P]``
  — run the corpus experiment and print the Section 5 reports;
  ``--jobs`` fans instances out to a worker *thread* pool (0: one per
  CPU), ``--store`` persists predicate outcomes so repeat runs skip
  fresh invocations.  ``--corpus-jobs N`` switches to the
  process-parallel corpus scheduler instead (whole instances on worker
  processes, longest-job-first, serial-order commit; 0: one per CPU),
  with ``--worker-budget T`` capping corpus workers + per-worker probe
  pools at T live workers total, ``--results FILE.jsonl`` streaming
  per-instance outcomes to disk (no O(corpus) memory in the parent),
  ``--debloat`` adding the coverage-debloating row-group, and
  ``--corpus-dir DIR`` running a corpus persisted by ``jlreduce corpus
  generate`` from its manifest instead of building one in memory.
  ``--num-benchmarks N`` overrides the profile's corpus size.
  The store is the sharded cache tier by default (``--store-backend
  sharded``: lazily-loaded hash-selected shard files with compaction;
  a v1 single-file store is migrated in place) with ``--store-shards
  N`` / ``--store-max-entries M`` sizing knobs, ``--store-backend
  sqlite`` for a WAL database, ``--store-backend v1`` for the legacy
  single file, and ``--store-tenant NAME`` to namespace many tenants
  into one shared warm store.
  Resilience flags: ``--budget-calls`` / ``--budget-seconds`` cap each
  run and yield anytime ``"partial"`` outcomes, ``--retries`` recovers
  transient oracle failures, ``--deadline-seconds`` bounds each call,
  ``--keep-going`` records crashed instances instead of aborting, and
  ``--chaos KIND --chaos-rate P --chaos-seed N`` injects seeded faults
  (the chaos bench mode).  ``--speculate K`` (also on ``reduce``)
  evaluates up to K GBR prefix-search probes concurrently per round
  with byte-identical results; ``--probe-backend process`` (also on
  ``reduce``) runs them on spawn-safe worker processes instead of the
  GIL-bound thread pool, and ``--tool-latency-ms MS`` models the
  paper's external tool as a real per-attempt sleep the concurrent
  probes overlap.
- ``jlreduce corpus generate DIR`` — build a corpus profile and persist
  it (manifest + per-app files) for later ``bench --corpus-dir`` runs.
- ``jlreduce report FILE.jsonl`` — render the paper-style corpus table
  from a streamed ``--results`` file.
- ``jlreduce trace summarize FILE...`` — aggregate JSONL traces written
  by ``--trace`` (per-span totals/mean/p95, counter totals, probe
  ledger, and the slowest per-instance blocks).  All ``trace`` subcommands accept multiple files and globs
  and transparently merge per-worker shard files
  (``FILE.shard-w0.jsonl`` ...) in serial commit order.
- ``jlreduce trace timeline FILE...`` — the merged causal timeline
  (spans indented under parents, both clocks, probes inlined).
- ``jlreduce trace flame FILE...`` — folded-stacks output for
  flamegraph renderers (``--clock wall|virtual``).
- ``jlreduce trace diff A B`` — compare two runs on both clocks (wall
  and simulated) with per-span deltas; either side may be a trace or a
  BENCH_*.json baseline payload.
- ``jlreduce trace explain HANDLE FILE...`` — resolve one probe's full
  provenance chain (why it ran, what it cost on both clocks) by
  ``event_id`` or key prefix.
- ``jlreduce trace merge FILE... --out MERGED`` — write the merged
  event stream as one JSONL file.
- ``jlreduce metrics export FILE...`` — metric events as
  Prometheus-style text exposition.
- ``jlreduce serve`` — the reduction-as-a-service job server: an
  asyncio HTTP front-end accepting JSON reduction jobs, multi-tenant
  admission control (per-tenant queues, quotas, weighted fair
  dispatch, 429 backpressure), fan-out to the process pool, one shared
  tenant-namespaced warm store, graceful SIGTERM/SIGINT drain.
- ``jlreduce submit`` — send one job to a running server and wait.
- ``jlreduce loadgen`` — drive a server with a concurrent tenant mix
  and print the measured throughput/latency curve.

``reduce`` and ``bench`` accept ``--trace FILE.jsonl`` (record spans and
metrics for the run; a parallel ``bench --jobs N`` streams per-worker
shard files next to it), ``--profile-phases`` (opt-in cProfile hotspot
capture per reduce phase, recorded into the trace), and ``--json``
(machine-readable result on stdout).

Exit status is 0 on success, 1 on user errors (bad file, unknown item),
2 on argument errors (argparse's convention).
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import ExitStack
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jlreduce",
        description=(
            "Logical bytecode reduction (PLDI 2021 reproduction): "
            "dependency-aware input reduction via propositional logic "
            "and Generalized Binary Reduction."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run the paper's running example")

    count = sub.add_parser(
        "count", help="count valid sub-inputs of an FJI file"
    )
    count.add_argument("file", help="path to an .fji source file")

    reduce_cmd = sub.add_parser(
        "reduce", help="reduce an FJI file around required items"
    )
    reduce_cmd.add_argument("file", help="path to an .fji source file")
    reduce_cmd.add_argument(
        "--keep",
        action="append",
        default=[],
        metavar="ITEM",
        help="item that must survive, e.g. '[A.m()!code]' (repeatable)",
    )
    reduce_cmd.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        help="write span/metric telemetry for the run as JSONL",
    )
    reduce_cmd.add_argument(
        "--json",
        action="store_true",
        help="print the result as JSON instead of the reduced program",
    )
    reduce_cmd.add_argument(
        "--budget-calls",
        type=int,
        metavar="N",
        help="stop after N fresh predicate calls and return the "
        "best-so-far result (status: partial)",
    )
    reduce_cmd.add_argument(
        "--budget-seconds",
        type=float,
        metavar="S",
        help="stop once the simulated clock passes S seconds and return "
        "the best-so-far result (status: partial)",
    )
    reduce_cmd.add_argument(
        "--speculate",
        type=int,
        default=1,
        metavar="K",
        help="evaluate up to K prefix-search probes concurrently per "
        "round; results are byte-identical to sequential (default 1)",
    )
    reduce_cmd.add_argument(
        "--probe-backend",
        choices=("thread", "process"),
        default="thread",
        help="where speculative probes physically run: 'thread' (GIL-"
        "bound pool) or 'process' (spawn-safe worker processes); "
        "results are byte-identical (default thread)",
    )
    reduce_cmd.add_argument(
        "--profile-phases",
        action="store_true",
        help="capture a cProfile hotspot table of the reduction into "
        "the trace (requires --trace; adds noticeable overhead)",
    )

    bench = sub.add_parser(
        "bench", help="run the corpus experiment and print the reports"
    )
    bench.add_argument(
        "--profile",
        choices=("small", "paper", "njr"),
        default="small",
        help="corpus size profile; 'njr' is the 1000-app corpus whose "
        "geo-mean classes/bytes/items/clauses match the paper's Table 1 "
        "(default: small)",
    )
    bench.add_argument(
        "--num-benchmarks",
        type=int,
        default=None,
        metavar="N",
        help="override the profile's corpus size",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker threads for instance runs (0: one per CPU; default 1)",
    )
    bench.add_argument(
        "--corpus-jobs",
        type=int,
        default=None,
        metavar="N",
        help="run whole instances on N worker processes via the corpus "
        "scheduler (longest-job-first dispatch, serial-order commit; "
        "outcomes match --jobs 1 byte for byte; 0: one per CPU)",
    )
    bench.add_argument(
        "--worker-budget",
        type=int,
        default=None,
        metavar="T",
        help="cap total live workers (corpus workers + their probe "
        "pools) at T so --corpus-jobs x --speculate never "
        "oversubscribes (default: one per CPU when --corpus-jobs is "
        "used)",
    )
    bench.add_argument(
        "--results",
        metavar="FILE.jsonl",
        help="stream per-instance outcomes to FILE as JSONL "
        "(append-ordered, one row per instance; with --corpus-jobs the "
        "parent holds no per-outcome state)",
    )
    bench.add_argument(
        "--corpus-dir",
        metavar="DIR",
        help="run a corpus persisted by 'jlreduce corpus generate' from "
        "its manifest (requires --corpus-jobs; apps load lazily in the "
        "workers)",
    )
    bench.add_argument(
        "--debloat",
        action="store_true",
        help="add the coverage-based debloating scenario as a second "
        "row-group (same Problem/predicate interface, observed-coverage "
        "predicate)",
    )
    bench.add_argument(
        "--store",
        metavar="PATH",
        help="persistent predicate cache; warm entries skip fresh "
        "predicate invocations.  The default sharded backend keeps a "
        "directory of hash-selected shard files (a v1 single-file "
        "store at PATH is migrated automatically)",
    )
    bench.add_argument(
        "--store-backend",
        choices=("sharded", "sqlite", "v1"),
        default="sharded",
        help="store implementation: 'sharded' lazily-loaded JSONL "
        "shards (default), 'sqlite' WAL database, 'v1' legacy "
        "single-file JSONL",
    )
    bench.add_argument(
        "--store-shards",
        type=int,
        default=None,
        metavar="N",
        help="shard files for a new sharded store (default 16; an "
        "existing store keeps its manifest's count)",
    )
    bench.add_argument(
        "--store-max-entries",
        type=int,
        default=None,
        metavar="M",
        help="bound the store's in-memory index to ~M entries; "
        "least-recently-used shards are evicted and re-faulted from "
        "disk on demand (default: unbounded)",
    )
    bench.add_argument(
        "--store-tenant",
        default="",
        metavar="NAME",
        help="namespace store entries under a tenant, so many tenants "
        "can share one warm store without mixing cached outcomes",
    )
    bench.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        help="write span/metric telemetry for the experiment as JSONL",
    )
    bench.add_argument(
        "--json",
        action="store_true",
        help="print per-instance outcomes as JSON instead of the reports",
    )
    bench.add_argument(
        "--budget-calls",
        type=int,
        metavar="N",
        help="per-run cap on fresh predicate attempts; exhausted runs "
        "return their best-so-far result (status: partial)",
    )
    bench.add_argument(
        "--budget-seconds",
        type=float,
        metavar="S",
        help="per-run cap on simulated seconds (33 s per attempt)",
    )
    bench.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retries per predicate call for transient oracle failures "
        "(timeouts and flaky errors; default 0)",
    )
    bench.add_argument(
        "--deadline-seconds",
        type=float,
        metavar="S",
        help="wall-clock deadline per predicate attempt; overruns count "
        "as transient failures",
    )
    bench.add_argument(
        "--keep-going",
        action="store_true",
        help="record a crashed instance as an error-marked outcome and "
        "finish the rest of the corpus",
    )
    bench.add_argument(
        "--chaos",
        choices=("flaky", "flip", "slow", "crash"),
        metavar="KIND",
        help="inject seeded oracle faults: flaky (transient errors), "
        "flip (wrong answers), slow (stalls), crash (unrecoverable)",
    )
    bench.add_argument(
        "--chaos-rate",
        type=float,
        default=0.2,
        metavar="P",
        help="per-call fault probability for --chaos (default 0.2)",
    )
    bench.add_argument(
        "--chaos-seed",
        type=int,
        default=2021,
        metavar="N",
        help="master seed for the fault schedule (default 2021)",
    )
    bench.add_argument(
        "--speculate",
        type=int,
        default=1,
        metavar="K",
        help="evaluate up to K GBR prefix-search probes concurrently per "
        "round on a shared probe pool; outcomes are byte-identical to "
        "sequential runs (default 1)",
    )
    bench.add_argument(
        "--probe-backend",
        choices=("thread", "process"),
        default="thread",
        help="where speculative probes physically run: 'thread' (GIL-"
        "bound pool) or 'process' (spawn-safe worker processes); "
        "outcomes are byte-identical (default thread)",
    )
    bench.add_argument(
        "--tool-latency-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="real milliseconds each fresh predicate attempt sleeps, "
        "modelling the paper's external ~33 s tool; concurrent probes "
        "overlap the sleep (default 0)",
    )
    bench.add_argument(
        "--profile-phases",
        action="store_true",
        help="capture per-instance cProfile hotspot tables into the "
        "trace (requires --trace; adds noticeable overhead)",
    )

    corpus_cmd = sub.add_parser(
        "corpus", help="generate and persist benchmark corpora"
    )
    corpus_sub = corpus_cmd.add_subparsers(
        dest="corpus_command", required=True
    )
    generate_cmd = corpus_sub.add_parser(
        "generate",
        help="build a corpus profile and persist it (manifest + apps)",
    )
    generate_cmd.add_argument(
        "directory", metavar="DIR", help="output directory for the corpus"
    )
    generate_cmd.add_argument(
        "--profile",
        choices=("small", "paper", "njr"),
        default="njr",
        help="corpus size profile (default: njr)",
    )
    generate_cmd.add_argument(
        "--num-benchmarks",
        type=int,
        default=None,
        metavar="N",
        help="override the profile's corpus size",
    )
    generate_cmd.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="override the profile's master seed (per-benchmark seeds "
        "derive from the benchmark id, so N only relabels the corpus)",
    )

    report_cmd = sub.add_parser(
        "report",
        help="render the paper-style corpus table from streamed results",
    )
    report_cmd.add_argument(
        "results",
        metavar="FILE.jsonl",
        help="results file written by bench --results",
    )

    trace = sub.add_parser("trace", help="inspect JSONL trace files")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    def _trace_files(cmd):
        cmd.add_argument(
            "files",
            nargs="+",
            metavar="FILE",
            help=".jsonl trace files or globs; per-worker shard files "
            "are discovered and merged automatically",
        )

    summarize_cmd = trace_sub.add_parser(
        "summarize", help="aggregate traces into per-span/counter tables"
    )
    _trace_files(summarize_cmd)
    summarize_cmd.add_argument(
        "--json",
        action="store_true",
        help="print the aggregate summary as JSON",
    )

    timeline_cmd = trace_sub.add_parser(
        "timeline", help="print the merged causal timeline"
    )
    _trace_files(timeline_cmd)
    timeline_cmd.add_argument(
        "--no-probes",
        action="store_true",
        help="omit probe ledger entries from the timeline",
    )
    timeline_cmd.add_argument(
        "--limit",
        type=int,
        metavar="N",
        help="truncate the timeline after N lines",
    )

    flame_cmd = trace_sub.add_parser(
        "flame", help="folded-stacks output for flamegraph renderers"
    )
    _trace_files(flame_cmd)
    flame_cmd.add_argument(
        "--clock",
        choices=("wall", "virtual"),
        default="wall",
        help="which clock weights the stacks (default wall)",
    )

    diff_cmd = trace_sub.add_parser(
        "diff", help="compare two runs on both clocks"
    )
    diff_cmd.add_argument(
        "a", metavar="A", help="baseline: a trace file/glob or BENCH json"
    )
    diff_cmd.add_argument(
        "b", metavar="B", help="candidate: a trace file/glob or BENCH json"
    )
    diff_cmd.add_argument(
        "--json",
        action="store_true",
        help="print the diff as JSON",
    )

    explain_cmd = trace_sub.add_parser(
        "explain", help="resolve one probe's full provenance chain"
    )
    explain_cmd.add_argument(
        "handle",
        metavar="HANDLE",
        help="probe event_id (e.g. 'w0:e12') or probe key prefix",
    )
    _trace_files(explain_cmd)

    merge_cmd = trace_sub.add_parser(
        "merge", help="merge shards into one serial-ordered JSONL file"
    )
    _trace_files(merge_cmd)
    merge_cmd.add_argument(
        "--out",
        metavar="MERGED.jsonl",
        help="write the merged stream here (default stdout)",
    )

    metrics_cmd = sub.add_parser(
        "metrics", help="export metrics from JSONL trace files"
    )
    metrics_sub = metrics_cmd.add_subparsers(
        dest="metrics_command", required=True
    )
    export_cmd = metrics_sub.add_parser(
        "export", help="Prometheus text exposition of the trace's metrics"
    )
    _trace_files(export_cmd)
    export_cmd.add_argument(
        "--prefix",
        default="jlreduce",
        help="metric name prefix (default jlreduce)",
    )

    serve_cmd = sub.add_parser(
        "serve",
        help="run the reduction-as-a-service asyncio job server",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=8437,
        help="listen port; 0 picks a free port (default 8437)",
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="pool workers == max concurrently running jobs (default 2)",
    )
    serve_cmd.add_argument(
        "--backend", choices=("process", "thread"), default="process",
        help="instance pool backend (default process)",
    )
    serve_cmd.add_argument(
        "--store", metavar="DIR",
        help="shared warm predicate store, namespaced per tenant",
    )
    serve_cmd.add_argument(
        "--store-backend", choices=("plain", "sharded"), default="sharded",
        help="predicate store backend (default sharded)",
    )
    serve_cmd.add_argument(
        "--store-shards", type=int, default=None, metavar="N",
        help="shard count for --store-backend sharded",
    )
    serve_cmd.add_argument(
        "--store-max-entries", type=int, default=None, metavar="N",
        help="in-memory cache-tier bound per store handle",
    )
    serve_cmd.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="per-tenant queue bound before 429 backpressure "
        "(default 64)",
    )
    serve_cmd.add_argument(
        "--tenant-quota-jobs", type=int, default=None, metavar="N",
        help="per-tenant admission quota: max jobs per session",
    )
    serve_cmd.add_argument(
        "--tenant-quota-seconds", type=float, default=None, metavar="S",
        help="per-tenant admission quota: max simulated seconds",
    )
    serve_cmd.add_argument(
        "--tenant-weight", action="append", default=[], metavar="NAME=W",
        help="fair-dispatch weight override (repeatable, default 1.0)",
    )
    serve_cmd.add_argument(
        "--trace", metavar="FILE.jsonl",
        help="stream the service session's sharded trace here",
    )
    serve_cmd.add_argument(
        "--ready-file", metavar="PATH",
        help="write 'host port' here once listening (CI handshake)",
    )
    serve_cmd.add_argument(
        "--sample-seconds", type=float, default=0.5, metavar="S",
        help="queue-depth gauge sampling period (default 0.5)",
    )

    submit_cmd = sub.add_parser(
        "submit", help="submit one reduction job to a running server"
    )
    submit_cmd.add_argument(
        "--server", default="127.0.0.1:8437", metavar="HOST:PORT"
    )
    submit_cmd.add_argument("--tenant", required=True)
    submit_cmd.add_argument(
        "--benchmark", default="b000", metavar="ID",
        help="workload benchmark id, e.g. b003 (default b000)",
    )
    submit_cmd.add_argument(
        "--profile", default="small",
        help="corpus profile naming the workload (default small)",
    )
    submit_cmd.add_argument(
        "--decompiler", default=None,
        help="decompiler under test (default: first runnable pair "
        "of the benchmark)",
    )
    submit_cmd.add_argument(
        "--strategy", default="our-reducer",
        help="reduction strategy (default our-reducer)",
    )
    submit_cmd.add_argument(
        "--scenario", choices=("reduction", "debloat"),
        default="reduction",
    )
    submit_cmd.add_argument(
        "--app", metavar="FILE",
        help="submit this serialized application instead of a "
        "server-generated workload",
    )
    submit_cmd.add_argument(
        "--app-seed", type=int, default=0, metavar="N",
        help="app seed accompanying --app (default 0)",
    )
    submit_cmd.add_argument(
        "--no-wait", action="store_true",
        help="return after the 202, do not poll for completion",
    )
    submit_cmd.add_argument(
        "--timeout", type=float, default=300.0, metavar="S",
        help="polling timeout with --wait (default 300)",
    )
    submit_cmd.add_argument(
        "--json", action="store_true",
        help="print the final job record as JSON",
    )

    loadgen_cmd = sub.add_parser(
        "loadgen",
        help="drive a running server with a concurrent tenant mix",
    )
    loadgen_cmd.add_argument(
        "--server", default="127.0.0.1:8437", metavar="HOST:PORT"
    )
    loadgen_cmd.add_argument(
        "--jobs", type=int, default=100, metavar="N",
        help="total jobs across all tenants (default 100)",
    )
    loadgen_cmd.add_argument(
        "--concurrency", type=int, default=100, metavar="N",
        help="jobs concurrently in flight (default 100)",
    )
    loadgen_cmd.add_argument(
        "--tenants", default="acme=1,beta=1,gamma=1", metavar="SPEC",
        help="comma-separated name=share mix "
        "(default acme=1,beta=1,gamma=1)",
    )
    loadgen_cmd.add_argument(
        "--profile", default="tiny",
        help="corpus profile for the generated jobs (default tiny)",
    )
    loadgen_cmd.add_argument(
        "--benchmarks", type=int, default=4, metavar="N",
        help="cycle jobs over the profile's first N benchmarks "
        "(default 4)",
    )
    loadgen_cmd.add_argument(
        "--strategy", default="our-reducer",
        help="reduction strategy (default our-reducer)",
    )
    loadgen_cmd.add_argument(
        "--json", action="store_true",
        help="print the measured curve as JSON",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _demo()
    if args.command == "count":
        return _count(args.file)
    if args.command == "reduce":
        return _reduce(
            args.file,
            args.keep,
            args.trace,
            args.json,
            budget_calls=args.budget_calls,
            budget_seconds=args.budget_seconds,
            speculate=args.speculate,
            probe_backend=args.probe_backend,
            profile_phases=args.profile_phases,
        )
    if args.command == "bench":
        return _bench(
            args.profile,
            args.trace,
            args.json,
            args.jobs,
            args.store,
            num_benchmarks=args.num_benchmarks,
            corpus_jobs=args.corpus_jobs,
            worker_budget=args.worker_budget,
            results_path=args.results,
            corpus_dir=args.corpus_dir,
            debloat=args.debloat,
            store_backend=args.store_backend,
            store_shards=args.store_shards,
            store_max_entries=args.store_max_entries,
            store_tenant=args.store_tenant,
            budget_calls=args.budget_calls,
            budget_seconds=args.budget_seconds,
            retries=args.retries,
            deadline_seconds=args.deadline_seconds,
            keep_going=args.keep_going,
            chaos=args.chaos,
            chaos_rate=args.chaos_rate,
            chaos_seed=args.chaos_seed,
            speculate=args.speculate,
            probe_backend=args.probe_backend,
            tool_latency_ms=args.tool_latency_ms,
            profile_phases=args.profile_phases,
        )
    if args.command == "corpus":
        if args.corpus_command == "generate":
            return _corpus_generate(
                args.directory, args.profile, args.num_benchmarks, args.seed
            )
        raise AssertionError(
            f"unhandled corpus command {args.corpus_command!r}"
        )
    if args.command == "report":
        return _report(args.results)
    if args.command == "trace":
        if args.trace_command == "summarize":
            return _trace_summarize(args.files, args.json)
        if args.trace_command == "timeline":
            return _trace_timeline(args.files, args.no_probes, args.limit)
        if args.trace_command == "flame":
            return _trace_flame(args.files, args.clock)
        if args.trace_command == "diff":
            return _trace_diff(args.a, args.b, args.json)
        if args.trace_command == "explain":
            return _trace_explain(args.handle, args.files)
        if args.trace_command == "merge":
            return _trace_merge(args.files, args.out)
        raise AssertionError(f"unhandled trace command {args.trace_command!r}")
    if args.command == "metrics":
        if args.metrics_command == "export":
            return _metrics_export(args.files, args.prefix)
        raise AssertionError(
            f"unhandled metrics command {args.metrics_command!r}"
        )
    if args.command == "serve":
        return _serve(args)
    if args.command == "submit":
        return _submit(args)
    if args.command == "loadgen":
        return _loadgen(args)
    raise AssertionError(f"unhandled command {args.command!r}")


# ---------------------------------------------------------------------------


class _ContainmentPredicate:
    """``reduce``'s stand-in oracle: holds iff the kept set covers
    the ``--keep`` targets.

    A module-level class (not a lambda) so it pickles into
    ``--probe-backend process`` worker processes; the FJI item
    dataclasses it holds are frozen and picklable.
    """

    def __init__(self, target) -> None:
        self.target = frozenset(target)

    def __call__(self, kept) -> bool:
        return self.target <= kept

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _ContainmentPredicate)
            and self.target == other.target
        )

    def __hash__(self) -> int:
        return hash(self.target)


def _demo() -> int:
    from repro.fji.examples import (
        MAIN_CODE,
        figure1_constraints,
        figure1_problem,
        figure1_program,
    )
    from repro.fji.pretty import pretty_program
    from repro.fji.reducer import reduce_program
    from repro.logic import count_models
    from repro.reduction import generalized_binary_reduction

    program = figure1_program()
    constraints = figure1_constraints(include_main_requirement=False)
    print(pretty_program(program))
    print(f"constraints: {len(constraints)}; valid sub-inputs: "
          f"{count_models(constraints):,}")
    result = generalized_binary_reduction(
        figure1_problem(), require_true=frozenset({MAIN_CODE})
    )
    print(f"GBR: {len(result.solution)} items in "
          f"{result.predicate_calls} tool runs\n")
    print(pretty_program(reduce_program(program, result.solution)))
    return 0


def _open_trace(path: str):
    """Open a trace file for writing, failing fast (before the run)."""
    try:
        return open(path, "w", encoding="utf-8")
    except OSError as exc:
        print(f"jlreduce: cannot write {path}: {exc}", file=sys.stderr)
        return None


def _load_program(path: str):
    from repro.fji import ParseError, TypeError_, check_program, parse_program

    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        print(f"jlreduce: cannot read {path}: {exc}", file=sys.stderr)
        return None
    try:
        program = parse_program(source)
        constraints = check_program(program)
    except (ParseError, TypeError_) as exc:
        print(f"jlreduce: {path}: {exc}", file=sys.stderr)
        return None
    return program, constraints


def _count(path: str) -> int:
    from repro.fji.variables import variables_of
    from repro.logic import count_models

    loaded = _load_program(path)
    if loaded is None:
        return 1
    program, constraints = loaded
    variables = variables_of(program)
    print(f"variables    : {len(variables)}")
    print(f"constraints  : {len(constraints)}")
    print(f"graph clauses: {constraints.graph_clause_fraction():.1%}")
    print(f"valid inputs : {count_models(constraints):,} "
          f"of {2 ** len(variables):,}")
    return 0


def _reduce(
    path: str,
    keep: List[str],
    trace_path: Optional[str] = None,
    json_output: bool = False,
    budget_calls: Optional[int] = None,
    budget_seconds: Optional[float] = None,
    speculate: int = 1,
    probe_backend: str = "thread",
    profile_phases: bool = False,
) -> int:
    from repro.fji.pretty import pretty_program
    from repro.fji.reducer import reduce_program
    from repro.fji.variables import variables_of
    from repro.observability import (
        profiled_phase,
        tracing_session,
        write_trace,
    )
    from repro.reduction import ReductionProblem, generalized_binary_reduction

    loaded = _load_program(path)
    if loaded is None:
        return 1
    program, constraints = loaded
    variables = variables_of(program)
    by_name = {str(v): v for v in variables}
    required = set()
    for name in keep:
        if name not in by_name:
            known = ", ".join(sorted(by_name))
            print(f"jlreduce: unknown item {name!r}; known items: {known}",
                  file=sys.stderr)
            return 1
        required.add(by_name[name])

    if speculate < 1:
        print(f"jlreduce: --speculate must be >= 1, got {speculate}",
              file=sys.stderr)
        return 1
    if profile_phases and not trace_path:
        print("jlreduce: --profile-phases needs --trace (the profile is "
              "recorded into the trace)", file=sys.stderr)
        return 1
    target = frozenset(required)
    containment = _ContainmentPredicate(target)
    predicate = containment
    if budget_calls is not None or budget_seconds is not None:
        from repro.resilience import Budget, ResilientPredicate

        try:
            budget = Budget(
                max_calls=budget_calls,
                max_seconds=budget_seconds,
                seconds_per_call=33.0,  # the paper's mean tool-run cost
            )
        except ValueError as exc:
            print(f"jlreduce: {exc}", file=sys.stderr)
            return 1
        predicate = ResilientPredicate(predicate, budget=budget)
    if probe_backend == "process" and speculate > 1:
        # GBR's _instrument passes a pre-built InstrumentedPredicate
        # through, so this is where the picklable task spec (the raw
        # containment oracle — a limiting budget serializes speculation
        # before the pool sees a task) attaches to the cache layer.
        from repro.parallel.procpool import ProbeTaskSpec
        from repro.reduction.predicate import InstrumentedPredicate

        predicate = InstrumentedPredicate(
            predicate,
            task_spec=ProbeTaskSpec(kind="callable", predicate=containment),
        )
    problem = ReductionProblem(
        variables=variables,
        predicate=predicate,
        constraint=constraints,
        description=path,
    )
    probes = None
    if speculate > 1:
        if probe_backend == "process":
            from repro.parallel.procpool import ProcessProbePool

            probes = ProcessProbePool(max_workers=speculate)
        else:
            from concurrent.futures import ThreadPoolExecutor

            probes = ThreadPoolExecutor(
                max_workers=speculate, thread_name_prefix="jlreduce-probe"
            )
    try:
        if trace_path:
            trace_handle = _open_trace(trace_path)
            if trace_handle is None:
                return 1
            with trace_handle:
                with tracing_session() as (tracer, metrics):
                    from contextlib import nullcontext

                    capture = (
                        profiled_phase("reduce", tracer=tracer)
                        if profile_phases
                        else nullcontext()
                    )
                    with capture:
                        result = generalized_binary_reduction(
                            problem,
                            require_true=target,
                            speculate=speculate,
                            probe_executor=probes,
                        )
                write_trace(
                    trace_handle, tracer, metrics, label=f"reduce {path}"
                )
        else:
            result = generalized_binary_reduction(
                problem,
                require_true=target,
                speculate=speculate,
                probe_executor=probes,
            )
    finally:
        if probes is not None:
            probes.shutdown(wait=True)

    if json_output:
        payload = {
            "file": path,
            "keep": sorted(keep),
            "total_items": len(variables),
            "kept_items": len(result.solution),
            "solution": sorted(str(v) for v in result.solution),
            "predicate_calls": result.predicate_calls,
            "iterations": result.iterations,
            "elapsed_seconds": result.elapsed_seconds,
            "status": result.status,
            "metrics": result.extras.get("metrics", {}),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        suffix = " (partial: budget exhausted)" if result.is_partial else ""
        print(f"// kept {len(result.solution)} of {len(variables)} items "
              f"in {result.predicate_calls} predicate runs{suffix}")
        print(pretty_program(reduce_program(program, result.solution)))
    return 0


def _bench(
    profile: str,
    trace_path: Optional[str] = None,
    json_output: bool = False,
    jobs: int = 1,
    store_path: Optional[str] = None,
    num_benchmarks: Optional[int] = None,
    corpus_jobs: Optional[int] = None,
    worker_budget: Optional[int] = None,
    results_path: Optional[str] = None,
    corpus_dir: Optional[str] = None,
    debloat: bool = False,
    store_backend: str = "sharded",
    store_shards: Optional[int] = None,
    store_max_entries: Optional[int] = None,
    store_tenant: str = "",
    budget_calls: Optional[int] = None,
    budget_seconds: Optional[float] = None,
    retries: int = 0,
    deadline_seconds: Optional[float] = None,
    keep_going: bool = False,
    chaos: Optional[str] = None,
    chaos_rate: float = 0.2,
    chaos_seed: int = 2021,
    speculate: int = 1,
    probe_backend: str = "thread",
    tool_latency_ms: float = 0.0,
    profile_phases: bool = False,
) -> int:
    from repro.harness.experiments import ExperimentConfig
    from repro.resilience import Budget
    from repro.workloads.corpus import CorpusConfig, build_corpus

    if jobs < 0:
        print(f"jlreduce: --jobs must be >= 0, got {jobs}", file=sys.stderr)
        return 1
    if corpus_jobs is not None and corpus_jobs < 0:
        print(f"jlreduce: --corpus-jobs must be >= 0, got {corpus_jobs}",
              file=sys.stderr)
        return 1
    if worker_budget is not None and worker_budget <= 0:
        print(f"jlreduce: --worker-budget must be > 0, got {worker_budget}",
              file=sys.stderr)
        return 1
    if num_benchmarks is not None and num_benchmarks <= 0:
        print(f"jlreduce: --num-benchmarks must be > 0, got "
              f"{num_benchmarks}", file=sys.stderr)
        return 1
    if corpus_dir is not None and corpus_jobs is None:
        print("jlreduce: --corpus-dir needs --corpus-jobs (the corpus "
              "scheduler plans from the manifest)", file=sys.stderr)
        return 1
    if debloat and corpus_jobs is None:
        print("jlreduce: --debloat needs --corpus-jobs (row-groups render "
              "through the scheduler's streaming report)", file=sys.stderr)
        return 1
    if corpus_jobs is not None and store_path and store_tenant:
        print("jlreduce: --store-tenant is not supported with "
              "--corpus-jobs (worker processes open the store from an "
              "untenanted spec)", file=sys.stderr)
        return 1
    plan = None
    if chaos is not None:
        from repro.resilience import FaultPlan

        try:
            plan = FaultPlan(kind=chaos, rate=chaos_rate, seed=chaos_seed)
        except ValueError as exc:
            print(f"jlreduce: {exc}", file=sys.stderr)
            return 1
    if retries < 0:
        print(f"jlreduce: --retries must be >= 0, got {retries}",
              file=sys.stderr)
        return 1
    if speculate < 1:
        print(f"jlreduce: --speculate must be >= 1, got {speculate}",
              file=sys.stderr)
        return 1
    if tool_latency_ms < 0:
        print(f"jlreduce: --tool-latency-ms must be >= 0, got "
              f"{tool_latency_ms}", file=sys.stderr)
        return 1
    if profile_phases and not trace_path:
        print("jlreduce: --profile-phases needs --trace (profiles are "
              "recorded into the trace)", file=sys.stderr)
        return 1
    try:
        # Validate the budget/deadline values once, up front, instead of
        # per-instance deep inside the run.
        Budget(max_calls=budget_calls, max_seconds=budget_seconds)
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError(
                f"--deadline-seconds must be > 0, got {deadline_seconds}"
            )
    except ValueError as exc:
        print(f"jlreduce: {exc}", file=sys.stderr)
        return 1
    experiment = ExperimentConfig(
        budget_calls=budget_calls,
        budget_seconds=budget_seconds,
        retries=retries,
        deadline_seconds=deadline_seconds,
        keep_going=keep_going,
        chaos=plan,
        speculate=speculate,
        probe_backend=probe_backend,
        tool_latency_seconds=tool_latency_ms / 1000.0,
        profile_phases=profile_phases,
        tenant=store_tenant,
        worker_budget=worker_budget,
    )
    config = {
        "paper": CorpusConfig.paper,
        "njr": CorpusConfig.njr,
        "small": CorpusConfig.small,
    }[profile]()
    if num_benchmarks is not None:
        from dataclasses import replace

        config = replace(config, num_benchmarks=num_benchmarks)
    progress = (
        None if json_output else lambda line: print(f"  {line}")
    )
    if corpus_jobs is not None:
        return _bench_scheduled(
            config,
            experiment,
            corpus_jobs,
            profile=profile,
            trace_path=trace_path,
            json_output=json_output,
            progress=progress,
            results_path=results_path,
            corpus_dir=corpus_dir,
            debloat=debloat,
            store_path=store_path,
            store_backend=store_backend,
            store_shards=store_shards,
            store_max_entries=store_max_entries,
        )
    if not json_output:
        print(f"building corpus ({profile} profile) ...")
    corpus = build_corpus(config)
    # Every store backend is a context manager; the ExitStack guarantees
    # the append descriptors close even when a reduction raises mid-run
    # (the bare open/close pair used to leak the O_APPEND fd on error).
    with ExitStack() as stack:
        store = None
        if store_path:
            from repro.parallel import DEFAULT_SHARDS, open_store

            try:
                store = stack.enter_context(
                    open_store(
                        store_path,
                        backend=store_backend,
                        shards=(
                            store_shards
                            if store_shards is not None
                            else DEFAULT_SHARDS
                        ),
                        max_entries=store_max_entries,
                    )
                )
            except (OSError, ValueError) as exc:
                print(
                    f"jlreduce: cannot open store {store_path}: {exc}",
                    file=sys.stderr,
                )
                return 1
        outcomes = _run_bench_session(
            corpus, profile, trace_path, json_output, progress, jobs,
            store, experiment,
        )
        if outcomes is None:
            return 1

    if results_path:
        from repro.harness.report import ResultsWriter

        try:
            with ResultsWriter(results_path) as writer:
                for outcome in outcomes:
                    writer.write(outcome)
        except OSError as exc:
            print(f"jlreduce: cannot write {results_path}: {exc}",
                  file=sys.stderr)
            return 1

    if json_output:
        from dataclasses import asdict

        payload = {
            "profile": profile,
            "outcomes": [asdict(outcome) for outcome in outcomes],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _bench_scheduled(
    config,
    experiment,
    corpus_jobs: int,
    *,
    profile: str,
    trace_path: Optional[str],
    json_output: bool,
    progress,
    results_path: Optional[str],
    corpus_dir: Optional[str],
    debloat: bool,
    store_path: Optional[str],
    store_backend: str,
    store_shards: Optional[int],
    store_max_entries: Optional[int],
) -> int:
    """``bench`` routed through the process-parallel corpus scheduler.

    Outcomes stream through a :class:`StreamingReport` (and, with
    ``--results``, to JSONL) instead of the Section 5 report stack, so
    the parent never holds the corpus's outcomes in memory and the
    debloating scenario renders as its own row-group.
    """
    import os

    from repro.harness.report import ResultsWriter, StreamingReport
    from repro.observability import (
        ShardSet,
        metric_events,
        new_run_id,
        tracing_session,
        write_trace,
    )
    from repro.parallel.scheduler import (
        StoreSpec,
        run_scheduled_corpus_experiment,
    )
    from repro.reduction import ReductionError
    from repro.resilience import OracleCrash, TransientOracleError

    store_spec = None
    if store_path:
        from repro.parallel import DEFAULT_SHARDS

        store_spec = StoreSpec(
            path=store_path,
            backend=store_backend,
            shards=(
                store_shards if store_shards is not None else DEFAULT_SHARDS
            ),
            max_entries=store_max_entries,
        )

    kwargs = {}
    if corpus_dir is not None:
        from repro.workloads.corpus import MANIFEST_NAME

        if not os.path.isfile(os.path.join(corpus_dir, MANIFEST_NAME)):
            print(
                f"jlreduce: {corpus_dir}: no corpus manifest (persist one "
                "with 'jlreduce corpus generate' first)",
                file=sys.stderr,
            )
            return 1
        kwargs["corpus_path"] = corpus_dir
        kwargs["include_debloat"] = debloat
    else:
        from repro.workloads.corpus import build_corpus

        if not json_output:
            print(f"building corpus ({profile} profile) ...")
        corpus = build_corpus(config)
        if debloat:
            from repro.workloads.debloat import add_debloat_instances

            add_debloat_instances(corpus)
        kwargs["benchmarks"] = corpus

    report = StreamingReport()

    def run():
        with ExitStack() as stack:
            writer = (
                stack.enter_context(ResultsWriter(results_path))
                if results_path
                else None
            )

            def on_outcome(outcome):
                report.add(outcome)
                if writer is not None:
                    writer.write(outcome)

            return run_scheduled_corpus_experiment(
                config=experiment,
                progress=progress,
                jobs=corpus_jobs,
                store_spec=store_spec,
                on_outcome=on_outcome,
                collect=json_output,
                **kwargs,
            )

    def session():
        if trace_path and corpus_jobs != 1:
            handle = _open_trace(trace_path)
            if handle is None:
                return None
            handle.close()
            run_id = new_run_id()
            with ShardSet(
                trace_path, run_id=run_id, label=f"bench {profile}"
            ) as shards:
                with tracing_session(
                    run_id=run_id, shards=shards
                ) as (tracer, metrics):
                    result = run()
                    for event in metric_events(metrics, run_id=run_id):
                        shards.emit_main(event)
            return result
        if trace_path:
            handle = _open_trace(trace_path)
            if handle is None:
                return None
            with handle:
                with tracing_session() as (tracer, metrics):
                    result = run()
                write_trace(
                    handle, tracer, metrics, label=f"bench {profile}"
                )
            return result
        return run()

    try:
        result = session()
    except (ReductionError, OracleCrash, TransientOracleError) as exc:
        print(f"jlreduce: instance failed: {exc}", file=sys.stderr)
        print("jlreduce: rerun with --keep-going to record failed "
              "instances and finish the corpus", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"jlreduce: {exc}", file=sys.stderr)
        return 1
    if result is None:
        return 1

    if json_output:
        from dataclasses import asdict

        payload = {
            "profile": profile,
            "outcomes": [asdict(outcome) for outcome in result],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print()
        print(report.render())
    return 0


def _corpus_generate(
    directory: str,
    profile: str,
    num_benchmarks: Optional[int],
    seed: Optional[int],
) -> int:
    from repro.workloads.corpus import CorpusConfig, iter_corpus, save_corpus

    if num_benchmarks is not None and num_benchmarks <= 0:
        print(f"jlreduce: --num-benchmarks must be > 0, got "
              f"{num_benchmarks}", file=sys.stderr)
        return 1
    config = {
        "paper": CorpusConfig.paper,
        "njr": CorpusConfig.njr,
        "small": CorpusConfig.small,
    }[profile]()
    overrides = {}
    if num_benchmarks is not None:
        overrides["num_benchmarks"] = num_benchmarks
    if seed is not None:
        overrides["seed"] = seed
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    print(f"generating {config.num_benchmarks} benchmarks ({profile} "
          f"profile) -> {directory}")
    done = [0]

    def progress(benchmark):
        done[0] += 1
        if done[0] % 50 == 0:
            print(f"  {done[0]}/{config.num_benchmarks}")

    try:
        save_corpus(iter_corpus(config), directory, progress=progress)
    except OSError as exc:
        print(f"jlreduce: cannot write {directory}: {exc}", file=sys.stderr)
        return 1
    print(f"persisted {done[0]} benchmarks (manifest + apps) in {directory}")
    return 0


def _report(results_path: str) -> int:
    from repro.harness.report import report_from_results

    try:
        report = report_from_results(results_path)
    except OSError as exc:
        print(f"jlreduce: cannot read {results_path}: {exc}",
              file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"jlreduce: {results_path}: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    return 0


def _run_bench_session(
    corpus, profile, trace_path, json_output, progress, jobs, store,
    experiment,
):
    """One bench run with its tracing plumbing; None on handled failure."""
    from repro.observability import (
        ShardSet,
        metric_events,
        new_run_id,
        tracing_session,
        write_trace,
    )
    from repro.reduction import ReductionError
    from repro.resilience import OracleCrash, TransientOracleError

    try:
        if trace_path and jobs != 1:
            # Parallel run: stream per-worker shard files next to the
            # base trace (worker "main" writes the base file itself) so
            # a killed worker loses at most one torn line.  The `trace`
            # subcommands discover and merge the shard family.
            trace_handle = _open_trace(trace_path)
            if trace_handle is None:
                return None
            trace_handle.close()
            run_id = new_run_id()
            with ShardSet(
                trace_path, run_id=run_id, label=f"bench {profile}"
            ) as shards:
                with tracing_session(
                    run_id=run_id, shards=shards
                ) as (tracer, metrics):
                    outcomes = _run_bench(
                        corpus, profile, json_output, progress, jobs, store,
                        experiment,
                    )
                    for event in metric_events(metrics, run_id=run_id):
                        shards.emit_main(event)
        elif trace_path:
            trace_handle = _open_trace(trace_path)
            if trace_handle is None:
                return None
            with trace_handle:
                with tracing_session() as (tracer, metrics):
                    outcomes = _run_bench(
                        corpus, profile, json_output, progress, jobs, store,
                        experiment,
                    )
                write_trace(
                    trace_handle, tracer, metrics, label=f"bench {profile}"
                )
        else:
            outcomes = _run_bench(
                corpus, profile, json_output, progress, jobs, store,
                experiment,
            )
    except (ReductionError, OracleCrash, TransientOracleError) as exc:
        print(f"jlreduce: instance failed: {exc}", file=sys.stderr)
        print("jlreduce: rerun with --keep-going to record failed "
              "instances and finish the corpus", file=sys.stderr)
        return None
    return outcomes


def _run_bench(
    corpus, profile, json_output, progress, jobs=1, store=None, experiment=None
):
    from repro.harness import (
        corpus_statistics,
        mean_reduction_over_time,
        render_cfd_table,
        render_headline,
        render_lossy_comparison,
        render_statistics,
        render_timeline,
        run_corpus_experiment,
    )
    from repro.harness.report import by_strategy

    if not json_output:
        print(render_statistics(corpus_statistics(corpus)))
        print("\nrunning strategies ...")
    outcomes = run_corpus_experiment(
        corpus, config=experiment, progress=progress, jobs=jobs, store=store
    )
    if json_output:
        return outcomes
    print()
    print(render_headline(outcomes))
    print()
    print(render_lossy_comparison(outcomes))
    print()
    for metric, title in (
        ("time", "Figure 8a-1: time spent (simulated)"),
        ("classes", "Figure 8a-2: final relative size (classes)"),
        ("bytes", "Figure 8a-3: final relative size (bytes)"),
    ):
        print(render_cfd_table(outcomes, metric, title))
        print()
    series = {
        name: mean_reduction_over_time(group)
        for name, group in by_strategy(outcomes).items()
        if name in ("our-reducer", "jreduce")
    }
    print(render_timeline(series))
    return outcomes


def _load_merged(patterns: List[str]):
    """Load and merge trace files/globs, or print an error and None."""
    from repro.observability import load_traces

    try:
        return load_traces(patterns)
    except OSError as exc:
        print(f"jlreduce: cannot read trace: {exc}", file=sys.stderr)
        return None
    except ValueError as exc:
        print(f"jlreduce: {exc}", file=sys.stderr)
        return None


def _trace_summarize(patterns: List[str], json_output: bool = False) -> int:
    from repro.observability import render_summary, summarize

    events = _load_merged(patterns)
    if events is None:
        return 1
    summary = summarize(events)
    if json_output:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0


def _trace_timeline(
    patterns: List[str], no_probes: bool = False, limit: Optional[int] = None
) -> int:
    from repro.observability import render_timeline

    events = _load_merged(patterns)
    if events is None:
        return 1
    print(render_timeline(events, with_probes=not no_probes, limit=limit))
    return 0


def _trace_flame(patterns: List[str], clock: str = "wall") -> int:
    from repro.observability import folded_stacks

    events = _load_merged(patterns)
    if events is None:
        return 1
    print(folded_stacks(events, clock=clock))
    return 0


def _load_diff_side(arg: str):
    """A diff operand: a trace (event list) or a bench baseline payload.

    A file holding one JSON object (a BENCH_*.json) yields
    ``("baseline", clocks)``; anything else is treated as trace
    files/globs and yields ``("trace", events)``.  Returns None (after
    printing) when neither works.
    """
    import os

    from repro.observability import load_traces
    from repro.observability.tooling import baseline_totals

    if os.path.isfile(arg):
        try:
            with open(arg, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            payload = None
        if isinstance(payload, dict) and payload.get("type") != "meta":
            clocks = baseline_totals(payload)
            if clocks is None:
                print(
                    f"jlreduce: {arg}: no wall_seconds/simulated_seconds "
                    "in baseline payload",
                    file=sys.stderr,
                )
                return None
            return "baseline", clocks
    try:
        return "trace", load_traces([arg])
    except (OSError, ValueError) as exc:
        print(f"jlreduce: {arg}: {exc}", file=sys.stderr)
        return None


def _trace_diff(a: str, b: str, json_output: bool = False) -> int:
    from repro.observability import clock_totals, diff_traces, render_diff

    side_a = _load_diff_side(a)
    if side_a is None:
        return 1
    side_b = _load_diff_side(b)
    if side_b is None:
        return 1

    if side_a[0] == "trace" and side_b[0] == "trace":
        diff = diff_traces(side_a[1], side_b[1], a_label=a, b_label=b)
    else:
        # At least one side is a bench baseline: clocks only, no spans.
        clocks = {}
        resolved = {
            "a": (
                side_a[1]
                if side_a[0] == "baseline"
                else clock_totals(side_a[1])
            ),
            "b": (
                side_b[1]
                if side_b[0] == "baseline"
                else clock_totals(side_b[1])
            ),
        }
        for key in ("wall", "simulated"):
            a_val = resolved["a"][key]
            b_val = resolved["b"][key]
            clocks[key] = {
                "a": a_val,
                "b": b_val,
                "speedup": (a_val / b_val) if b_val else 0.0,
            }
        diff = {"labels": [a, b], "clocks": clocks, "spans": []}
    if json_output:
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(render_diff(diff))
    return 0


def _trace_explain(handle: str, patterns: List[str]) -> int:
    from repro.observability import explain, render_explain

    events = _load_merged(patterns)
    if events is None:
        return 1
    try:
        resolution = explain(events, handle)
    except ValueError as exc:
        print(f"jlreduce: {exc}", file=sys.stderr)
        return 1
    print(render_explain(resolution))
    return 0


def _trace_merge(patterns: List[str], out: Optional[str] = None) -> int:
    from repro.observability import JsonlSink

    events = _load_merged(patterns)
    if events is None:
        return 1
    if out is None:
        for event in events:
            print(json.dumps(event, sort_keys=True, default=str))
        return 0
    try:
        with JsonlSink(out) as sink:
            sink.emit_all(events)
    except OSError as exc:
        print(f"jlreduce: cannot write {out}: {exc}", file=sys.stderr)
        return 1
    print(f"merged {len(events)} events into {out}")
    return 0


def _metrics_export(patterns: List[str], prefix: str = "jlreduce") -> int:
    from repro.observability import prometheus_exposition

    events = _load_merged(patterns)
    if events is None:
        return 1
    sys.stdout.write(prometheus_exposition(events, prefix=prefix))
    return 0


def _parse_server(spec: str) -> tuple:
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(
            f"jlreduce: --server must be HOST:PORT, got {spec!r}"
        )
    return host, int(port)


def _serve(args) -> int:
    from repro.parallel.scheduler import StoreSpec
    from repro.service import ServiceConfig, TenantPolicy
    from repro.service.server import serve

    policies = {}
    for spec in args.tenant_weight:
        name, sep, weight = spec.partition("=")
        if not sep or not name:
            print(
                f"jlreduce: --tenant-weight must be NAME=WEIGHT, "
                f"got {spec!r}",
                file=sys.stderr,
            )
            return 1
        policies[name] = TenantPolicy(
            weight=float(weight),
            max_queue_depth=args.queue_depth,
            max_jobs=args.tenant_quota_jobs,
            max_seconds=args.tenant_quota_seconds,
        )
    store_spec = None
    if args.store:
        kwargs = {"path": args.store, "backend": args.store_backend}
        if args.store_shards is not None:
            kwargs["shards"] = args.store_shards
        if args.store_max_entries is not None:
            kwargs["max_entries"] = args.store_max_entries
        store_spec = StoreSpec(**kwargs)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        backend=args.backend,
        store_spec=store_spec,
        default_policy=TenantPolicy(
            max_queue_depth=args.queue_depth,
            max_jobs=args.tenant_quota_jobs,
            max_seconds=args.tenant_quota_seconds,
        ),
        policies=policies,
        sample_seconds=args.sample_seconds,
    )

    def _ready(host: str, port: int) -> None:
        print(f"jlreduce serve: listening on {host}:{port}", flush=True)
        if args.ready_file:
            with open(args.ready_file, "w", encoding="utf-8") as handle:
                handle.write(f"{host} {port}\n")

    return serve(
        config,
        trace_path=args.trace,
        ready=_ready,
        log=lambda message: print(f"jlreduce serve: {message}", flush=True),
    )


def _submit(args) -> int:
    import base64

    from repro.service import ServiceClient, ServiceError

    host, port = _parse_server(args.server)
    job: dict = {
        "tenant": args.tenant,
        "benchmark_id": args.benchmark,
        "strategy": args.strategy,
        "scenario": args.scenario,
        "profile": args.profile,
    }
    if args.app:
        try:
            with open(args.app, "rb") as handle:
                job["app_b64"] = base64.b64encode(
                    handle.read()
                ).decode("ascii")
        except OSError as exc:
            print(f"jlreduce: cannot read {args.app}: {exc}",
                  file=sys.stderr)
            return 1
        job["app_seed"] = args.app_seed
        if args.decompiler:
            job["decompiler"] = args.decompiler
    elif args.decompiler:
        job["decompiler"] = args.decompiler
    else:
        # Pick a decompiler the requested benchmark actually
        # miscompiles — any other pair has no failure to preserve.
        from repro.service.jobs import workload_pairs

        index = int(args.benchmark.lstrip("b") or 0)
        pairs = [
            pair for pair in workload_pairs(args.profile, index + 1)
            if pair[0] == args.benchmark
        ]
        if not pairs:
            print(
                f"jlreduce: {args.benchmark} has no runnable "
                f"decompiler in profile {args.profile!r}",
                file=sys.stderr,
            )
            return 1
        job["decompiler"] = pairs[0][1]
    client = ServiceClient(host, port)
    try:
        accepted = client.submit(job)
        if args.no_wait:
            record = accepted
        else:
            record = client.wait(accepted["job_id"], timeout=args.timeout)
    except (ServiceError, OSError, TimeoutError) as exc:
        print(f"jlreduce: {exc}", file=sys.stderr)
        return 1
    if args.json:
        json.dump(record, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        status = record.get("status", "queued")
        line = f"job {record['job_id']}: {status}"
        if record.get("latency_seconds") is not None:
            line += f" in {record['latency_seconds']:.3f}s"
        print(line)
        if record.get("error"):
            print(f"  error: {record['error']}")
    return 0 if record.get("status") != "error" else 1


def _loadgen(args) -> int:
    from repro.service.loadgen import build_jobs, run_loadgen

    host, port = _parse_server(args.server)
    tenants = {}
    for spec in args.tenants.split(","):
        name, sep, share = spec.partition("=")
        if not name:
            print(
                f"jlreduce: bad --tenants entry {spec!r}",
                file=sys.stderr,
            )
            return 1
        tenants[name.strip()] = int(share) if sep else 1
    try:
        jobs = build_jobs(
            tenants,
            args.jobs,
            profile=args.profile,
            benchmarks=args.benchmarks,
            strategy=args.strategy,
        )
    except ValueError as exc:
        print(f"jlreduce: {exc}", file=sys.stderr)
        return 1
    curve = run_loadgen(host, port, jobs, concurrency=args.concurrency)
    if args.json:
        json.dump(curve, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0 if not curve["errors"] and not curve["gave_up"] else 1
    latency = curve["latency"]
    print(
        f"{curve['completed']}/{curve['jobs']} jobs in "
        f"{curve['wall_seconds']:.1f}s — "
        f"{curve['jobs_per_second']:.2f} jobs/s "
        f"(concurrency {curve['concurrency']})"
    )
    print(
        f"latency p50={latency['p50']:.3f}s p95={latency['p95']:.3f}s "
        f"p99={latency['p99']:.3f}s max={latency['max']:.3f}s"
    )
    for tenant in sorted(curve["per_tenant"]):
        stats = curve["per_tenant"][tenant]
        print(
            f"  {tenant:<14} n={stats['count']:<5} "
            f"p50={stats['p50']:.3f}s p95={stats['p95']:.3f}s"
        )
    if curve["retries_429"]:
        print(f"backpressure: {curve['retries_429']} retried 429s")
    if curve["errors"] or curve["gave_up"]:
        print(
            f"errors={curve['errors']} gave_up={curve['gave_up']}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Simulated decompilers and the compile-check oracle.

The paper's evaluation: "a decompiler is buggy if the output does not
compile", running three real decompilers on each benchmark and reducing
while "preserving the full error message of the compiler".  We have no
JVM or network, so this package simulates the whole loop:

- :mod:`repro.decompiler.source` — a Java source model with rendering,
- :mod:`repro.decompiler.decompile` — a real instruction-to-source
  decompiler (a small symbolic stack machine) parameterized by style,
- :mod:`repro.decompiler.bugs` — seedable decompiler defects: when a
  trigger pattern of items is present, the emitted source is wrong,
- :mod:`repro.decompiler.javac` — a mini-javac that scope-checks and
  type-checks decompiled source and produces stable error messages,
- :mod:`repro.decompiler.oracle` — glues it into the black-box predicate
  "the reduced input still produces exactly the original error messages",
  which is monotone on valid sub-inputs (each bug triggers on a monotone
  item pattern).

The three decompilers ("alpha", "beta", "gamma") have distinct bug sets,
mirroring the paper's three decompilers with different failure modes.
"""

from repro.decompiler.source import SourceClass, SourceMethod, render_source
from repro.decompiler.decompile import Decompiler, DECOMPILERS, get_decompiler
from repro.decompiler.bugs import BUG_KINDS, BugSite
from repro.decompiler.javac import check_sources, JavacError
from repro.decompiler.oracle import DecompilerOracle, build_reduction_problem

__all__ = [
    "SourceClass",
    "SourceMethod",
    "render_source",
    "Decompiler",
    "DECOMPILERS",
    "get_decompiler",
    "BUG_KINDS",
    "BugSite",
    "check_sources",
    "JavacError",
    "DecompilerOracle",
    "build_reduction_problem",
]

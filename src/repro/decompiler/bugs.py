"""Decompiler defects.

Each bug kind decides, for a given (possibly reduced) application, the
set of *sites* at which the decompiler mistranslates.  Crucially every
site's presence is **monotone** in the application's items — a site
present in a sub-input is present in every valid super-input — which is
what makes the oracle's "all original error messages still appear"
predicate monotone on valid sub-inputs (Definition 4.1's assumption).

Real decompiler defects trigger on rare, specific shapes, not on every
occurrence of a pattern.  We model rarity with a deterministic hash
filter over the site's *identity* (:func:`selective`): the identity
never depends on which other items are present, so monotonicity is
preserved, while the expected number of sites per application stays
small (the paper reports a geometric mean of 9.2 compiler errors per
instance).  ``scale`` adjusts all selectivities at once — tests use
``scale=0`` to make every pattern occurrence a site.

The corruption itself happens in :mod:`repro.decompiler.decompile`; this
module only detects sites.  Bug kinds:

- ``iface-dispatch`` — an interface call right after a checked cast is
  emitted with a mangled method name (the paper's motivating
  cast-then-call pattern),
- ``ctor-cache`` — when the *same class* is constructed in two or more
  method bodies, the decompiler's constructor cache emits a bogus
  factory call at (some of) those sites,
- ``field-alias`` — writing a field of a class that (currently) has at
  least two fields confuses the alias analysis: the assignment target
  becomes an undeclared variable,
- ``param-drop`` — calls to methods with two or more parameters lose
  their last argument,
- ``reflection`` — ``X.class`` is decompiled with a bogus accessor call,
- ``dup-interface`` — classes implementing two or more interfaces get
  the alphabetically first one repeated in the implements clause.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bytecode.classfile import Application
from repro.bytecode.descriptors import parse_method_descriptor
from repro.bytecode.instructions import (
    CheckCast,
    InvokeInterface,
    InvokeStatic,
    InvokeVirtual,
    LoadClassConstant,
    New,
    PutField,
)

__all__ = ["BugSite", "BugKind", "BUG_KINDS", "sites_for", "selective"]


def selective(selectivity: int, scale: float, *parts: str) -> bool:
    """Deterministic, identity-based site filter (see module docstring).

    A site passes iff ``crc32(identity) % round(selectivity * scale) == 0``;
    ``scale <= 0`` (or an effective modulus of 1) disables filtering.
    """
    effective = int(round(selectivity * scale))
    if effective <= 1:
        return True
    key = "\x00".join(parts).encode("utf-8")
    return zlib.crc32(key) % effective == 0


@dataclass(frozen=True)
class BugSite:
    """One location a bug kind corrupts.

    ``method_key`` is (name, descriptor) within ``class_name``; None for
    class-level corruption.  ``detail`` carries the bug-specific payload
    (e.g. which class's construction is mangled).
    """

    bug_id: str
    class_name: str
    method_key: Optional[Tuple[str, str]]
    detail: str = ""


class BugKind:
    """Base: a named, monotone site detector."""

    bug_id: str = ""
    description: str = ""

    def sites(self, app: Application, scale: float = 1.0) -> List[BugSite]:
        raise NotImplementedError

    def _add(self, out: List[BugSite], site: BugSite) -> None:
        if site not in out:
            out.append(site)


class InterfaceDispatchBug(BugKind):
    bug_id = "iface-dispatch"
    description = (
        "interface calls immediately after a checked cast get a "
        "mangled method name"
    )

    #: How far an InvokeInterface may trail its CheckCast (argument
    #: pushes sit in between).
    WINDOW = 4

    def sites(self, app: Application, scale: float = 1.0) -> List[BugSite]:
        out: List[BugSite] = []
        for decl, method in _methods_with_code(app):
            instructions = method.code.instructions
            for i, first in enumerate(instructions):
                if not isinstance(first, CheckCast):
                    continue
                if first.known_from is None:
                    continue
                for j in range(i + 1, min(i + 1 + self.WINDOW, len(instructions))):
                    second = instructions[j]
                    if (
                        isinstance(second, InvokeInterface)
                        and second.owner == first.class_name
                    ):
                        # Keyed by (interface, implementer): the defect is
                        # about one dispatch pair, and its occurrences
                        # cluster in the implementer's module.
                        if selective(
                            14,
                            scale,
                            self.bug_id,
                            first.class_name,
                            first.known_from,
                        ):
                            self._add(
                                out,
                                BugSite(
                                    self.bug_id,
                                    decl.name,
                                    method.key,
                                    detail=(
                                        f"{first.class_name}|"
                                        f"{first.known_from}"
                                    ),
                                ),
                            )
                        break
        return out


class ConstructorCacheBug(BugKind):
    bug_id = "ctor-cache"
    description = (
        "a class constructed in >= 2 method bodies goes through a bogus "
        "factory call at (hash-selected) construction sites"
    )

    def sites(self, app: Application, scale: float = 1.0) -> List[BugSite]:
        constructed: Dict[str, List[Tuple[str, Tuple[str, str]]]] = {}
        for decl, method in _methods_with_code(app):
            seen_here = set()
            for instruction in method.code:
                if isinstance(instruction, New):
                    if instruction.class_name not in seen_here:
                        seen_here.add(instruction.class_name)
                        constructed.setdefault(
                            instruction.class_name, []
                        ).append((decl.name, method.key))
        out: List[BugSite] = []
        for target, locations in sorted(constructed.items()):
            if len(locations) < 2:
                continue
            if not selective(20, scale, self.bug_id, target):
                continue
            for class_name, method_key in locations:
                # Per-site filter keeps the per-target footprint small;
                # the >= 2 trigger above stays unfiltered (monotone).
                if not selective(
                    3, scale, self.bug_id, target, class_name, method_key[0]
                ):
                    continue
                self._add(
                    out,
                    BugSite(
                        self.bug_id, class_name, method_key, detail=target
                    ),
                )
        return out


class FieldAliasBug(BugKind):
    bug_id = "field-alias"
    description = (
        "writing a field of a class with >= 2 fields aliases the target "
        "to an undeclared variable"
    )

    def sites(self, app: Application, scale: float = 1.0) -> List[BugSite]:
        out: List[BugSite] = []
        for decl, method in _methods_with_code(app):
            for instruction in method.code:
                if not isinstance(instruction, PutField):
                    continue
                owner = app.class_file(instruction.owner)
                if owner is None or len(owner.fields) < 2:
                    continue
                # Keyed by the written field: its writes cluster in the
                # owning class's module.
                if selective(
                    14, scale, self.bug_id, instruction.owner, instruction.name
                ):
                    self._add(
                        out,
                        BugSite(
                            self.bug_id,
                            decl.name,
                            method.key,
                            detail=f"{instruction.owner}.{instruction.name}",
                        ),
                    )
        return out


class ParamDropBug(BugKind):
    bug_id = "param-drop"
    description = "calls to methods with >= 2 parameters lose an argument"

    def sites(self, app: Application, scale: float = 1.0) -> List[BugSite]:
        out: List[BugSite] = []
        for decl, method in _methods_with_code(app):
            for instruction in method.code:
                if not isinstance(
                    instruction,
                    (InvokeVirtual, InvokeStatic, InvokeInterface),
                ):
                    continue
                arity = len(
                    parse_method_descriptor(instruction.descriptor).parameters
                )
                if arity < 2:
                    continue
                if (
                    instruction.owner == decl.name
                    and instruction.name == method.name
                    and instruction.descriptor == method.descriptor
                ):
                    # Self-recursive tail calls (the reducer's trivial
                    # bodies) decompile correctly; skipping them keeps
                    # site sets monotone under reduction.
                    continue
                # Keyed by the callee: call sites cluster near the owner.
                if selective(
                    40,
                    scale,
                    self.bug_id,
                    instruction.owner,
                    instruction.name,
                ):
                    self._add(
                        out,
                        BugSite(
                            self.bug_id,
                            decl.name,
                            method.key,
                            detail=f"{instruction.owner}.{instruction.name}",
                        ),
                    )
        return out


class ReflectionBug(BugKind):
    bug_id = "reflection"
    description = "class literals are decompiled with a bogus accessor call"

    def sites(self, app: Application, scale: float = 1.0) -> List[BugSite]:
        out: List[BugSite] = []
        for decl, method in _methods_with_code(app):
            for instruction in method.code:
                if not isinstance(instruction, LoadClassConstant):
                    continue
                # Keyed by the reflected-on class.
                if selective(
                    8, scale, self.bug_id, instruction.class_name
                ):
                    self._add(
                        out,
                        BugSite(
                            self.bug_id,
                            decl.name,
                            method.key,
                            detail=instruction.class_name,
                        ),
                    )
        return out


class DuplicateInterfaceBug(BugKind):
    bug_id = "dup-interface"
    description = (
        "classes implementing >= 2 interfaces get the first one repeated"
    )

    def sites(self, app: Application, scale: float = 1.0) -> List[BugSite]:
        out: List[BugSite] = []
        for decl in app.classes:
            if decl.is_interface or len(decl.interfaces) < 2:
                continue
            if selective(12, scale, self.bug_id, decl.name):
                out.append(
                    BugSite(
                        self.bug_id,
                        decl.name,
                        None,
                        detail=min(decl.interfaces),
                    )
                )
        return out


BUG_KINDS: Dict[str, BugKind] = {
    kind.bug_id: kind
    for kind in (
        InterfaceDispatchBug(),
        ConstructorCacheBug(),
        FieldAliasBug(),
        ParamDropBug(),
        ReflectionBug(),
        DuplicateInterfaceBug(),
    )
}


def sites_for(
    app: Application, bug_ids: Tuple[str, ...], scale: float = 1.0
) -> List[BugSite]:
    """All sites of the given bug kinds in the application."""
    out: List[BugSite] = []
    for bug_id in bug_ids:
        out.extend(BUG_KINDS[bug_id].sites(app, scale))
    return out


def _methods_with_code(app: Application):
    for decl in app.classes:
        for method in decl.methods:
            if method.code is not None:
                yield decl, method

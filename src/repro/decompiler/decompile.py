"""Instruction-to-source decompilation (a symbolic stack machine).

Each decompiler walks every method's instruction stream with a symbolic
operand stack, reconstructing declarations, calls, field accesses, and
casts as Java source statements.  On a valid application with no bug
sites the output compiles cleanly under :mod:`repro.decompiler.javac`
(integration-tested); at bug sites (:mod:`repro.decompiler.bugs`) the
translation is deliberately wrong in that decompiler's characteristic
way.

The three shipped decompilers mirror the paper's three real ones:

========  ==============  =========================================
name      temp style      defects
========  ==============  =========================================
alpha     ``var0, var1``  iface-dispatch, ctor-cache
beta      ``tmp0, tmp1``  field-alias, param-drop
gamma     ``local0, ...`` reflection, dup-interface
========  ==============  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bytecode.classfile import (
    Application,
    ClassFile,
    INIT,
    JAVA_OBJECT,
    MethodDef,
)
from repro.bytecode.descriptors import (
    ArrayType,
    ObjectType,
    PrimitiveType,
    parse_field_descriptor,
    parse_method_descriptor,
)
from repro.bytecode.instructions import (
    CheckCast,
    ConstInt,
    ConstNull,
    Dup,
    GetField,
    GetStatic,
    Goto,
    IfEq,
    InstanceOf,
    Instruction,
    InvokeInterface,
    InvokeSpecial,
    InvokeStatic,
    InvokeVirtual,
    Load,
    LoadClassConstant,
    New,
    Pop,
    PutField,
    PutStatic,
    Return,
    Store,
)
from repro.decompiler.bugs import BugSite, sites_for
from repro.decompiler.source import (
    AssignFieldStmt,
    CallExpr,
    CastExpr,
    ClassLit,
    DeclStmt,
    ExprStmt,
    FieldExpr,
    IntLit,
    NewExpr,
    NullLit,
    ReturnStmt,
    SourceClass,
    SourceExpr,
    SourceField,
    SourceMethod,
    Statement,
    StaticCallExpr,
    SuperCallStmt,
    ThisCallStmt,
    VarRef,
)

__all__ = ["Decompiler", "DECOMPILERS", "get_decompiler"]


@dataclass(frozen=True)
class Decompiler:
    """One decompiler: a style plus its characteristic defects.

    ``bug_scale`` multiplies every defect's hash selectivity: 1.0 is the
    shipped rarity, 0 makes every pattern occurrence a site (tests).
    """

    name: str
    temp_prefix: str
    bug_ids: Tuple[str, ...]
    bug_scale: float = 1.0

    def decompile(self, app: Application) -> List[SourceClass]:
        """Decompile every class of the application."""
        sites = sites_for(app, self.bug_ids, self.bug_scale)
        by_method: Dict[Tuple[str, Optional[Tuple[str, str]]], List[BugSite]] = {}
        for site in sites:
            by_method.setdefault((site.class_name, site.method_key), []).append(
                site
            )
        out: List[SourceClass] = []
        for decl in app.classes:
            out.append(self._decompile_class(decl, by_method))
        return out

    # ------------------------------------------------------------------

    def _decompile_class(
        self,
        decl: ClassFile,
        by_method: Dict[Tuple[str, Optional[Tuple[str, str]]], List[BugSite]],
    ) -> SourceClass:
        interfaces = decl.interfaces
        for site in by_method.get((decl.name, None), ()):
            if site.bug_id == "dup-interface":
                interfaces = (site.detail,) + interfaces

        fields = tuple(
            SourceField(_source_type_text(f.descriptor), f.name)
            for f in decl.fields
        )
        methods: List[SourceMethod] = []
        for method in decl.methods:
            corruptions = by_method.get((decl.name, method.key), [])
            methods.append(
                self._decompile_method(decl, method, corruptions)
            )
        return SourceClass(
            name=decl.name,
            superclass=decl.superclass,
            interfaces=interfaces,
            is_interface=decl.is_interface,
            is_abstract=decl.is_abstract,
            fields=fields,
            methods=tuple(methods),
        )

    def _decompile_method(
        self,
        decl: ClassFile,
        method: MethodDef,
        corruptions: Sequence[BugSite],
    ) -> SourceMethod:
        descriptor = parse_method_descriptor(method.descriptor)
        params = tuple(
            (_jvm_to_source(t), f"p{i}")
            for i, t in enumerate(descriptor.parameters)
        )
        return_type = _jvm_to_source(descriptor.return_type)
        if method.code is None:
            return SourceMethod(
                name=method.name,
                return_type=return_type,
                params=params,
                statements=(),
                is_static=method.is_static,
                is_abstract=True,
            )
        builder = _BodyBuilder(
            decl, method, self.temp_prefix, corruptions
        )
        statements = builder.run()
        return SourceMethod(
            name=method.name,
            return_type=return_type,
            params=params,
            statements=tuple(statements),
            is_static=method.is_static,
        )


class _NewMarker:
    """Placeholder for an uninitialized ``new X`` on the symbolic stack."""

    __slots__ = ("class_name", "corrupt")

    def __init__(self, class_name: str, corrupt: bool):
        self.class_name = class_name
        self.corrupt = corrupt


class _BodyBuilder:
    """Symbolic execution of one method body."""

    def __init__(
        self,
        decl: ClassFile,
        method: MethodDef,
        temp_prefix: str,
        corruptions: Sequence[BugSite],
    ):
        self.decl = decl
        self.method = method
        self.temp_prefix = temp_prefix
        self.corruptions = list(corruptions)
        self.stack: List[object] = []
        self.statements: List[Statement] = []
        self.counter = 0
        # id(CastExpr) -> statically known operand type of the checkcast
        # that produced it (for the iface-dispatch defect's pair key).
        self._cast_origins: Dict[int, Optional[str]] = {}
        descriptor = parse_method_descriptor(method.descriptor)
        self.slots: Dict[int, str] = {}
        slot = 0
        if not method.is_static:
            self.slots[0] = "this"
            slot = 1
        for i, _param in enumerate(descriptor.parameters):
            self.slots[slot] = f"p{i}"
            slot += 1

    # -- helpers -----------------------------------------------------------

    def _corrupt(self, bug_id: str, detail: Optional[str] = None) -> bool:
        for site in self.corruptions:
            if site.bug_id != bug_id:
                continue
            if detail is None or site.detail == detail:
                return True
        return False

    def fresh(self) -> str:
        name = f"{self.temp_prefix}{self.counter}"
        self.counter += 1
        return name

    def push(self, value: object) -> None:
        self.stack.append(value)

    def pop_expr(self, fallback_type: Optional[str] = None) -> SourceExpr:
        if self.stack:
            top = self.stack.pop()
            if isinstance(top, _NewMarker):
                # An uninitialized object used directly (degenerate input):
                # render as a fresh allocation.
                return NewExpr(top.class_name)
            return top  # type: ignore[return-value]
        if fallback_type in ("int", None):
            return IntLit(0)
        return NullLit()

    def pop_args(self, descriptor_text: str) -> List[SourceExpr]:
        descriptor = parse_method_descriptor(descriptor_text)
        args: List[SourceExpr] = []
        for param in reversed(descriptor.parameters):
            kind = "int" if isinstance(param, PrimitiveType) else "ref"
            args.append(self.pop_expr(kind))
        args.reverse()
        return args

    def emit(self, statement: Statement) -> None:
        self.statements.append(statement)

    def emit_result(self, return_type, expr: SourceExpr) -> None:
        """Bind a call result to a temp (or emit a bare statement)."""
        if return_type == PrimitiveType.VOID:
            self.emit(ExprStmt(expr))
            return
        temp = self.fresh()
        self.emit(DeclStmt(_jvm_to_source(return_type), temp, expr))
        self.push(VarRef(temp))

    # -- main loop -----------------------------------------------------------

    def run(self) -> List[Statement]:
        assert self.method.code is not None
        instructions = self.method.code.instructions
        previous: Optional[Instruction] = None
        for instruction in instructions:
            self.step(instruction, previous)
            previous = instruction
        return self.statements

    def step(
        self, instruction: Instruction, previous: Optional[Instruction]
    ) -> None:
        if isinstance(instruction, ConstInt):
            self.push(IntLit(instruction.value))
        elif isinstance(instruction, ConstNull):
            self.push(NullLit())
        elif isinstance(instruction, Load):
            name = self.slots.get(instruction.slot, f"u{instruction.slot}")
            self.push(VarRef(name))
        elif isinstance(instruction, Store):
            value = self.pop_expr()
            self.emit(DeclStmt("int", f"u{instruction.slot}", value))
            self.slots[instruction.slot] = f"u{instruction.slot}"
        elif isinstance(instruction, Dup):
            if self.stack:
                self.push(self.stack[-1])
        elif isinstance(instruction, Pop):
            if self.stack:
                self.stack.pop()
        elif isinstance(instruction, New):
            corrupt = self._corrupt("ctor-cache", instruction.class_name)
            self.push(_NewMarker(instruction.class_name, corrupt))
        elif isinstance(instruction, InvokeSpecial):
            self.invoke_special(instruction)
        elif isinstance(
            instruction, (InvokeVirtual, InvokeInterface)
        ):
            self.invoke_instance(instruction, previous)
        elif isinstance(instruction, InvokeStatic):
            self.invoke_static(instruction)
        elif isinstance(instruction, GetField):
            receiver = self.pop_expr("ref")
            temp = self.fresh()
            self.emit(
                DeclStmt(
                    _source_type_text(instruction.descriptor),
                    temp,
                    FieldExpr(receiver, instruction.name),
                )
            )
            self.push(VarRef(temp))
        elif isinstance(instruction, PutField):
            value = self.pop_expr()
            receiver = self.pop_expr("ref")
            if self._corrupt(
                "field-alias", f"{instruction.owner}.{instruction.name}"
            ):
                receiver = VarRef(f"alias${instruction.name}")
            self.emit(AssignFieldStmt(receiver, instruction.name, value))
        elif isinstance(instruction, (GetStatic, PutStatic)):
            self.static_field(instruction)
        elif isinstance(instruction, CheckCast):
            operand = self.pop_expr("ref")
            cast = CastExpr(instruction.class_name, operand)
            self._cast_origins[id(cast)] = instruction.known_from
            self.push(cast)
        elif isinstance(instruction, InstanceOf):
            operand = self.pop_expr("ref")
            temp = self.fresh()
            self.emit(
                DeclStmt(
                    "int",
                    temp,
                    CallExpr(
                        CastExpr(instruction.class_name, operand),
                        "hashCode",
                    ),
                )
            )
            self.push(VarRef(temp))
        elif isinstance(instruction, LoadClassConstant):
            self.class_constant(instruction)
        elif isinstance(instruction, Return):
            self.return_(instruction)
        elif isinstance(instruction, (Goto, IfEq)):
            if isinstance(instruction, IfEq) and self.stack:
                self.stack.pop()
        else:
            raise ValueError(f"cannot decompile {instruction!r}")

    # -- invocation forms -------------------------------------------------------

    def invoke_special(self, instruction: InvokeSpecial) -> None:
        args = self.pop_args(instruction.descriptor)
        if instruction.name == INIT:
            top = self.stack[-1] if self.stack else None
            if isinstance(top, _NewMarker) and top.class_name == instruction.owner:
                marker = self.stack.pop()
                temp = self.fresh()
                if top.corrupt:
                    initializer: SourceExpr = StaticCallExpr(
                        instruction.owner, "instance$cache", tuple(args)
                    )
                else:
                    initializer = NewExpr(instruction.owner, tuple(args))
                self.emit(
                    DeclStmt(instruction.owner, temp, initializer)
                )
                while self.stack and self.stack[-1] is marker:
                    self.stack.pop()
                    self.push(VarRef(temp))
                # The constructed value is usually consumed via the Dup'd
                # reference; keep one reference when none survived.
                if not (self.stack and self.stack[-1] == VarRef(temp)):
                    self.push(VarRef(temp))
                return
            if instruction.is_super_call:
                self.emit(SuperCallStmt(tuple(args)))
                return
            if instruction.owner == self.decl.name:
                self.emit(ThisCallStmt(tuple(args)))
                return
            self.emit(SuperCallStmt(tuple(args)))
            return
        # Private/super method call: treat as an instance call.
        receiver = self.pop_expr("ref")
        descriptor = parse_method_descriptor(instruction.descriptor)
        self.emit_result(
            descriptor.return_type,
            CallExpr(receiver, instruction.name, tuple(args)),
        )

    def invoke_instance(
        self, instruction, previous: Optional[Instruction]
    ) -> None:
        args = self.pop_args(instruction.descriptor)
        receiver = self.pop_expr("ref")
        if not isinstance(
            receiver, (VarRef, CastExpr, NewExpr, FieldExpr, CallExpr)
        ):
            receiver = CastExpr(instruction.owner, NullLit())
        name = instruction.name
        if isinstance(instruction, InvokeInterface) and isinstance(
            receiver, CastExpr
        ):
            origin = self._cast_origins.get(id(receiver))
            if (
                receiver.type_name == instruction.owner
                and origin is not None
                and self._corrupt(
                    "iface-dispatch", f"{instruction.owner}|{origin}"
                )
            ):
                name = f"{instruction.name}$iface"
        if self._corrupt(
            "param-drop", f"{instruction.owner}.{instruction.name}"
        ) and len(args) >= 2:
            args = args[:-1]
        descriptor = parse_method_descriptor(instruction.descriptor)
        self.emit_result(
            descriptor.return_type,
            CallExpr(receiver, name, tuple(args)),
        )

    def invoke_static(self, instruction: InvokeStatic) -> None:
        args = self.pop_args(instruction.descriptor)
        if self._corrupt(
            "param-drop", f"{instruction.owner}.{instruction.name}"
        ) and len(args) >= 2:
            args = args[:-1]
        descriptor = parse_method_descriptor(instruction.descriptor)
        self.emit_result(
            descriptor.return_type,
            StaticCallExpr(instruction.owner, instruction.name, tuple(args)),
        )

    def static_field(self, instruction) -> None:
        if isinstance(instruction, GetStatic):
            temp = self.fresh()
            self.emit(
                DeclStmt(
                    _source_type_text(instruction.descriptor),
                    temp,
                    FieldExpr(VarRef(_simple(instruction.owner)), instruction.name),
                )
            )
            self.push(VarRef(temp))
        else:
            value = self.pop_expr()
            self.emit(
                AssignFieldStmt(
                    VarRef(_simple(instruction.owner)),
                    instruction.name,
                    value,
                )
            )

    def class_constant(self, instruction: LoadClassConstant) -> None:
        temp = self.fresh()
        if self._corrupt("reflection", instruction.class_name):
            initializer: SourceExpr = CallExpr(
                ClassLit(instruction.class_name), "componentType$"
            )
        else:
            initializer = ClassLit(instruction.class_name)
        self.emit(DeclStmt("Class", temp, initializer))
        self.push(VarRef(temp))

    def return_(self, instruction: Return) -> None:
        if instruction.kind == "void":
            self.emit(ReturnStmt())
        elif instruction.kind == "int":
            self.emit(ReturnStmt(self.pop_expr("int")))
        else:
            self.emit(ReturnStmt(self.pop_expr("ref")))


# ---------------------------------------------------------------------------
# Type helpers
# ---------------------------------------------------------------------------


def _jvm_to_source(jvm_type) -> str:
    if isinstance(jvm_type, PrimitiveType):
        return "void" if jvm_type == PrimitiveType.VOID else "int"
    if isinstance(jvm_type, ObjectType):
        return jvm_type.class_name
    if isinstance(jvm_type, ArrayType):
        return _jvm_to_source(jvm_type.element)
    raise TypeError(f"unknown JVM type {jvm_type!r}")


def _source_type_text(descriptor: str) -> str:
    return _jvm_to_source(parse_field_descriptor(descriptor))


def _simple(name: str) -> str:
    return name.rsplit("/", 1)[-1]


DECOMPILERS: Dict[str, Decompiler] = {
    "alpha": Decompiler("alpha", "var", ("iface-dispatch", "ctor-cache")),
    "beta": Decompiler("beta", "tmp", ("field-alias", "param-drop")),
    "gamma": Decompiler("gamma", "local", ("reflection", "dup-interface")),
}


def get_decompiler(name: str) -> Decompiler:
    """Look up a decompiler by name."""
    try:
        return DECOMPILERS[name]
    except KeyError:
        known = ", ".join(sorted(DECOMPILERS))
        raise ValueError(f"unknown decompiler {name!r}; known: {known}") from None

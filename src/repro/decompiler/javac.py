"""A mini-javac: scope- and type-checks decompiled source.

The oracle's observable is "does the decompiled output compile, and with
which error messages" — so this module is a real (small) Java front end
over the source model: class-table construction, hierarchy-aware method
and field resolution, local-variable scoping, arity checking, and
assignability at declarations, field writes, arguments, and returns.

Messages are deterministic and carry the file context but no line
numbers (``C03.java: error: cannot find symbol: method im0_1$iface in
I01``), so they are stable under reduction of *other* classes — which is
what lets the oracle's "preserve the full error message" predicate be
monotone.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.decompiler.source import (
    AssignFieldStmt,
    CallExpr,
    CastExpr,
    ClassLit,
    DeclStmt,
    ExprStmt,
    FieldExpr,
    IntLit,
    NewExpr,
    NullLit,
    ReturnStmt,
    SourceClass,
    SourceExpr,
    SourceMethod,
    Statement,
    StaticCallExpr,
    SuperCallStmt,
    ThisCallStmt,
    VarRef,
    simple_name,
)

__all__ = ["check_sources", "JavacError"]

JAVA_OBJECT = "java/lang/Object"
JAVA_STRING = "java/lang/String"

#: Methods every reference type inherits from Object.
_OBJECT_METHODS: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "hashCode": ((), "int"),
    "toString": ((), JAVA_STRING),
}

_ERROR = "<error>"
_NULL = "<null>"
_PRIMITIVES = frozenset({"int", "void", "Class", _ERROR, _NULL})


class JavacError(ValueError):
    """Raised only for malformed source models (not for type errors)."""


def check_sources(sources: Sequence[SourceClass]) -> FrozenSet[str]:
    """Check all classes; returns the set of error messages (empty = ok)."""
    checker = _Checker(sources)
    return checker.run()


class _Checker:
    def __init__(self, sources: Sequence[SourceClass]):
        self.table: Dict[str, SourceClass] = {s.name: s for s in sources}
        self.errors: Set[str] = set()

    def run(self) -> FrozenSet[str]:
        for decl in self.table.values():
            self.check_class(decl)
        return frozenset(self.errors)

    # ------------------------------------------------------------------

    def error(self, decl: SourceClass, message: str) -> None:
        self.errors.add(f"{simple_name(decl.name)}.java: error: {message}")

    def type_exists(self, name: str) -> bool:
        return (
            name in self.table
            or name in (JAVA_OBJECT, JAVA_STRING)
            or name in _PRIMITIVES
        )

    def check_type(self, decl: SourceClass, name: str) -> None:
        if not self.type_exists(name):
            self.error(decl, f"cannot find symbol: class {simple_name(name)}")

    # ------------------------------------------------------------------
    # Hierarchy over source
    # ------------------------------------------------------------------

    def superclass_chain(self, name: str) -> List[str]:
        chain = []
        seen = set()
        current: Optional[str] = name
        while current and current not in seen:
            seen.add(current)
            chain.append(current)
            if current == JAVA_OBJECT:
                break
            source = self.table.get(current)
            current = source.superclass if source else JAVA_OBJECT
        if JAVA_OBJECT not in chain:
            chain.append(JAVA_OBJECT)
        return chain

    def all_supertypes(self, name: str) -> Set[str]:
        out: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            source = self.table.get(current)
            if source is None:
                out.add(JAVA_OBJECT)
                continue
            stack.append(source.superclass)
            stack.extend(source.interfaces)
        out.add(JAVA_OBJECT)
        return out

    def assignable(self, source_type: str, target: str) -> bool:
        if _ERROR in (source_type, target):
            return True
        if source_type == target:
            return True
        if source_type == _NULL:
            return target not in ("int", "void")
        if target == "int" or source_type == "int":
            return False
        if target == JAVA_OBJECT:
            return True
        return target in self.all_supertypes(source_type)

    def resolve_method(
        self, type_name: str, method: str
    ) -> Optional[Tuple[Tuple[str, ...], str]]:
        """(param types, return type) or None; searches the hierarchy."""
        if type_name in (_ERROR, _NULL):
            return ((), _ERROR)
        seen: Set[str] = set()
        stack = [type_name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            source = self.table.get(current)
            if source is None:
                continue
            for candidate in source.methods:
                if candidate.name == method:
                    return (
                        tuple(t for (t, _n) in candidate.params),
                        candidate.return_type,
                    )
            stack.append(source.superclass)
            stack.extend(source.interfaces)
        if method in _OBJECT_METHODS:
            return _OBJECT_METHODS[method]
        return None

    def resolve_field(self, type_name: str, field: str) -> Optional[str]:
        for current in self.superclass_chain(type_name):
            source = self.table.get(current)
            if source is None:
                continue
            for fdecl in source.fields:
                if fdecl.name == field:
                    return fdecl.type_name
        return None

    def constructor_arities(self, type_name: str) -> Set[int]:
        source = self.table.get(type_name)
        if source is None:
            return {0}  # builtins: default constructor
        arities = {
            len(m.params) for m in source.methods if m.is_constructor
        }
        return arities or {0}  # Java's implicit default constructor

    # ------------------------------------------------------------------
    # Class-level checks
    # ------------------------------------------------------------------

    def check_class(self, decl: SourceClass) -> None:
        self.check_type(decl, decl.superclass)
        superclass = self.table.get(decl.superclass)
        if superclass is not None and superclass.is_interface:
            self.error(
                decl,
                f"cannot inherit from interface "
                f"{simple_name(decl.superclass)}",
            )
        seen_ifaces: Set[str] = set()
        for iface in decl.interfaces:
            self.check_type(decl, iface)
            iface_decl = self.table.get(iface)
            if iface_decl is not None and not iface_decl.is_interface:
                self.error(
                    decl, f"interface expected: {simple_name(iface)}"
                )
            if iface in seen_ifaces:
                self.error(decl, f"repeated interface {simple_name(iface)}")
            seen_ifaces.add(iface)
        for fdecl in decl.fields:
            self.check_type(decl, fdecl.type_name)
        for method in decl.methods:
            self.check_method(decl, method)

    # ------------------------------------------------------------------
    # Method bodies
    # ------------------------------------------------------------------

    def check_method(self, decl: SourceClass, method: SourceMethod) -> None:
        self.check_type(decl, method.return_type)
        scope: Dict[str, str] = {}
        for (type_name, name) in method.params:
            self.check_type(decl, type_name)
            scope[name] = type_name
        if not method.is_static:
            scope["this"] = decl.name
        if method.is_abstract:
            return
        for statement in method.statements:
            self.check_statement(decl, method, scope, statement)

    def check_statement(
        self,
        decl: SourceClass,
        method: SourceMethod,
        scope: Dict[str, str],
        statement: Statement,
    ) -> None:
        if isinstance(statement, DeclStmt):
            self.check_type(decl, statement.type_name)
            value_type = self.type_of(decl, scope, statement.expr)
            if not self.assignable(value_type, statement.type_name):
                self.incompatible(decl, value_type, statement.type_name)
            scope[statement.var] = statement.type_name
        elif isinstance(statement, ExprStmt):
            self.type_of(decl, scope, statement.expr)
        elif isinstance(statement, AssignFieldStmt):
            receiver_type = self.type_of(decl, scope, statement.receiver)
            field_type = self.resolve_field(receiver_type, statement.field)
            if receiver_type != _ERROR and field_type is None:
                self.error(
                    decl,
                    f"cannot find symbol: variable {statement.field}",
                )
                field_type = _ERROR
            value_type = self.type_of(decl, scope, statement.expr)
            if field_type is not None and not self.assignable(
                value_type, field_type
            ):
                self.incompatible(decl, value_type, field_type)
        elif isinstance(statement, ReturnStmt):
            if statement.expr is None:
                if method.return_type != "void" and not method.is_constructor:
                    self.error(decl, "missing return value")
                return
            value_type = self.type_of(decl, scope, statement.expr)
            if method.return_type == "void":
                self.error(decl, "incompatible types: unexpected return value")
            elif not self.assignable(value_type, method.return_type):
                self.incompatible(decl, value_type, method.return_type)
        elif isinstance(statement, SuperCallStmt):
            arities = self.constructor_arities(decl.superclass)
            if len(statement.args) not in arities:
                self.error(
                    decl,
                    f"constructor {simple_name(decl.superclass)} cannot be "
                    "applied to given arguments",
                )
            for arg in statement.args:
                self.type_of(decl, scope, arg)
        elif isinstance(statement, ThisCallStmt):
            arities = self.constructor_arities(decl.name)
            if len(statement.args) not in arities:
                self.error(
                    decl,
                    f"constructor {simple_name(decl.name)} cannot be "
                    "applied to given arguments",
                )
            for arg in statement.args:
                self.type_of(decl, scope, arg)
        else:
            raise JavacError(f"unknown statement {statement!r}")

    def incompatible(
        self, decl: SourceClass, source_type: str, target: str
    ) -> None:
        pretty_source = (
            "null" if source_type == _NULL else simple_name(source_type)
        )
        self.error(
            decl,
            f"incompatible types: {pretty_source} cannot be converted "
            f"to {simple_name(target)}",
        )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def type_of(
        self,
        decl: SourceClass,
        scope: Dict[str, str],
        expr: SourceExpr,
    ) -> str:
        if isinstance(expr, IntLit):
            return "int"
        if isinstance(expr, NullLit):
            return _NULL
        if isinstance(expr, VarRef):
            if expr.name in scope:
                return scope[expr.name]
            self.error(
                decl, f"cannot find symbol: variable {expr.name}"
            )
            return _ERROR
        if isinstance(expr, NewExpr):
            self.check_type(decl, expr.type_name)
            target = self.table.get(expr.type_name)
            if target is not None:
                if target.is_interface:
                    self.error(
                        decl,
                        f"{simple_name(expr.type_name)} is abstract; "
                        "cannot be instantiated",
                    )
                elif target.is_abstract:
                    self.error(
                        decl,
                        f"{simple_name(expr.type_name)} is abstract; "
                        "cannot be instantiated",
                    )
            arities = self.constructor_arities(expr.type_name)
            if len(expr.args) not in arities:
                self.error(
                    decl,
                    f"constructor {simple_name(expr.type_name)} cannot be "
                    "applied to given arguments",
                )
            for arg in expr.args:
                self.type_of(decl, scope, arg)
            return expr.type_name
        if isinstance(expr, CallExpr):
            receiver_type = self.type_of(decl, scope, expr.receiver)
            return self.check_call(
                decl, scope, receiver_type, expr.method, expr.args
            )
        if isinstance(expr, StaticCallExpr):
            self.check_type(decl, expr.owner)
            if not self.type_exists(expr.owner):
                for arg in expr.args:
                    self.type_of(decl, scope, arg)
                return _ERROR
            return self.check_call(
                decl, scope, expr.owner, expr.method, expr.args
            )
        if isinstance(expr, FieldExpr):
            receiver_type = self.type_of(decl, scope, expr.receiver)
            if receiver_type == _ERROR:
                return _ERROR
            field_type = self.resolve_field(receiver_type, expr.field)
            if field_type is None:
                self.error(
                    decl, f"cannot find symbol: variable {expr.field}"
                )
                return _ERROR
            return field_type
        if isinstance(expr, CastExpr):
            self.check_type(decl, expr.type_name)
            self.type_of(decl, scope, expr.expr)
            return expr.type_name if self.type_exists(expr.type_name) else _ERROR
        if isinstance(expr, ClassLit):
            self.check_type(decl, expr.type_name)
            return "Class"
        raise JavacError(f"unknown expression {expr!r}")

    def check_call(
        self,
        decl: SourceClass,
        scope: Dict[str, str],
        receiver_type: str,
        method: str,
        args,
    ) -> str:
        arg_types = [self.type_of(decl, scope, arg) for arg in args]
        if receiver_type in ("int", "void", "Class"):
            if receiver_type == "Class":
                self.error(
                    decl,
                    f"cannot find symbol: method {method} in Class",
                )
            else:
                self.error(decl, f"{receiver_type} cannot be dereferenced")
            return _ERROR
        resolved = self.resolve_method(receiver_type, method)
        if resolved is None:
            self.error(
                decl,
                f"cannot find symbol: method {method} in "
                f"{simple_name(receiver_type)}",
            )
            return _ERROR
        param_types, return_type = resolved
        if return_type == _ERROR:
            return _ERROR
        if len(param_types) != len(arg_types):
            self.error(
                decl,
                f"method {method} in {simple_name(receiver_type)} cannot "
                "be applied to given arguments",
            )
            return return_type
        for value, target in zip(arg_types, param_types):
            if not self.assignable(value, target):
                self.incompatible(decl, value, target)
        return return_type

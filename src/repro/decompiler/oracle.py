"""The black-box predicate: decompile, compile-check, compare messages.

``DecompilerOracle`` packages the paper's evaluation loop for one
(application, decompiler) pair:

1. decompile the (sub-)application,
2. run the mini-javac over the output,
3. the predicate holds iff the error-message set equals the original's
   ("the goal of the evaluation is to reduce the input program while
   preserving the full error message of the compiler").

Because every bug site's presence is monotone in the kept items (see
:mod:`repro.decompiler.bugs`) and messages of *valid* sub-inputs are
always a subset of the original's, the predicate is monotone on valid
sub-inputs, matching Definition 4.1.

:func:`build_reduction_problem` assembles the full Input Reduction
Problem instance — items, constraint CNF (with the entry point required
by unit clauses, like the paper's hand-added ``[M.main()!code]``), and
the instrumented predicate.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set, Tuple

from repro.bytecode.classfile import Application
from repro.bytecode.constraints import generate_constraints
from repro.bytecode.items import (
    ClassItem,
    CodeItem,
    Item,
    MethodItem,
    items_of,
)
from repro.bytecode.reducer import MaterializationMemo
from repro.decompiler.decompile import Decompiler, get_decompiler
from repro.decompiler.javac import check_sources
from repro.logic.cnf import Clause
from repro.reduction.problem import ReductionProblem

__all__ = ["DecompilerOracle", "build_reduction_problem", "entry_items"]


def entry_items(app: Application) -> Tuple[Item, ...]:
    """The items the tool always needs: the entry point and its body."""
    return (
        ClassItem(app.entry_class),
        MethodItem(app.entry_class, app.entry_method, app.entry_descriptor),
        CodeItem(app.entry_class, app.entry_method, app.entry_descriptor),
    )


class DecompilerOracle:
    """Decompile + compile-check for one (application, decompiler) pair."""

    def __init__(self, app: Application, decompiler) -> None:
        if isinstance(decompiler, str):
            decompiler = get_decompiler(decompiler)
        self.app = app
        self.decompiler: Decompiler = decompiler
        # Probe fast path: per-class materialization memo shared by
        # every probe of this oracle (reducer.memo_* telemetry).  Kept
        # per-oracle, not module-global, so each reduction run (which
        # builds a fresh oracle) starts cold and its memo telemetry is
        # deterministic regardless of what ran before.
        self._materializer = MaterializationMemo(app)
        self.original_errors = self.errors_of(app)

    def errors_of(self, app: Application) -> FrozenSet[str]:
        """The compiler error messages the decompiled output produces."""
        sources = self.decompiler.decompile(app)
        return check_sources(sources)

    @property
    def is_buggy(self) -> bool:
        """Does this decompiler mistranslate this application at all?"""
        return bool(self.original_errors)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def item_predicate(self, kept_items: FrozenSet[Item]) -> bool:
        """P over item sets: reduce, decompile, compare messages."""
        reduced = self._materializer.reduce(kept_items)
        return self.errors_of(reduced) == self.original_errors

    def class_predicate(self, kept_classes: FrozenSet[str]) -> bool:
        """P over *class* sets (J-Reduce granularity): whole classes."""
        reduced = self.app.replace_classes(
            tuple(c for c in self.app.classes if c.name in kept_classes)
        )
        return self.errors_of(reduced) == self.original_errors


def build_reduction_problem(
    app: Application,
    decompiler,
    require_entry: bool = True,
) -> ReductionProblem:
    """The Input Reduction Problem for one (application, decompiler) pair.

    The returned problem's constraint includes unit clauses for the entry
    point when ``require_entry`` is set — the analogue of the paper's
    hand-added ``[M.main()!code]`` requirement.

    Raises ValueError when the decompiler is not buggy on this input
    (nothing to reduce; the paper's benchmarks keep only buggy pairs).
    """
    oracle = DecompilerOracle(app, decompiler)
    if not oracle.is_buggy:
        raise ValueError(
            f"decompiler {oracle.decompiler.name!r} translates this "
            "application cleanly; no failure to preserve"
        )
    constraint = generate_constraints(app)
    if require_entry:
        for item in entry_items(app):
            constraint.add_clause(Clause.unit(item))
    return ReductionProblem(
        variables=items_of(app),
        predicate=oracle.item_predicate,
        constraint=constraint,
        description=(
            f"{oracle.decompiler.name} on {app.entry_class} "
            f"({len(oracle.original_errors)} errors)"
        ),
    )

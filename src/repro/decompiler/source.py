"""The Java source model the decompilers emit and the checker consumes.

Types are represented as plain strings (JVM internal names for classes,
``"int"`` for int, ``"Class"`` for class literals).  The model is small
but renders to readable Java, and — crucially — the checker works on the
model, not the text, so "does the decompiled output compile" is a real
semantic question rather than a string match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

__all__ = [
    "SourceExpr",
    "VarRef",
    "IntLit",
    "NullLit",
    "NewExpr",
    "CallExpr",
    "StaticCallExpr",
    "FieldExpr",
    "CastExpr",
    "ClassLit",
    "Statement",
    "DeclStmt",
    "ExprStmt",
    "AssignFieldStmt",
    "ReturnStmt",
    "SuperCallStmt",
    "ThisCallStmt",
    "SourceMethod",
    "SourceField",
    "SourceClass",
    "render_source",
    "simple_name",
]


def simple_name(internal: str) -> str:
    """``app/C03`` -> ``C03`` (for rendering and messages)."""
    return internal.rsplit("/", 1)[-1]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VarRef:
    name: str

    def render(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntLit:
    value: int

    def render(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class NullLit:
    def render(self) -> str:
        return "null"


@dataclass(frozen=True)
class NewExpr:
    type_name: str
    args: Tuple["SourceExpr", ...] = ()

    def render(self) -> str:
        args = ", ".join(a.render() for a in self.args)
        return f"new {simple_name(self.type_name)}({args})"


@dataclass(frozen=True)
class CallExpr:
    receiver: "SourceExpr"
    method: str
    args: Tuple["SourceExpr", ...] = ()

    def render(self) -> str:
        args = ", ".join(a.render() for a in self.args)
        return f"{self.receiver.render()}.{self.method}({args})"


@dataclass(frozen=True)
class StaticCallExpr:
    owner: str
    method: str
    args: Tuple["SourceExpr", ...] = ()

    def render(self) -> str:
        args = ", ".join(a.render() for a in self.args)
        return f"{simple_name(self.owner)}.{self.method}({args})"


@dataclass(frozen=True)
class FieldExpr:
    receiver: "SourceExpr"
    field: str

    def render(self) -> str:
        return f"{self.receiver.render()}.{self.field}"


@dataclass(frozen=True)
class CastExpr:
    type_name: str
    expr: "SourceExpr"

    def render(self) -> str:
        return f"(({simple_name(self.type_name)}) {self.expr.render()})"


@dataclass(frozen=True)
class ClassLit:
    type_name: str

    def render(self) -> str:
        return f"{simple_name(self.type_name)}.class"


SourceExpr = Union[
    VarRef,
    IntLit,
    NullLit,
    NewExpr,
    CallExpr,
    StaticCallExpr,
    FieldExpr,
    CastExpr,
    ClassLit,
]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeclStmt:
    """``T v = expr;``"""

    type_name: str
    var: str
    expr: SourceExpr

    def render(self) -> str:
        return f"{_render_type(self.type_name)} {self.var} = {self.expr.render()};"


@dataclass(frozen=True)
class ExprStmt:
    expr: SourceExpr

    def render(self) -> str:
        return f"{self.expr.render()};"


@dataclass(frozen=True)
class AssignFieldStmt:
    """``recv.f = expr;``"""

    receiver: SourceExpr
    field: str
    expr: SourceExpr

    def render(self) -> str:
        return f"{self.receiver.render()}.{self.field} = {self.expr.render()};"


@dataclass(frozen=True)
class ReturnStmt:
    expr: Optional[SourceExpr] = None

    def render(self) -> str:
        if self.expr is None:
            return "return;"
        return f"return {self.expr.render()};"


@dataclass(frozen=True)
class SuperCallStmt:
    """``super(args);`` — only in constructors."""

    args: Tuple[SourceExpr, ...] = ()

    def render(self) -> str:
        args = ", ".join(a.render() for a in self.args)
        return f"super({args});"


@dataclass(frozen=True)
class ThisCallStmt:
    """``this(args);`` — only in constructors."""

    args: Tuple[SourceExpr, ...] = ()

    def render(self) -> str:
        args = ", ".join(a.render() for a in self.args)
        return f"this({args});"


Statement = Union[
    DeclStmt,
    ExprStmt,
    AssignFieldStmt,
    ReturnStmt,
    SuperCallStmt,
    ThisCallStmt,
]


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SourceField:
    type_name: str
    name: str


@dataclass(frozen=True)
class SourceMethod:
    name: str  # "<init>" for constructors
    return_type: str  # "void", "int", internal class name, ...
    params: Tuple[Tuple[str, str], ...]  # (type, name)
    statements: Tuple[Statement, ...]
    is_static: bool = False
    is_abstract: bool = False

    @property
    def is_constructor(self) -> bool:
        return self.name == "<init>"


@dataclass(frozen=True)
class SourceClass:
    name: str  # internal name, e.g. app/C03
    superclass: str
    interfaces: Tuple[str, ...]
    is_interface: bool
    is_abstract: bool
    fields: Tuple[SourceField, ...]
    methods: Tuple[SourceMethod, ...]


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

_INDENT = "    "


def _render_type(type_name: str) -> str:
    if type_name in ("int", "void", "Class"):
        return type_name
    return simple_name(type_name)


def render_source(decl: SourceClass) -> str:
    """Render one class to Java text."""
    kind = "interface" if decl.is_interface else "class"
    header = ""
    if decl.is_abstract and not decl.is_interface:
        header += "abstract "
    header += f"{kind} {simple_name(decl.name)}"
    if decl.superclass not in ("java/lang/Object", ""):
        header += f" extends {simple_name(decl.superclass)}"
    if decl.interfaces:
        joiner = "extends" if decl.is_interface else "implements"
        names = ", ".join(simple_name(i) for i in decl.interfaces)
        header += f" {joiner} {names}"
    lines: List[str] = [header + " {"]
    for fdecl in decl.fields:
        lines.append(f"{_INDENT}{_render_type(fdecl.type_name)} {fdecl.name};")
    for method in decl.methods:
        lines.extend(_render_method(decl, method))
    lines.append("}")
    return "\n".join(lines) + "\n"


def _render_method(decl: SourceClass, method: SourceMethod) -> List[str]:
    params = ", ".join(
        f"{_render_type(t)} {n}" for (t, n) in method.params
    )
    modifiers = ""
    if method.is_static:
        modifiers += "static "
    if method.is_abstract:
        modifiers += "abstract "
    if method.is_constructor:
        signature = f"{modifiers}{simple_name(decl.name)}({params})"
    else:
        signature = (
            f"{modifiers}{_render_type(method.return_type)} "
            f"{method.name}({params})"
        )
    if method.is_abstract or decl.is_interface:
        return [f"{_INDENT}{signature};"]
    lines = [f"{_INDENT}{signature} {{"]
    for statement in method.statements:
        lines.append(f"{_INDENT * 2}{statement.render()}")
    lines.append(f"{_INDENT}}}")
    return lines

"""Featherweight Java with Interfaces (FJI) — Section 3 of the paper.

FJI is Featherweight Java extended so that each class implements a single
interface.  This package implements the whole formal development:

- the syntax (:mod:`repro.fji.ast`, Figure 4) with a textual concrete
  syntax (:mod:`repro.fji.lexer` / :mod:`repro.fji.parser`) and a
  pretty-printer (:mod:`repro.fji.pretty`),
- the Boolean-variable universe ``V(P)`` (:mod:`repro.fji.variables`),
- the type checker that *simultaneously* type-checks and generates the
  dependency constraints (:mod:`repro.fji.typecheck`, Figures 6 & 7),
- the reducer ``reduce(P, phi)`` (:mod:`repro.fji.reducer`, Figure 5),
- the paper's running example (:mod:`repro.fji.examples`, Figures 1 & 2).

The headline property (Theorem 3.1): if ``P`` type checks with constraint
``sigma`` and ``phi |= sigma``, then ``reduce(P, phi)`` type checks.  The
test suite checks this with hypothesis over randomly generated programs.
"""

from repro.fji.ast import (
    Cast,
    ClassDecl,
    Constructor,
    FieldAccess,
    FieldDecl,
    InterfaceDecl,
    Method,
    MethodCall,
    New,
    Param,
    Program,
    Signature,
    VarExpr,
    EMPTY_INTERFACE,
    OBJECT,
    STRING,
)
from repro.fji.variables import (
    ClassVar,
    CodeVar,
    ImplementsVar,
    InterfaceVar,
    ItemVar,
    MethodVar,
    SignatureVar,
    variables_of,
)
from repro.fji.typecheck import TypeError_, check_program
from repro.fji.reducer import reduce_program
from repro.fji.parser import parse_program, ParseError
from repro.fji.pretty import pretty_program

__all__ = [
    "Program",
    "ClassDecl",
    "InterfaceDecl",
    "Constructor",
    "Method",
    "Signature",
    "FieldDecl",
    "Param",
    "VarExpr",
    "FieldAccess",
    "MethodCall",
    "New",
    "Cast",
    "OBJECT",
    "STRING",
    "EMPTY_INTERFACE",
    "ItemVar",
    "ClassVar",
    "InterfaceVar",
    "ImplementsVar",
    "MethodVar",
    "SignatureVar",
    "CodeVar",
    "variables_of",
    "check_program",
    "TypeError_",
    "reduce_program",
    "parse_program",
    "ParseError",
    "pretty_program",
]

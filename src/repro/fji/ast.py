"""The abstract syntax of FJI (Figure 4 of the paper).

::

    P ::= (R..., e)                              programs
    R ::= L | Q                                  type declarations
    T, U ::= C | I                               type names
    L ::= class C extends D implements I { T f; K M }
    Q ::= interface I { S }
    K ::= C(T f) { super(f); this.f = f; }       constructors
    M ::= T m(T x) { return e; }                 methods
    S ::= T m(T x);                              signatures
    e ::= x | e.f | e.m(e) | new C(e) | (T) e    expressions

Type names are plain strings.  Three names are built in and never
reducible: ``Object`` (the root class), ``String`` (an empty leaf class —
handy for writing method bodies that generate no constraints), and
``EmptyInterface`` (the interface every class implicitly implements when
its declared interface is removed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

__all__ = [
    "OBJECT",
    "STRING",
    "EMPTY_INTERFACE",
    "BUILTIN_TYPES",
    "Expr",
    "VarExpr",
    "FieldAccess",
    "MethodCall",
    "New",
    "Cast",
    "Param",
    "FieldDecl",
    "Constructor",
    "Method",
    "Signature",
    "ClassDecl",
    "InterfaceDecl",
    "TypeDecl",
    "Program",
]

OBJECT = "Object"
STRING = "String"
EMPTY_INTERFACE = "EmptyInterface"
BUILTIN_TYPES = frozenset({OBJECT, STRING, EMPTY_INTERFACE})


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VarExpr:
    """A variable reference ``x`` (including ``this``)."""

    name: str


@dataclass(frozen=True)
class FieldAccess:
    """``e.f``"""

    receiver: "Expr"
    field: str


@dataclass(frozen=True)
class MethodCall:
    """``e.m(e1, ..., en)``"""

    receiver: "Expr"
    method: str
    args: Tuple["Expr", ...] = ()


@dataclass(frozen=True)
class New:
    """``new C(e1, ..., en)``"""

    class_name: str
    args: Tuple["Expr", ...] = ()


@dataclass(frozen=True)
class Cast:
    """``(T) e``"""

    type_name: str
    expr: "Expr"


Expr = Union[VarExpr, FieldAccess, MethodCall, New, Cast]


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    """A typed parameter ``T x``."""

    type_name: str
    name: str


@dataclass(frozen=True)
class FieldDecl:
    """A field declaration ``T f;``."""

    type_name: str
    name: str


@dataclass(frozen=True)
class Constructor:
    """``C(U g, T f) { super(g); this.f = f; }``

    ``params`` covers the superclass fields followed by this class's own
    fields, in order; ``super_args`` names the parameters forwarded to
    ``super``.  Figure 4 fixes this shape, so we only store the pieces.
    """

    class_name: str
    params: Tuple[Param, ...] = ()
    super_args: Tuple[str, ...] = ()

    @property
    def own_field_params(self) -> Tuple[Param, ...]:
        return self.params[len(self.super_args):]


@dataclass(frozen=True)
class Method:
    """``T m(T x) { return e; }``"""

    return_type: str
    name: str
    params: Tuple[Param, ...]
    body: Expr


@dataclass(frozen=True)
class Signature:
    """``T m(T x);``"""

    return_type: str
    name: str
    params: Tuple[Param, ...]


@dataclass(frozen=True)
class ClassDecl:
    """``class C extends D implements I { T f; K M }``"""

    name: str
    superclass: str
    interface: str
    fields: Tuple[FieldDecl, ...]
    constructor: Constructor
    methods: Tuple[Method, ...]

    def method(self, name: str) -> Optional[Method]:
        for method in self.methods:
            if method.name == name:
                return method
        return None


@dataclass(frozen=True)
class InterfaceDecl:
    """``interface I { S }``"""

    name: str
    signatures: Tuple[Signature, ...]

    def signature(self, name: str) -> Optional[Signature]:
        for signature in self.signatures:
            if signature.name == name:
                return signature
        return None


TypeDecl = Union[ClassDecl, InterfaceDecl]


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Program:
    """A program: type declarations plus the main expression."""

    declarations: Tuple[TypeDecl, ...]
    main: Expr = New(OBJECT)

    def __post_init__(self) -> None:
        names = [decl.name for decl in self.declarations]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate type declarations: {sorted(duplicates)}")
        clash = set(names) & BUILTIN_TYPES
        if clash:
            raise ValueError(f"declarations shadow builtins: {sorted(clash)}")

    # -- lookup (the paper's P(C) and P(I)) --------------------------------

    def class_decl(self, name: str) -> Optional[ClassDecl]:
        decl = self._table().get(name)
        return decl if isinstance(decl, ClassDecl) else None

    def interface_decl(self, name: str) -> Optional[InterfaceDecl]:
        if name == EMPTY_INTERFACE:
            return InterfaceDecl(EMPTY_INTERFACE, ())
        decl = self._table().get(name)
        return decl if isinstance(decl, InterfaceDecl) else None

    def declares(self, name: str) -> bool:
        return name in self._table()

    def is_class_name(self, name: str) -> bool:
        return name in (OBJECT, STRING) or self.class_decl(name) is not None

    def is_interface_name(self, name: str) -> bool:
        return (
            name == EMPTY_INTERFACE or self.interface_decl(name) is not None
        )

    def class_decls(self) -> Tuple[ClassDecl, ...]:
        return tuple(
            d for d in self.declarations if isinstance(d, ClassDecl)
        )

    def interface_decls(self) -> Tuple[InterfaceDecl, ...]:
        return tuple(
            d for d in self.declarations if isinstance(d, InterfaceDecl)
        )

    def _table(self) -> Dict[str, TypeDecl]:
        table = getattr(self, "_table_cache", None)
        if table is None:
            table = {decl.name: decl for decl in self.declarations}
            object.__setattr__(self, "_table_cache", table)
        return table

"""The paper's running example (Figures 1 and 2, Sections 2 and 4.5).

:func:`figure1_program` builds the input program of Figure 1a as FJI;
:func:`figure1_problem` wraps it into a full reduction problem whose
black-box predicate is the paper's hypothetical buggy tool: the bug shows
"when the body of M.x(), M.main(), and A.m() are present at the same
time", and the tool "always requires M.main() to run at all".

Headline numbers this example reproduces (tested):

- 20 variables (Figure 2),
- 32 unique dependency constraints (Figure 2: "32 + 1 duplicate"),
- 6,766 valid sub-inputs counted by #SAT (Section 2),
- the optimal 11-variable reduction of Figure 1b found by GBR.
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.fji.ast import (
    ClassDecl,
    Constructor,
    InterfaceDecl,
    Method,
    MethodCall,
    New,
    OBJECT,
    Param,
    Program,
    Signature,
    STRING,
    VarExpr,
)
from repro.fji.typecheck import check_program
from repro.fji.variables import (
    ClassVar,
    CodeVar,
    ImplementsVar,
    InterfaceVar,
    ItemVar,
    MethodVar,
    SignatureVar,
    variables_of,
)
from repro.logic.cnf import CNF, Clause
from repro.reduction.problem import ReductionProblem

__all__ = [
    "figure1_program",
    "figure1_constraints",
    "figure1_problem",
    "figure1_bug_trigger",
    "figure1_optimal_solution",
    "MAIN_CODE",
]

MAIN_CODE = CodeVar("M", "main")

_BUG_TRIGGER: FrozenSet[ItemVar] = frozenset(
    {CodeVar("M", "x"), CodeVar("M", "main"), CodeVar("A", "m")}
)


def figure1_program() -> Program:
    """The input program of Figure 1a.

    The method bodies are chosen so they generate exactly the Figure 2
    constraints: ``m`` returns ``new String()`` (no constraints, like the
    paper's elided bodies) and ``n`` returns its own ``B`` parameter.
    """
    def m_method() -> Method:
        return Method(
            return_type=STRING,
            name="m",
            params=(),
            body=New(STRING),
        )

    def n_method() -> Method:
        return Method(
            return_type="B",
            name="n",
            params=(Param("B", "b"),),
            body=VarExpr("b"),
        )

    class_a = ClassDecl(
        name="A",
        superclass=OBJECT,
        interface="I",
        fields=(),
        constructor=Constructor(class_name="A"),
        methods=(m_method(), n_method()),
    )
    class_b = ClassDecl(
        name="B",
        superclass=OBJECT,
        interface="I",
        fields=(),
        constructor=Constructor(class_name="B"),
        methods=(m_method(), n_method()),
    )
    interface_i = InterfaceDecl(
        name="I",
        signatures=(
            Signature(return_type=STRING, name="m", params=()),
            Signature(return_type="B", name="n", params=(Param("B", "b"),)),
        ),
    )
    class_m = ClassDecl(
        name="M",
        superclass=OBJECT,
        interface="EmptyInterface",
        fields=(),
        constructor=Constructor(class_name="M"),
        methods=(
            Method(
                return_type=STRING,
                name="x",
                params=(Param("I", "a"),),
                body=MethodCall(VarExpr("a"), "m", ()),
            ),
            Method(
                return_type=STRING,
                name="main",
                params=(),
                body=MethodCall(New("M"), "x", (New("A"),)),
            ),
        ),
    )
    return Program(declarations=(class_a, class_b, interface_i, class_m))


def figure1_constraints(include_main_requirement: bool = True) -> CNF:
    """The Figure 2 constraint CNF.

    The final unit clause ``[M.main()!code]`` is "added after constraint
    generation because we know the tool will not work without" it; pass
    ``include_main_requirement=False`` to get the pure type-rule output.
    """
    cnf = check_program(figure1_program())
    if include_main_requirement:
        cnf.add_clause(Clause.unit(MAIN_CODE))
    return cnf


def figure1_bug_trigger() -> FrozenSet[ItemVar]:
    """The items whose joint presence makes the hypothetical tool crash."""
    return _BUG_TRIGGER


def figure1_problem() -> ReductionProblem:
    """The example as a full Input Reduction Problem instance."""
    program = figure1_program()
    trigger = figure1_bug_trigger()

    def predicate(sub_input) -> bool:
        return trigger <= sub_input

    return ReductionProblem(
        variables=variables_of(program),
        predicate=predicate,
        constraint=figure1_constraints(),
        description="Figure 1a running example",
    )


def figure1_optimal_solution() -> FrozenSet[ItemVar]:
    """The 11-variable optimum of Section 2 / Figure 1b."""
    return frozenset(
        {
            ImplementsVar("A", "I"),
            MethodVar("A", "m"),
            CodeVar("A", "m"),
            ClassVar("A"),
            SignatureVar("I", "m"),
            InterfaceVar("I"),
            CodeVar("M", "x"),
            MethodVar("M", "x"),
            CodeVar("M", "main"),
            MethodVar("M", "main"),
            ClassVar("M"),
        }
    )

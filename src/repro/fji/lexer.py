"""A hand-written scanner for the FJI concrete syntax.

Tokens: identifiers/keywords, punctuation, and EOF.  Supports ``//`` line
comments and ``/* */`` block comments.  Positions are tracked for error
messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "class",
        "extends",
        "implements",
        "interface",
        "new",
        "return",
        "super",
        "this",
    }
)

PUNCTUATION = frozenset("(){};,.=")


class LexError(ValueError):
    """Raised for characters the FJI grammar has no use for."""


@dataclass(frozen=True)
class Token:
    """One token: kind is 'ident', 'keyword', 'punct', or 'eof'."""

    kind: str
    text: str
    line: int
    column: int

    def is_punct(self, text: str) -> bool:
        return self.kind == "punct" and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == "keyword" and self.text == text

    def describe(self) -> str:
        if self.kind == "eof":
            return "end of input"
        return f"{self.text!r}"


def tokenize(source: str) -> List[Token]:
    """Scan the whole source, returning tokens ending with one EOF."""
    tokens: List[Token] = []
    line, column = 1, 1
    i = 0
    n = len(source)

    def advance(text: str) -> None:
        nonlocal line, column
        for ch in text:
            if ch == "\n":
                line += 1
                column = 1
            else:
                column += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(ch)
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            end = n if end == -1 else end
            advance(source[i:end])
            i = end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError(f"unterminated block comment at line {line}")
            advance(source[i : end + 2])
            i = end + 2
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            advance(text)
            continue
        if ch in PUNCTUATION:
            tokens.append(Token("punct", ch, line, column))
            advance(ch)
            i += 1
            continue
        raise LexError(
            f"unexpected character {ch!r} at line {line}, column {column}"
        )

    tokens.append(Token("eof", "", line, column))
    return tokens

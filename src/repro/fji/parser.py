"""A recursive-descent parser for the FJI concrete syntax.

Grammar (see :mod:`repro.fji.ast` for the abstract syntax)::

    program    := decl* [expr ';'] EOF
    decl       := classDecl | interfaceDecl
    classDecl  := 'class' ID 'extends' ID ['implements' ID]
                  '{' field* [ctor] method* '}'
    field      := ID ID ';'
    ctor       := ID '(' params ')' '{' 'super' '(' names ')' ';'
                  ('this' '.' ID '=' ID ';')* '}'
    method     := ID ID '(' params ')' '{' 'return' expr ';' '}'
    interfaceDecl := 'interface' ID '{' sig* '}'
    sig        := ID ID '(' params ')' ';'
    expr       := unary ('.' ID ['(' exprs ')'])*
    unary      := ID | 'this' | 'new' ID '(' exprs ')'
                | '(' ID ')' unary          -- cast
                | '(' expr ')'              -- grouping

Conveniences beyond the paper's grammar:

- ``implements`` may be omitted (defaults to ``EmptyInterface``),
- the constructor may be omitted; the canonical one (inherited fields
  first, forwarded to ``super``) is synthesized in a post-parse pass,
- the trailing main expression may be omitted (defaults to
  ``new Object()``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.fji.ast import (
    Cast,
    ClassDecl,
    Constructor,
    EMPTY_INTERFACE,
    Expr,
    FieldAccess,
    FieldDecl,
    InterfaceDecl,
    Method,
    MethodCall,
    New,
    OBJECT,
    Param,
    Program,
    Signature,
    STRING,
    TypeDecl,
    VarExpr,
)
from repro.fji.lexer import Token, tokenize

__all__ = ["parse_program", "parse_expr", "ParseError"]


class ParseError(ValueError):
    """Syntax error with line/column context."""


def parse_program(source: str) -> Program:
    """Parse FJI source text into a :class:`Program`."""
    parser = _Parser(tokenize(source))
    return parser.program()


def parse_expr(source: str) -> Expr:
    """Parse a single FJI expression (useful in tests and the REPL)."""
    parser = _Parser(tokenize(source))
    expr = parser.expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self._implicit_ctors: set = set()

    # -- token plumbing -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(
            f"{message} at line {token.line}, column {token.column} "
            f"(found {token.describe()})"
        )

    def expect_punct(self, text: str) -> Token:
        token = self.peek()
        if not token.is_punct(text):
            raise self.error(f"expected {text!r}")
        return self.next()

    def expect_keyword(self, text: str) -> Token:
        token = self.peek()
        if not token.is_keyword(text):
            raise self.error(f"expected keyword {text!r}")
        return self.next()

    def expect_ident(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.kind != "ident":
            raise self.error(f"expected {what}")
        return self.next().text

    def expect_eof(self) -> None:
        if self.peek().kind != "eof":
            raise self.error("expected end of input")

    # -- grammar --------------------------------------------------------------

    def program(self) -> Program:
        declarations: List[TypeDecl] = []
        main: Optional[Expr] = None
        while self.peek().kind != "eof":
            token = self.peek()
            if token.is_keyword("class"):
                declarations.append(self.class_decl())
            elif token.is_keyword("interface"):
                declarations.append(self.interface_decl())
            else:
                main = self.expr()
                self.expect_punct(";")
                break
        self.expect_eof()
        declarations = _synthesize_constructors(declarations, self._implicit_ctors)
        if main is None:
            return Program(declarations=tuple(declarations))
        return Program(declarations=tuple(declarations), main=main)

    def class_decl(self) -> ClassDecl:
        self.expect_keyword("class")
        name = self.expect_ident("class name")
        self.expect_keyword("extends")
        superclass = self.expect_ident("superclass name")
        interface = EMPTY_INTERFACE
        if self.peek().is_keyword("implements"):
            self.next()
            interface = self.expect_ident("interface name")
        self.expect_punct("{")

        fields: List[FieldDecl] = []
        constructor: Optional[Constructor] = None
        methods: List[Method] = []
        while not self.peek().is_punct("}"):
            if (
                self.peek().kind == "ident"
                and self.peek().text == name
                and self.peek(1).is_punct("(")
            ):
                if constructor is not None:
                    raise self.error(f"class {name}: second constructor")
                constructor = self.constructor(name)
                continue
            first = self.expect_ident("member type or constructor")
            second = self.expect_ident("member name")
            if self.peek().is_punct(";"):
                self.next()
                fields.append(FieldDecl(first, second))
            elif self.peek().is_punct("("):
                methods.append(self.method_rest(first, second))
            else:
                raise self.error("expected ';' or '(' after member name")
        self.expect_punct("}")

        if constructor is None:
            self._implicit_ctors.add(name)
        placeholder = constructor or Constructor(class_name=name)
        return ClassDecl(
            name=name,
            superclass=superclass,
            interface=interface,
            fields=tuple(fields),
            constructor=placeholder,
            methods=tuple(methods),
        )

    def constructor(self, class_name: str) -> Constructor:
        self.expect_ident()  # the class name, already checked
        params = self.params()
        self.expect_punct("{")
        self.expect_keyword("super")
        self.expect_punct("(")
        super_args: List[str] = []
        if not self.peek().is_punct(")"):
            super_args.append(self.expect_ident("super argument"))
            while self.peek().is_punct(","):
                self.next()
                super_args.append(self.expect_ident("super argument"))
        self.expect_punct(")")
        self.expect_punct(";")
        while self.peek().is_keyword("this"):
            self.next()
            self.expect_punct(".")
            field = self.expect_ident("field name")
            self.expect_punct("=")
            value = self.expect_ident("parameter name")
            if field != value:
                raise self.error(
                    f"constructor assignment must be this.{field} = {field}"
                )
            self.expect_punct(";")
        self.expect_punct("}")
        return Constructor(
            class_name=class_name,
            params=tuple(params),
            super_args=tuple(super_args),
        )

    def method_rest(self, return_type: str, name: str) -> Method:
        params = self.params()
        self.expect_punct("{")
        self.expect_keyword("return")
        body = self.expr()
        self.expect_punct(";")
        self.expect_punct("}")
        return Method(
            return_type=return_type,
            name=name,
            params=tuple(params),
            body=body,
        )

    def interface_decl(self) -> InterfaceDecl:
        self.expect_keyword("interface")
        name = self.expect_ident("interface name")
        self.expect_punct("{")
        signatures: List[Signature] = []
        while not self.peek().is_punct("}"):
            return_type = self.expect_ident("signature return type")
            sig_name = self.expect_ident("signature name")
            params = self.params()
            self.expect_punct(";")
            signatures.append(
                Signature(
                    return_type=return_type,
                    name=sig_name,
                    params=tuple(params),
                )
            )
        self.expect_punct("}")
        return InterfaceDecl(name=name, signatures=tuple(signatures))

    def params(self) -> List[Param]:
        self.expect_punct("(")
        params: List[Param] = []
        if not self.peek().is_punct(")"):
            params.append(self.param())
            while self.peek().is_punct(","):
                self.next()
                params.append(self.param())
        self.expect_punct(")")
        return params

    def param(self) -> Param:
        type_name = self.expect_ident("parameter type")
        name = self.expect_ident("parameter name")
        return Param(type_name, name)

    # -- expressions ---------------------------------------------------------

    def expr(self) -> Expr:
        result = self.unary()
        while self.peek().is_punct("."):
            self.next()
            member = self.expect_ident("member name")
            if self.peek().is_punct("("):
                args = self.call_args()
                result = MethodCall(result, member, tuple(args))
            else:
                result = FieldAccess(result, member)
        return result

    def unary(self) -> Expr:
        token = self.peek()
        if token.is_keyword("this"):
            self.next()
            return VarExpr("this")
        if token.is_keyword("new"):
            self.next()
            class_name = self.expect_ident("class name")
            args = self.call_args()
            return New(class_name, tuple(args))
        if token.kind == "ident":
            self.next()
            return VarExpr(token.text)
        if token.is_punct("("):
            # '(' ID ')' <expr-start> is a cast; otherwise grouping.
            if (
                self.peek(1).kind == "ident"
                and self.peek(2).is_punct(")")
                and self._starts_expression(self.peek(3))
            ):
                self.next()
                type_name = self.expect_ident()
                self.expect_punct(")")
                return Cast(type_name, self.unary_with_postfix())
            self.next()
            inner = self.expr()
            self.expect_punct(")")
            return inner
        raise self.error("expected an expression")

    def unary_with_postfix(self) -> Expr:
        """Cast operand: a unary with any trailing member accesses."""
        result = self.unary()
        while self.peek().is_punct("."):
            self.next()
            member = self.expect_ident("member name")
            if self.peek().is_punct("("):
                args = self.call_args()
                result = MethodCall(result, member, tuple(args))
            else:
                result = FieldAccess(result, member)
        return result

    def call_args(self) -> List[Expr]:
        self.expect_punct("(")
        args: List[Expr] = []
        if not self.peek().is_punct(")"):
            args.append(self.expr())
            while self.peek().is_punct(","):
                self.next()
                args.append(self.expr())
        self.expect_punct(")")
        return args

    @staticmethod
    def _starts_expression(token: Token) -> bool:
        return (
            token.kind == "ident"
            or token.is_keyword("this")
            or token.is_keyword("new")
            or token.is_punct("(")
        )


def _synthesize_constructors(
    declarations: List[TypeDecl],
    implicit: set,
) -> List[TypeDecl]:
    """Fill in canonical constructors for classes that omitted them.

    The canonical constructor takes the inherited fields (walking the
    superclass chain) followed by the class's own fields, forwards the
    inherited ones to ``super`` and assigns the rest.
    """
    by_name: Dict[str, TypeDecl] = {d.name: d for d in declarations}

    def inherited_fields(class_name: str) -> List[FieldDecl]:
        if class_name in (OBJECT, STRING):
            return []
        decl = by_name.get(class_name)
        if not isinstance(decl, ClassDecl):
            return []  # the type checker reports unknown ancestors
        return inherited_fields(decl.superclass) + list(decl.fields)

    out: List[TypeDecl] = []
    for decl in declarations:
        if isinstance(decl, ClassDecl) and decl.name in implicit:
            inherited = inherited_fields(decl.superclass)
            if inherited or decl.fields:
                params = tuple(
                    Param(f.type_name, f.name)
                    for f in inherited + list(decl.fields)
                )
                ctor = Constructor(
                    class_name=decl.name,
                    params=params,
                    super_args=tuple(f.name for f in inherited),
                )
                decl = ClassDecl(
                    name=decl.name,
                    superclass=decl.superclass,
                    interface=decl.interface,
                    fields=decl.fields,
                    constructor=ctor,
                    methods=decl.methods,
                )
        out.append(decl)
    return out

"""Pretty-printing FJI programs back to concrete syntax.

The output parses back to an equal AST (round-trip property tested), and
doubles as the size metric for FJI-level experiments: ``source_metrics``
reports lines and bytes of the rendered program, matching how the paper
reports "lines in the decompiled program".
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.fji.ast import (
    Cast,
    ClassDecl,
    Constructor,
    EMPTY_INTERFACE,
    Expr,
    FieldAccess,
    InterfaceDecl,
    Method,
    MethodCall,
    New,
    OBJECT,
    Program,
    Signature,
    VarExpr,
)

__all__ = ["pretty_program", "pretty_expr", "SourceMetrics", "source_metrics"]

INDENT = "  "


def pretty_program(program: Program) -> str:
    """Render a program as concrete FJI syntax."""
    chunks: List[str] = []
    for decl in program.declarations:
        if isinstance(decl, ClassDecl):
            chunks.append(_pretty_class(decl))
        else:
            chunks.append(_pretty_interface(decl))
    chunks.append(pretty_expr(program.main) + ";")
    return "\n\n".join(chunks) + "\n"


def _pretty_class(decl: ClassDecl) -> str:
    header = f"class {decl.name} extends {decl.superclass}"
    if decl.interface != EMPTY_INTERFACE:
        header += f" implements {decl.interface}"
    lines = [header + " {"]
    for fdecl in decl.fields:
        lines.append(f"{INDENT}{fdecl.type_name} {fdecl.name};")
    lines.append(_pretty_constructor(decl.constructor))
    for method in decl.methods:
        lines.append(_pretty_method(method))
    lines.append("}")
    return "\n".join(lines)


def _pretty_constructor(ctor: Constructor) -> str:
    params = ", ".join(f"{p.type_name} {p.name}" for p in ctor.params)
    pieces = [f"super({', '.join(ctor.super_args)});"]
    pieces.extend(
        f"this.{p.name} = {p.name};" for p in ctor.own_field_params
    )
    body = " ".join(pieces)
    return f"{INDENT}{ctor.class_name}({params}) {{ {body} }}"


def _pretty_method(method: Method) -> str:
    params = ", ".join(f"{p.type_name} {p.name}" for p in method.params)
    body = pretty_expr(method.body)
    return (
        f"{INDENT}{method.return_type} {method.name}({params}) "
        f"{{ return {body}; }}"
    )


def _pretty_interface(decl: InterfaceDecl) -> str:
    lines = [f"interface {decl.name} {{"]
    for signature in decl.signatures:
        lines.append(_pretty_signature(signature))
    lines.append("}")
    return "\n".join(lines)


def _pretty_signature(signature: Signature) -> str:
    params = ", ".join(
        f"{p.type_name} {p.name}" for p in signature.params
    )
    return f"{INDENT}{signature.return_type} {signature.name}({params});"


def pretty_expr(expr: Expr) -> str:
    """Render an expression (fully parenthesizing casts)."""
    if isinstance(expr, VarExpr):
        return expr.name
    if isinstance(expr, FieldAccess):
        return f"{_receiver(expr.receiver)}.{expr.field}"
    if isinstance(expr, MethodCall):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return f"{_receiver(expr.receiver)}.{expr.method}({args})"
    if isinstance(expr, New):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return f"new {expr.class_name}({args})"
    if isinstance(expr, Cast):
        return f"(({expr.type_name}) {pretty_expr(expr.expr)})"
    raise ValueError(f"unknown expression: {expr!r}")


def _receiver(expr: Expr) -> str:
    """Receivers of ``.`` chains; casts are already parenthesized."""
    return pretty_expr(expr)


class SourceMetrics(NamedTuple):
    """Size of a rendered program."""

    lines: int
    bytes: int


def source_metrics(program: Program) -> SourceMetrics:
    """Lines and bytes of the pretty-printed program."""
    text = pretty_program(program)
    return SourceMetrics(
        lines=sum(1 for line in text.splitlines() if line.strip()),
        bytes=len(text.encode("utf-8")),
    )

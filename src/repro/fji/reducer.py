"""The FJI reducer ``reduce(P, phi)`` (Figure 5 of the paper).

Given a truth assignment ``phi`` over ``V(P)`` (written as the set of
true variables), the reducer keeps, rewrites, or drops each item:

- class ``C``: kept iff ``[C]``; dropped wholesale otherwise,
- ``implements I``: kept iff ``[C <| I]``; otherwise the class
  implements ``EmptyInterface``,
- method ``C.m``: body kept iff ``[C.m()!code]``; with ``[C.m()]`` but
  not the code, the body becomes the trivial ``return this.m(x);`` —
  an infinitely-recursive body that type checks at any return type;
  without ``[C.m()]`` the method is dropped,
- interface ``I`` and signature ``I.m``: kept iff their variables are.

Fields and constructors are not reducible in FJI (they are in the
bytecode substrate) and travel with their class.
"""

from __future__ import annotations

from typing import AbstractSet, List, Tuple

from repro.fji.ast import (
    ClassDecl,
    EMPTY_INTERFACE,
    InterfaceDecl,
    Method,
    MethodCall,
    Program,
    Signature,
    TypeDecl,
    VarExpr,
)
from repro.fji.variables import (
    ClassVar,
    CodeVar,
    ImplementsVar,
    InterfaceVar,
    ItemVar,
    MethodVar,
    SignatureVar,
)

__all__ = ["reduce_program", "trivial_body"]


def reduce_program(
    program: Program, true_vars: AbstractSet[ItemVar]
) -> Program:
    """``reduce(P, phi)`` where ``phi``'s true set is ``true_vars``."""
    reduced: List[TypeDecl] = []
    for decl in program.declarations:
        if isinstance(decl, ClassDecl):
            if ClassVar(decl.name) in true_vars:
                reduced.append(_reduce_class(decl, true_vars))
        else:
            if InterfaceVar(decl.name) in true_vars:
                reduced.append(_reduce_interface(decl, true_vars))
    return Program(declarations=tuple(reduced), main=program.main)


def _reduce_class(
    decl: ClassDecl, true_vars: AbstractSet[ItemVar]
) -> ClassDecl:
    interface = decl.interface
    if interface != EMPTY_INTERFACE:
        if ImplementsVar(decl.name, interface) not in true_vars:
            interface = EMPTY_INTERFACE

    methods: List[Method] = []
    for method in decl.methods:
        if MethodVar(decl.name, method.name) not in true_vars:
            continue
        if CodeVar(decl.name, method.name) in true_vars:
            methods.append(method)
        else:
            methods.append(
                Method(
                    return_type=method.return_type,
                    name=method.name,
                    params=method.params,
                    body=trivial_body(method),
                )
            )
    return ClassDecl(
        name=decl.name,
        superclass=decl.superclass,
        interface=interface,
        fields=decl.fields,
        constructor=decl.constructor,
        methods=tuple(methods),
    )


def trivial_body(method: Method) -> MethodCall:
    """``return this.m(x);`` — the code-removed body from Figure 5."""
    return MethodCall(
        receiver=VarExpr("this"),
        method=method.name,
        args=tuple(VarExpr(p.name) for p in method.params),
    )


def _reduce_interface(
    decl: InterfaceDecl, true_vars: AbstractSet[ItemVar]
) -> InterfaceDecl:
    signatures: Tuple[Signature, ...] = tuple(
        s
        for s in decl.signatures
        if SignatureVar(decl.name, s.name) in true_vars
    )
    return InterfaceDecl(name=decl.name, signatures=signatures)

"""Type checking + constraint generation for FJI (Figures 6 and 7).

The judgment ``|- P | sigma`` simultaneously type-checks the program and
produces a propositional formula ``sigma`` over ``V(P)`` such that every
satisfying assignment describes a sub-input that still type checks
(Theorem 3.1).  :func:`check_program` raises :class:`TypeError_` when the
program itself does not type check, and otherwise returns the constraints
as a :class:`repro.logic.cnf.CNF` whose universe is ``V(P)``.

Built-in types (Object, String, EmptyInterface) are not reducible; their
variables are the constant TRUE, which simply vanishes from conjunctions
— exactly the paper's "since we do not reduce String and Object we
replace their variables with true".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.fji.ast import (
    BUILTIN_TYPES,
    Cast,
    ClassDecl,
    Constructor,
    EMPTY_INTERFACE,
    Expr,
    FieldAccess,
    FieldDecl,
    InterfaceDecl,
    Method,
    MethodCall,
    New,
    OBJECT,
    Program,
    Signature,
    STRING,
    VarExpr,
)
from repro.fji.variables import (
    ClassVar,
    CodeVar,
    ImplementsVar,
    InterfaceVar,
    MethodVar,
    SignatureVar,
    variables_of,
)
from repro.logic.cnf import CNF
from repro.logic.formula import FALSE, TRUE, And, Formula, Implies, Or, Var, conj

__all__ = ["TypeError_", "check_program", "Checker"]


class TypeError_(Exception):
    """The program does not type check (the underscore dodges the builtin)."""


MethodType = Tuple[Tuple[str, ...], str]  # (parameter types, return type)


def check_program(program: Program) -> CNF:
    """``|- P | sigma``: type check and return the constraint CNF.

    Raises :class:`TypeError_` if the program is ill-typed.
    """
    return Checker(program).check()


class Checker:
    """One type-checking/constraint-generation run over a program."""

    def __init__(self, program: Program):
        self.program = program
        self.universe = variables_of(program)

    # ------------------------------------------------------------------
    # Entry point (program typing)
    # ------------------------------------------------------------------

    def check(self) -> CNF:
        cnf = CNF(variables=self.universe)
        self._check_wellformed_hierarchy()
        for decl in self.program.declarations:
            if isinstance(decl, ClassDecl):
                cnf.add_formula(self.check_class(decl))
            else:
                cnf.add_formula(self.check_interface(decl))
        main_type, main_constraint = self.check_expr({}, self.program.main)
        cnf.add_formula(main_constraint)
        return cnf

    # ------------------------------------------------------------------
    # Variable helpers (TRUE for builtins)
    # ------------------------------------------------------------------

    def class_formula(self, name: str) -> Formula:
        if name in (OBJECT, STRING):
            return TRUE
        if self.program.class_decl(name) is None:
            raise TypeError_(f"unknown class {name!r}")
        return Var(ClassVar(name))

    def interface_formula(self, name: str) -> Formula:
        if name == EMPTY_INTERFACE:
            return TRUE
        if self.program.interface_decl(name) is None:
            raise TypeError_(f"unknown interface {name!r}")
        return Var(InterfaceVar(name))

    def type_formula(self, name: str) -> Formula:
        """``[T]`` for any type name (class or interface)."""
        if name in BUILTIN_TYPES:
            return TRUE
        if self.program.class_decl(name) is not None:
            return Var(ClassVar(name))
        if self.program.interface_decl(name) is not None:
            return Var(InterfaceVar(name))
        raise TypeError_(f"unknown type {name!r}")

    def implements_formula(self, class_name: str, interface: str) -> Formula:
        if interface == EMPTY_INTERFACE:
            return TRUE
        return Var(ImplementsVar(class_name, interface))

    # ------------------------------------------------------------------
    # Helper rules (Figure 6)
    # ------------------------------------------------------------------

    def fields(self, class_name: str) -> List[FieldDecl]:
        """``fields(P, C)``: superclass fields first, then own fields."""
        if class_name in (OBJECT, STRING):
            return []
        decl = self.program.class_decl(class_name)
        if decl is None:
            raise TypeError_(f"fields: unknown class {class_name!r}")
        return self.fields(decl.superclass) + list(decl.fields)

    def mtype(self, method: str, type_name: str) -> Optional[MethodType]:
        """``mtype(P, m, T)`` for class or interface receivers."""
        if type_name in (OBJECT, STRING):
            return None
        decl = self.program.class_decl(type_name)
        if decl is not None:
            found = decl.method(method)
            if found is not None:
                return (tuple(p.type_name for p in found.params),
                        found.return_type)
            return self.mtype(method, decl.superclass)
        iface = self.program.interface_decl(type_name)
        if iface is not None:
            signature = iface.signature(method)
            if signature is None:
                return None
            return (tuple(p.type_name for p in signature.params),
                    signature.return_type)
        raise TypeError_(f"mtype: unknown type {type_name!r}")

    def m_any(self, method: str, type_name: str) -> Formula:
        """``mAny(P, m, T)``: a disjunction of method/signature variables.

        Requiring it true makes the reducer keep at least one
        implementation of ``m`` visible on ``T``.
        """
        if type_name in (OBJECT, STRING):
            return FALSE
        decl = self.program.class_decl(type_name)
        if decl is not None:
            rest = self.m_any(method, decl.superclass)
            if decl.method(method) is not None:
                own: Formula = Var(MethodVar(type_name, method))
                return own if rest == FALSE else Or((own, rest))
            return rest
        iface = self.program.interface_decl(type_name)
        if iface is not None:
            if iface.signature(method) is None:
                return FALSE
            return Var(SignatureVar(type_name, method))
        raise TypeError_(f"mAny: unknown type {type_name!r}")

    def subtype(self, sub: str, sup: str) -> Formula:
        """``P |- T <= T' | pi``; raises when no derivation exists.

        Paths go up through ``extends`` (no constraint: the superclass
        relation is not reducible in FJI) and through ``implements``
        (constraint ``[C <| I]``), conjoined transitively.
        """
        if sub == sup:
            return TRUE
        if not (self.program.is_class_name(sub)
                or self.program.is_interface_name(sub)):
            raise TypeError_(f"subtype: unknown type {sub!r}")
        # BFS over the (acyclic) supertype lattice, collecting the
        # cheapest constraint path (fewest implements hops).
        frontier: List[Tuple[str, Tuple[Formula, ...]]] = [(sub, ())]
        seen = {sub}
        while frontier:
            next_frontier: List[Tuple[str, Tuple[Formula, ...]]] = []
            for name, path in frontier:
                decl = self.program.class_decl(name)
                steps: List[Tuple[str, Optional[Formula]]] = []
                if decl is not None:
                    steps.append((decl.superclass, None))
                    if decl.interface != EMPTY_INTERFACE:
                        steps.append(
                            (
                                decl.interface,
                                self.implements_formula(name, decl.interface),
                            )
                        )
                elif name == STRING:
                    steps.append((OBJECT, None))
                elif self.program.is_interface_name(name):
                    # As in Java, every interface type is below Object.
                    steps.append((OBJECT, None))
                for target, label in steps:
                    extended = path if label is None else path + (label,)
                    if target == sup:
                        return conj(extended)
                    if target not in seen:
                        seen.add(target)
                        next_frontier.append((target, extended))
            frontier = next_frontier
        raise TypeError_(f"{sub!r} is not a subtype of {sup!r}")

    def check_override(
        self, method: str, superclass: str, mt: MethodType
    ) -> None:
        """``override(P, m, D, T -> T)`` (Figure 6)."""
        inherited = self.mtype(method, superclass)
        if inherited is not None and inherited != mt:
            raise TypeError_(
                f"method {method!r} overrides {superclass}.{method} "
                f"with an incompatible type {mt!r} != {inherited!r}"
            )

    # ------------------------------------------------------------------
    # Type rules (Figure 7)
    # ------------------------------------------------------------------

    def check_class(self, decl: ClassDecl) -> Formula:
        """``class C ... OK in P | pi``"""
        class_name = decl.name
        if not self.program.is_class_name(decl.superclass):
            raise TypeError_(
                f"class {class_name}: unknown superclass {decl.superclass!r}"
            )
        if not self.program.is_interface_name(decl.interface):
            raise TypeError_(
                f"class {class_name}: unknown interface {decl.interface!r}"
            )
        self._check_constructor(decl)

        parts: List[Formula] = []
        # [C] => [D] /\ [U...] /\ [T...]  (superclass + all field types)
        requirements = [self.class_formula(decl.superclass)]
        for fdecl in self.fields(class_name):
            requirements.append(self.type_formula(fdecl.type_name))
        body = conj(requirements)
        if body != TRUE:
            parts.append(Implies(Var(ClassVar(class_name)), body))

        # [C <| I] => [C] /\ [I]
        if decl.interface != EMPTY_INTERFACE:
            parts.append(
                Implies(
                    Var(ImplementsVar(class_name, decl.interface)),
                    And(
                        (
                            Var(ClassVar(class_name)),
                            self.interface_formula(decl.interface),
                        )
                    ),
                )
            )

        # Methods: P |- M OK in C | pi
        for method in decl.methods:
            parts.append(self.check_method(decl, method))

        # Signatures of I relative to C: P |- S OK in I for C | pi'
        iface = self.program.interface_decl(decl.interface)
        if iface is not None:
            for signature in iface.signatures:
                parts.append(
                    self.check_signature_for_class(decl, signature)
                )
        return conj(parts)

    def _check_constructor(self, decl: ClassDecl) -> None:
        """Constructor shape check: K = C(U g, T f){super(g); this.f=f;}"""
        ctor = decl.constructor
        if ctor.class_name != decl.name:
            raise TypeError_(
                f"class {decl.name}: constructor named {ctor.class_name!r}"
            )
        super_fields = self.fields(decl.superclass)
        expected = [
            (f.type_name, f.name) for f in super_fields
        ] + [(f.type_name, f.name) for f in decl.fields]
        actual = [(p.type_name, p.name) for p in ctor.params]
        if actual != expected:
            raise TypeError_(
                f"class {decl.name}: constructor parameters {actual!r} "
                f"do not match fields {expected!r}"
            )
        if list(ctor.super_args) != [f.name for f in super_fields]:
            raise TypeError_(
                f"class {decl.name}: super(...) must forward the "
                "superclass fields in order"
            )

    def check_method(self, decl: ClassDecl, method: Method) -> Formula:
        """``P |- T m(T x){ return e; } OK in C | pi``"""
        class_name = decl.name
        mt: MethodType = (
            tuple(p.type_name for p in method.params),
            method.return_type,
        )
        self.check_override(method.name, decl.superclass, mt)

        env: Dict[str, str] = {p.name: p.type_name for p in method.params}
        if len(env) != len(method.params):
            raise TypeError_(
                f"{class_name}.{method.name}: duplicate parameter names"
            )
        env["this"] = class_name
        body_type, pi1 = self.check_expr(env, method.body)
        pi2 = self.subtype(body_type, method.return_type)

        method_var = Var(MethodVar(class_name, method.name))
        code_var = Var(CodeVar(class_name, method.name))

        requirements = [self.class_formula(class_name)]
        requirements.extend(
            self.type_formula(p.type_name) for p in method.params
        )
        requirements.append(self.type_formula(method.return_type))

        parts: List[Formula] = []
        decl_req = conj(requirements)
        if decl_req != TRUE:
            parts.append(Implies(method_var, decl_req))
        parts.append(Implies(code_var, conj([method_var, pi1, pi2])))
        return conj(parts)

    def check_interface(self, decl: InterfaceDecl) -> Formula:
        """``interface I { S } OK in P | pi``"""
        parts: List[Formula] = []
        seen = set()
        for signature in decl.signatures:
            if signature.name in seen:
                raise TypeError_(
                    f"interface {decl.name}: duplicate signature "
                    f"{signature.name!r}"
                )
            seen.add(signature.name)
            parts.append(self.check_signature(decl, signature))
        return conj(parts)

    def check_signature(
        self, decl: InterfaceDecl, signature: Signature
    ) -> Formula:
        """``P |- T m(T x) OK in I | [I.m()] => [I] /\\ [T...] /\\ [T]``"""
        requirements = [self.interface_formula(decl.name)]
        for param in signature.params:
            requirements.append(self.type_formula(param.type_name))
        requirements.append(self.type_formula(signature.return_type))
        body = conj(requirements)
        sig_var = Var(SignatureVar(decl.name, signature.name))
        return Implies(sig_var, body) if body != TRUE else TRUE

    def check_signature_for_class(
        self, decl: ClassDecl, signature: Signature
    ) -> Formula:
        """``P |- T m(T x) OK in I for C``:

        checks ``mtype(P, m, C)`` matches the signature, and generates
        ``([C <| I] /\\ [I.m()]) => mAny(P, m, C)``.
        """
        mt = self.mtype(signature.name, decl.name)
        expected: MethodType = (
            tuple(p.type_name for p in signature.params),
            signature.return_type,
        )
        if mt is None:
            raise TypeError_(
                f"class {decl.name} does not implement "
                f"{decl.interface}.{signature.name}"
            )
        if mt != expected:
            raise TypeError_(
                f"class {decl.name} implements {decl.interface}."
                f"{signature.name} at type {mt!r}, expected {expected!r}"
            )
        antecedent = And(
            (
                self.implements_formula(decl.name, decl.interface),
                Var(SignatureVar(decl.interface, signature.name)),
            )
        )
        return Implies(antecedent, self.m_any(signature.name, decl.name))

    # ------------------------------------------------------------------
    # Expression typing
    # ------------------------------------------------------------------

    def check_expr(
        self, env: Dict[str, str], expr: Expr
    ) -> Tuple[str, Formula]:
        """``P, Gamma |- e : T | pi``"""
        if isinstance(expr, VarExpr):
            if expr.name not in env:
                raise TypeError_(f"unbound variable {expr.name!r}")
            return env[expr.name], TRUE

        if isinstance(expr, FieldAccess):
            recv_type, pi = self.check_expr(env, expr.receiver)
            if not self.program.is_class_name(recv_type):
                raise TypeError_(
                    f"field access on non-class type {recv_type!r}"
                )
            for fdecl in self.fields(recv_type):
                if fdecl.name == expr.field:
                    return fdecl.type_name, pi
            raise TypeError_(
                f"class {recv_type!r} has no field {expr.field!r}"
            )

        if isinstance(expr, MethodCall):
            recv_type, pi0 = self.check_expr(env, expr.receiver)
            mt = self.mtype(expr.method, recv_type)
            if mt is None:
                raise TypeError_(
                    f"type {recv_type!r} has no method {expr.method!r}"
                )
            param_types, return_type = mt
            if len(param_types) != len(expr.args):
                raise TypeError_(
                    f"call to {recv_type}.{expr.method}: expected "
                    f"{len(param_types)} arguments, got {len(expr.args)}"
                )
            parts: List[Formula] = [
                self.type_formula(recv_type),  # dispatch type must exist
                pi0,
                self.m_any(expr.method, recv_type),
            ]
            for arg, expected in zip(expr.args, param_types):
                arg_type, pi_arg = self.check_expr(env, arg)
                parts.append(pi_arg)
                parts.append(self.subtype(arg_type, expected))
            return return_type, conj(parts)

        if isinstance(expr, New):
            if not self.program.is_class_name(expr.class_name):
                raise TypeError_(f"new of unknown class {expr.class_name!r}")
            field_decls = self.fields(expr.class_name)
            if len(field_decls) != len(expr.args):
                raise TypeError_(
                    f"new {expr.class_name}: expected "
                    f"{len(field_decls)} arguments, got {len(expr.args)}"
                )
            parts = [self.class_formula(expr.class_name)]
            for arg, fdecl in zip(expr.args, field_decls):
                arg_type, pi_arg = self.check_expr(env, arg)
                parts.append(pi_arg)
                parts.append(self.subtype(arg_type, fdecl.type_name))
            return expr.class_name, conj(parts)

        if isinstance(expr, Cast):
            _, pi = self.check_expr(env, expr.expr)
            return expr.type_name, conj([self.type_formula(expr.type_name), pi])

        raise TypeError_(f"unknown expression form: {expr!r}")

    # ------------------------------------------------------------------
    # Hierarchy sanity
    # ------------------------------------------------------------------

    def _check_wellformed_hierarchy(self) -> None:
        for decl in self.program.class_decls():
            seen = {decl.name}
            current = decl.superclass
            while current not in (OBJECT, STRING):
                if current in seen:
                    raise TypeError_(
                        f"cyclic class hierarchy through {current!r}"
                    )
                seen.add(current)
                parent = self.program.class_decl(current)
                if parent is None:
                    raise TypeError_(
                        f"class {decl.name}: undeclared ancestor {current!r}"
                    )
                current = parent.superclass

"""The Boolean-variable universe V(P) of an FJI program.

Six kinds of variables (Section 3, "Boolean Variables and a Program
Reducer"):

- ``[C]`` — keep class C (:class:`ClassVar`),
- ``[I]`` — keep interface I (:class:`InterfaceVar`),
- ``[C <| I]`` — keep the ``implements I`` clause of C
  (:class:`ImplementsVar`); when removed, C implements EmptyInterface,
- ``[C.m()]`` — keep method m of class C (:class:`MethodVar`),
- ``[I.m()]`` — keep signature m of interface I (:class:`SignatureVar`),
- ``[C.m()!code]`` — keep the *body* of method C.m
  (:class:`CodeVar`); when removed, the body becomes the trivial
  ``return this.m(x);``.

Built-in types (Object, String, EmptyInterface) are never reducible and
get no variables; the constraint generator substitutes TRUE for them.
Variables are small frozen dataclasses, so they can be used directly as
CNF variable names, graph nodes, and dict keys.  ``str()`` renders the
paper's bracket notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from repro.fji.ast import BUILTIN_TYPES, ClassDecl, InterfaceDecl, Program

__all__ = [
    "ClassVar",
    "InterfaceVar",
    "ImplementsVar",
    "MethodVar",
    "SignatureVar",
    "CodeVar",
    "ItemVar",
    "variables_of",
]


@dataclass(frozen=True, order=True)
class ClassVar:
    """``[C]``"""

    class_name: str

    def __str__(self) -> str:
        return f"[{self.class_name}]"


@dataclass(frozen=True, order=True)
class InterfaceVar:
    """``[I]``"""

    interface_name: str

    def __str__(self) -> str:
        return f"[{self.interface_name}]"


@dataclass(frozen=True, order=True)
class ImplementsVar:
    """``[C <| I]``"""

    class_name: str
    interface_name: str

    def __str__(self) -> str:
        return f"[{self.class_name}<{self.interface_name}]"


@dataclass(frozen=True, order=True)
class MethodVar:
    """``[C.m()]``"""

    class_name: str
    method_name: str

    def __str__(self) -> str:
        return f"[{self.class_name}.{self.method_name}()]"


@dataclass(frozen=True, order=True)
class SignatureVar:
    """``[I.m()]``"""

    interface_name: str
    method_name: str

    def __str__(self) -> str:
        return f"[{self.interface_name}.{self.method_name}()]"


@dataclass(frozen=True, order=True)
class CodeVar:
    """``[C.m()!code]``"""

    class_name: str
    method_name: str

    def __str__(self) -> str:
        return f"[{self.class_name}.{self.method_name}()!code]"


ItemVar = Union[
    ClassVar, InterfaceVar, ImplementsVar, MethodVar, SignatureVar, CodeVar
]


def variables_of(program: Program) -> List[ItemVar]:
    """V(P) in declaration order (the default variable order ``<``)."""
    out: List[ItemVar] = []
    for decl in program.declarations:
        if isinstance(decl, ClassDecl):
            out.append(ClassVar(decl.name))
            if decl.interface not in BUILTIN_TYPES:
                out.append(ImplementsVar(decl.name, decl.interface))
            for method in decl.methods:
                out.append(MethodVar(decl.name, method.name))
                out.append(CodeVar(decl.name, method.name))
        elif isinstance(decl, InterfaceDecl):
            out.append(InterfaceVar(decl.name))
            for signature in decl.signatures:
                out.append(SignatureVar(decl.name, signature.name))
    return out

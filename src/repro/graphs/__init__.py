"""Dependency-graph substrate (the J-Reduce world).

J-Reduce models dependencies as a directed graph whose transitive closures
are exactly the valid sub-inputs.  This package provides the directed
graph (:mod:`repro.graphs.digraph`), Tarjan's strongly-connected-component
algorithm and the condensation (:mod:`repro.graphs.scc`), and closure
computation (:mod:`repro.graphs.closure`) used by the binary-reduction
baseline and by the lossy encodings of Section 4.3.
"""

from repro.graphs.digraph import DiGraph
from repro.graphs.scc import strongly_connected_components, condensation
from repro.graphs.closure import Closure, closure_of, all_item_closures

__all__ = [
    "DiGraph",
    "strongly_connected_components",
    "condensation",
    "Closure",
    "closure_of",
    "all_item_closures",
]

"""Transitive closures of dependency graphs.

J-Reduce's five-step recipe (quoted in Section 2 of the paper):

1. map the input to its dependency graph,
2. compute the closure of each node,
3. form a list of the closures,
4. run a reduction algorithm on the list of closures,
5. output the union of the reduced list of closures.

This module implements steps 2 and 3.  A *closure* of a node is the set
of nodes reachable from it — the smallest valid sub-input containing the
node.  Closures are computed per SCC-condensation component and shared,
so the whole family costs one DFS over the condensation instead of one
per node.
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, Hashable, Iterable, List, Tuple

from repro.graphs.digraph import DiGraph
from repro.graphs.scc import condensation
from repro.observability import get_metrics

__all__ = ["Closure", "closure_of", "all_item_closures"]

Node = Hashable


class Closure:
    """A node together with its reachable set (a valid sub-input)."""

    __slots__ = ("root", "members")

    def __init__(self, root: Node, members: FrozenSet[Node]):
        self.root = root
        self.members = members

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def __contains__(self, node: Node) -> bool:
        return node in self.members

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Closure)
            and self.root == other.root
            and self.members == other.members
        )

    def __hash__(self) -> int:
        return hash((self.root, self.members))

    def __repr__(self) -> str:
        return f"Closure(root={self.root!r}, size={len(self.members)})"


# Per-graph closure cache: graph -> (version at fill time, {rootset:
# closure}).  Weakly keyed, so a dropped graph takes its cache with it;
# a mutation (version bump) discards the stale entries wholesale.
# Probe pipelines ask for the closure of near-identical rootsets
# thousands of times per run, which is why this is worth a dict lookup.
_CLOSURE_CACHE: "weakref.WeakKeyDictionary[DiGraph, Tuple[int, Dict[FrozenSet[Node], FrozenSet[Node]]]]" = (
    weakref.WeakKeyDictionary()
)


def closure_of(graph: DiGraph, roots: Iterable[Node]) -> FrozenSet[Node]:
    """The union of the closures of ``roots`` (one reachability sweep).

    Memoized per ``(graph, frozenset(roots))``; the entry is invalidated
    when the graph mutates (its ``version`` counter moves).  Telemetry:
    ``closure.memo_hits`` / ``closure.memo_misses``.
    """
    key = roots if isinstance(roots, frozenset) else frozenset(roots)
    entry = _CLOSURE_CACHE.get(graph)
    if entry is None or entry[0] != graph.version:
        entry = (graph.version, {})
        _CLOSURE_CACHE[graph] = entry
    cache = entry[1]
    result = cache.get(key)
    metrics = get_metrics()
    if result is None:
        metrics.counter("closure.memo_misses").inc()
        result = graph.reachable_from(key)
        cache[key] = result
    else:
        metrics.counter("closure.memo_hits").inc()
    return result


def all_item_closures(graph: DiGraph) -> List[Closure]:
    """The closure of every node, computed via the condensation.

    Nodes in the same SCC share the identical member set.  The result is
    sorted by closure size (ascending, ties by root repr), which is the
    order the binary-reduction baseline consumes.
    """
    dag, component_of = condensation(graph)
    component_closure: Dict[FrozenSet[Node], FrozenSet[Node]] = {}

    # Tarjan emits components in reverse topological order (dependencies
    # first), so a single pass can reuse successors' closures.
    for component in _dependencies_first(dag):
        members = set(component)
        for successor in dag.successors(component):
            members.update(component_closure[successor])
        component_closure[component] = frozenset(members)

    closures = [
        Closure(node, component_closure[component_of[node]])
        for node in graph.nodes
    ]
    closures.sort(key=lambda c: (len(c.members), repr(c.root)))
    return closures


def _dependencies_first(dag: DiGraph) -> List[FrozenSet[Node]]:
    """Topological order of the condensation with dependencies first."""
    order = dag.topological_order()
    order.reverse()
    return order

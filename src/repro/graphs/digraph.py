"""A small directed graph over hashable nodes.

An edge ``a -> b`` reads "a depends on b": keeping ``a`` in the sub-input
forces keeping ``b`` (exactly the graph constraint ``[a] => [b]``).
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Set,
    Tuple,
)

__all__ = ["DiGraph"]

Node = Hashable


class DiGraph:
    """Adjacency-set directed graph."""

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        edges: Iterable[Tuple[Node, Node]] = (),
    ):
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        # Bumped on every actual mutation; lets caches keyed on this
        # graph (see repro.graphs.closure) invalidate cheaply.
        self.version = 0
        for node in nodes:
            self.add_node(node)
        for src, dst in edges:
            self.add_edge(src, dst)

    # -- construction -------------------------------------------------------

    def add_node(self, node: Node) -> None:
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()
            self.version += 1

    def add_edge(self, src: Node, dst: Node) -> None:
        self.add_node(src)
        self.add_node(dst)
        if dst not in self._succ[src]:
            self._succ[src].add(dst)
            self._pred[dst].add(src)
            self.version += 1

    # -- queries ---------------------------------------------------------------

    @property
    def nodes(self) -> FrozenSet[Node]:
        return frozenset(self._succ)

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield (src, dst)

    def successors(self, node: Node) -> FrozenSet[Node]:
        return frozenset(self._succ.get(node, ()))

    def predecessors(self, node: Node) -> FrozenSet[Node]:
        return frozenset(self._pred.get(node, ()))

    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def has_edge(self, src: Node, dst: Node) -> bool:
        return dst in self._succ.get(src, ())

    def num_edges(self) -> int:
        return sum(len(dsts) for dsts in self._succ.values())

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    # -- traversal ----------------------------------------------------------------

    def reachable_from(self, sources: Iterable[Node]) -> FrozenSet[Node]:
        """All nodes reachable from ``sources`` (including the sources)."""
        seen: Set[Node] = set()
        stack: List[Node] = [s for s in sources if s in self._succ]
        seen.update(stack)
        while stack:
            node = stack.pop()
            for nxt in self._succ[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return frozenset(seen)

    def reverse(self) -> "DiGraph":
        """The graph with every edge flipped."""
        out = DiGraph(nodes=self._succ)
        for src, dst in self.edges():
            out.add_edge(dst, src)
        return out

    def subgraph(self, keep: Iterable[Node]) -> "DiGraph":
        """The induced subgraph on ``keep``."""
        keep_set = set(keep)
        out = DiGraph(nodes=(n for n in self._succ if n in keep_set))
        for src, dst in self.edges():
            if src in keep_set and dst in keep_set:
                out.add_edge(src, dst)
        return out

    def topological_order(self) -> List[Node]:
        """Kahn's algorithm; raises ValueError on cycles.

        Ties are broken deterministically by node repr.
        """
        indegree: Dict[Node, int] = {n: 0 for n in self._succ}
        for _, dst in self.edges():
            indegree[dst] += 1
        ready = sorted(
            (n for n, d in indegree.items() if d == 0), key=repr, reverse=True
        )
        order: List[Node] = []
        while ready:
            node = ready.pop()
            order.append(node)
            inserted = False
            for nxt in self._succ[node]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
                    inserted = True
            if inserted:
                ready.sort(key=repr, reverse=True)
        if len(order) != len(self._succ):
            raise ValueError("graph has a cycle; no topological order")
        return order

    def __repr__(self) -> str:
        return f"DiGraph({len(self)} nodes, {self.num_edges()} edges)"

"""Strongly connected components and condensation.

J-Reduce collapses dependency cycles: every member of a strongly
connected component must be kept or removed together, so the reduction
list is really a list of SCC closures.  We implement Tarjan's algorithm
iteratively (the dependency graphs of large inputs overflow Python's
recursion limit) and build the condensation DAG on top.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Tuple

from repro.graphs.digraph import DiGraph

__all__ = ["strongly_connected_components", "condensation"]

Node = Hashable


def strongly_connected_components(graph: DiGraph) -> List[FrozenSet[Node]]:
    """Tarjan's SCC algorithm, iteratively.

    Components are returned in reverse topological order of the
    condensation (i.e. a component precedes the components it depends
    on... dependents come later), matching Tarjan's natural output order.
    """
    index_counter = 0
    indices: Dict[Node, int] = {}
    lowlinks: Dict[Node, int] = {}
    on_stack: Dict[Node, bool] = {}
    stack: List[Node] = []
    components: List[FrozenSet[Node]] = []

    for root in sorted(graph.nodes, key=repr):
        if root in indices:
            continue
        # Each frame: (node, iterator over successors).
        work: List[Tuple[Node, List[Node]]] = [
            (root, sorted(graph.successors(root), key=repr))
        ]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack[root] = True

        while work:
            node, successors = work[-1]
            advanced = False
            while successors:
                nxt = successors.pop()
                if nxt not in indices:
                    indices[nxt] = lowlinks[nxt] = index_counter
                    index_counter += 1
                    stack.append(nxt)
                    on_stack[nxt] = True
                    work.append(
                        (nxt, sorted(graph.successors(nxt), key=repr))
                    )
                    advanced = True
                    break
                if on_stack.get(nxt):
                    lowlinks[node] = min(lowlinks[node], indices[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component: List[Node] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(frozenset(component))

    return components


def condensation(
    graph: DiGraph,
) -> Tuple[DiGraph, Dict[Node, FrozenSet[Node]]]:
    """The condensation DAG plus the node -> component mapping.

    The condensation's nodes are the components (frozensets); there is an
    edge between two components when any original edge crosses them.
    """
    components = strongly_connected_components(graph)
    component_of: Dict[Node, FrozenSet[Node]] = {}
    for component in components:
        for node in component:
            component_of[node] = component
    dag = DiGraph(nodes=components)
    for src, dst in graph.edges():
        csrc, cdst = component_of[src], component_of[dst]
        if csrc != cdst:
            dag.add_edge(csrc, cdst)
    return dag, component_of

"""The experiment harness.

Regenerates every table and figure of the paper's Section 5 (see
DESIGN.md's per-experiment index and EXPERIMENTS.md for paper-vs-measured
numbers):

- :mod:`repro.harness.metrics` — geometric means, relative sizes, and
  cumulative-frequency-diagram series,
- :mod:`repro.harness.stats` — the corpus statistics row,
- :mod:`repro.harness.experiments` — per-instance strategy runs,
- :mod:`repro.harness.timeline` — reduction over (simulated) time,
- :mod:`repro.harness.report` — text renderers for the figures/tables.
"""

from repro.harness.metrics import (
    cumulative_frequency,
    geometric_mean,
    quantile,
)
from repro.harness.stats import corpus_statistics, CorpusStatistics
from repro.harness.experiments import (
    ExperimentConfig,
    InstanceOutcome,
    oracle_fingerprint,
    probe_pool,
    run_corpus_experiment,
    run_instance,
)
from repro.harness.timeline import mean_reduction_over_time
from repro.harness.report import (
    render_cfd_table,
    render_headline,
    render_lossy_comparison,
    render_statistics,
    render_timeline,
)
from repro.harness.export import export_all

__all__ = [
    "geometric_mean",
    "quantile",
    "cumulative_frequency",
    "corpus_statistics",
    "CorpusStatistics",
    "ExperimentConfig",
    "InstanceOutcome",
    "oracle_fingerprint",
    "probe_pool",
    "run_instance",
    "run_corpus_experiment",
    "mean_reduction_over_time",
    "render_cfd_table",
    "render_headline",
    "render_lossy_comparison",
    "render_statistics",
    "render_timeline",
    "export_all",
]

"""Running reduction strategies over corpus instances.

One *instance* is a (benchmark application, buggy decompiler) pair; one
*outcome* is a strategy's result on an instance: final sizes, predicate
invocations, wall-clock, and the reduction-over-time trace.

The paper's time axis is dominated by the decompile+compile cycle
("each taking 33 seconds on average"); our simulated decompilers run in
microseconds, so outcomes also carry a *simulated* clock that charges a
configurable cost per fresh predicate invocation — that clock is what
the Figure 8 reproductions plot.  The simulated clock is purely virtual
(``cost × fresh calls``), so outcomes are deterministic across hosts
and across serial/parallel execution; only ``real_seconds`` varies.

``run_corpus_experiment(..., jobs=N)`` fans instances out to the
worker pool in :mod:`repro.parallel.runner`; passing a predicate store
(any :func:`repro.parallel.open_store` backend — the sharded cache
tier, sqlite, or the v1 single file) makes predicate outcomes persist
across runs (a warm store re-runs an instance with zero fresh
predicate calls).  ``ExperimentConfig.tenant`` namespaces the store so
many tenants can share one warm cache safely.
"""

from __future__ import annotations

import dataclasses
import hashlib
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.bytecode.classfile import Application
from repro.bytecode.constraints import class_dependency_graph
from repro.bytecode.metrics import application_size_bytes
from repro.bytecode.reducer import reduce_application
from repro.bytecode.serializer import (
    ApplicationSerializer,
    serialize_application,
)
from repro.observability import get_metrics, get_tracer, profiled_phase
from repro.reduction.binary import binary_reduction
from repro.reduction.gbr import generalized_binary_reduction
from repro.reduction.lossy import LossyVariant, lossy_reduce
from repro.reduction.predicate import InstrumentedPredicate
from repro.reduction.problem import ReductionProblem, Stopwatch
from repro.resilience import Budget, FaultPlan, ResilientPredicate
from repro.resilience.faults import derive_seed
from repro.decompiler.oracle import build_reduction_problem
from repro.workloads.corpus import Benchmark, BuggyInstance

__all__ = [
    "ExperimentConfig",
    "InstanceOutcome",
    "config_from_payload",
    "config_to_payload",
    "error_outcome",
    "oracle_fingerprint",
    "outcome_signature",
    "RESIDENCY_METRICS",
    "probe_cap_for",
    "probe_pool",
    "progress_line",
    "run_instance",
    "run_corpus_experiment",
    "STRATEGY_NAMES",
]

#: Strategies the harness knows how to run on an instance.
STRATEGY_NAMES = ("our-reducer", "jreduce", "lossy-first", "lossy-last")


@dataclass
class ExperimentConfig:
    """Knobs shared by all strategy runs."""

    strategies: Tuple[str, ...] = STRATEGY_NAMES
    #: Simulated seconds charged per fresh predicate invocation (the
    #: paper's decompile+compile averages 33 s).
    simulated_seconds_per_run: float = 33.0
    #: Per-run budget: max fresh predicate attempts (None: unlimited).
    #: Exhaustion yields an anytime outcome with ``status == "partial"``.
    budget_calls: Optional[int] = None
    #: Per-run budget: max simulated seconds, charged
    #: ``simulated_seconds_per_run`` per attempt (None: unlimited).
    budget_seconds: Optional[float] = None
    #: Transient-failure retries per predicate attempt slot.
    retries: int = 0
    #: Per-attempt wall-clock deadline; overruns raise
    #: :class:`~repro.resilience.PredicateTimeout` and count as
    #: transient failures (None: no deadline).
    deadline_seconds: Optional[float] = None
    #: Record a crashed instance as an error-marked outcome and keep
    #: running the rest of the corpus, instead of aborting the bench.
    keep_going: bool = False
    #: Seeded fault injection (the chaos bench mode); None runs clean.
    chaos: Optional[FaultPlan] = None
    #: Probes evaluated concurrently per GBR prefix-search round (see
    #: :mod:`repro.parallel.speculate`); 1 is the sequential binary
    #: search.  Results are byte-identical either way — runs with a
    #: limiting budget silently serialize to keep their anytime partial
    #: results deterministic.
    speculate: int = 1
    #: Where speculative probes physically run: ``"thread"`` (the GIL-
    #: bound pool — overlaps external tool latency only) or
    #: ``"process"`` (a spawn-safe
    #: :class:`~repro.parallel.procpool.ProcessProbePool` whose workers
    #: rebuild the predicate chain from a picklable task spec — the
    #: only backend that overlaps the pure-Python probe work itself).
    #: Results are byte-identical across backends.
    probe_backend: str = "thread"
    #: Real seconds each fresh predicate attempt sleeps, modelling the
    #: paper's external decompile+compile tool (whose ~33 s the
    #: simulated clock only *charges*).  Unlike the virtual cost, the
    #: sleep is observable wall time that concurrent probes genuinely
    #: overlap — ``benchmarks/bench_procpool.py`` measures the probe
    #: backends against it.  0 (the default) sleeps nothing.
    tool_latency_seconds: float = 0.0
    #: Opt-in per-phase cProfile capture: each instance's reduce phase
    #: emits a ``profile`` event (top hotspots) into the trace.  Far
    #: more expensive than tracing — never on by default, and excluded
    #: from the telemetry-overhead gate (BENCH_6).
    profile_phases: bool = False
    #: Store-namespace tenant: runs with different tenants can share
    #: one warm predicate store without ever reading each other's
    #: cached outcomes (the tenant prefixes every oracle fingerprint).
    #: Empty (the default) keeps the historical fingerprint scheme.
    tenant: str = ""
    #: Total live workers (corpus workers + probe-pool workers) the run
    #: may hold at once; corpus runners size their probe pools down so
    #: the sum never exceeds it (see
    #: :class:`repro.parallel.scheduler.WorkerBudget`).  ``None`` (the
    #: default) keeps historical sizing: probe pools get exactly
    #: ``speculate`` workers, which deliberately oversubscribes CPUs to
    #: overlap external tool latency.  Set it on CPU-bound runs.
    worker_budget: Optional[int] = None

    @property
    def wants_resilience(self) -> bool:
        """Does any knob require the ResilientPredicate layer?"""
        return (
            self.budget_calls is not None
            or self.budget_seconds is not None
            or self.retries > 0
            or self.deadline_seconds is not None
        )


#: ExperimentConfig fields a service job payload may carry / override.
#: ``chaos`` travels as the FaultPlan's field dict; everything else is
#: a JSON scalar (tuples serialize as lists).  ``worker_budget`` stays
#: server-side: pool sizing is an operator concern, not a tenant knob.
CONFIG_PAYLOAD_FIELDS = (
    "strategies",
    "simulated_seconds_per_run",
    "budget_calls",
    "budget_seconds",
    "retries",
    "deadline_seconds",
    "keep_going",
    "chaos",
    "speculate",
    "probe_backend",
    "tool_latency_seconds",
    "profile_phases",
    "tenant",
)


def config_to_payload(config: "ExperimentConfig") -> Dict[str, Any]:
    """An :class:`ExperimentConfig` as a JSON-safe dict.

    The wire form of a reduction job's knobs: round-trips through
    :func:`config_from_payload` (the service's job ⇄ config bridge)
    and stays diffable in JSONL progress events.
    """
    payload: Dict[str, Any] = {}
    for name in CONFIG_PAYLOAD_FIELDS:
        value = getattr(config, name)
        if name == "strategies":
            value = list(value)
        elif name == "chaos" and value is not None:
            value = dataclasses.asdict(value)
        payload[name] = value
    return payload


def config_from_payload(
    payload: Dict[str, Any],
    base: Optional["ExperimentConfig"] = None,
) -> "ExperimentConfig":
    """Rebuild an :class:`ExperimentConfig` from a job payload.

    ``base`` supplies every field the payload omits (the service's
    per-server defaults); unknown keys raise ``ValueError`` so a typoed
    tenant knob fails the submission instead of silently running with
    defaults.
    """
    unknown = sorted(set(payload) - set(CONFIG_PAYLOAD_FIELDS))
    if unknown:
        raise ValueError(f"unknown config fields: {', '.join(unknown)}")
    updates: Dict[str, Any] = {}
    for name, value in payload.items():
        if name == "strategies" and value is not None:
            if isinstance(value, str):
                value = (value,)
            value = tuple(value)
            for strategy in value:
                if strategy not in STRATEGY_NAMES:
                    raise ValueError(f"unknown strategy {strategy!r}")
        elif name == "chaos" and value is not None:
            if not isinstance(value, dict):
                raise ValueError("chaos must be a fault-plan object")
            value = FaultPlan(**value)
        updates[name] = value
    base = base if base is not None else ExperimentConfig()
    return dataclasses.replace(base, **updates)


@dataclass
class InstanceOutcome:
    """One strategy's result on one instance."""

    benchmark_id: str
    decompiler: str
    strategy: str
    total_bytes: int
    total_classes: int
    final_bytes: int
    final_classes: int
    predicate_calls: int
    real_seconds: float
    simulated_seconds: float
    #: (simulated seconds, best bytes so far) steps.
    timeline: List[Tuple[float, int]] = field(default_factory=list)
    #: Telemetry for this run (solver stats, cache hit rates, probe
    #: counts) — the strategy's ``ReductionResult.extras['metrics']``.
    metrics: Dict[str, float] = field(default_factory=dict)
    #: ``"reduction"`` (the paper's decompiler-bug predicate) or
    #: ``"debloat"`` (coverage-based debloating) — report row-groups
    #: key on it.
    scenario: str = "reduction"
    #: ``"complete"`` | ``"partial"`` (budget exhausted; anytime
    #: best-so-far result) | ``"error"`` (the run crashed and
    #: ``keep_going`` recorded it instead of aborting the bench).
    status: str = "complete"
    #: Human-readable failure, set only when ``status == "error"``.
    error: Optional[str] = None

    @property
    def relative_bytes(self) -> float:
        return self.final_bytes / self.total_bytes if self.total_bytes else 1.0

    @property
    def relative_classes(self) -> float:
        return (
            self.final_classes / self.total_classes
            if self.total_classes
            else 1.0
        )


def oracle_fingerprint(
    app: Application, decompiler: str, granularity: str, tenant: str = ""
) -> str:
    """A stable predicate-store namespace (see :mod:`repro.parallel.store`).

    Hashes the serialized application bytes plus the decompiler name and
    predicate granularity (``"item"`` or ``"class"``), so two oracles
    share cached outcomes exactly when they are the same pure function.

    ``tenant`` prefixes the namespace: many tenants' corpus runs can
    share one warm sharded store without their entries ever mixing —
    an empty tenant (the default) keeps the historical fingerprints, so
    existing warm stores stay warm.
    """
    digest = hashlib.sha256(serialize_application(app)).hexdigest()
    prefix = f"tenant={tenant}:" if tenant else ""
    return f"{prefix}{granularity}:{decompiler}:{digest}"


def run_instance(
    benchmark: Benchmark,
    instance: BuggyInstance,
    strategy: str,
    config: Optional[ExperimentConfig] = None,
    store=None,
    probe_executor=None,
) -> InstanceOutcome:
    """Run one strategy on one instance.

    ``store`` (any :func:`repro.parallel.open_store` backend) makes
    predicate outcomes persist: a repeat run of the same instance
    against a warm store reports ``predicate_calls == 0``.

    ``probe_executor`` is the worker pool for speculative probes when
    ``config.speculate > 1`` (corpus runs share one across instances);
    left ``None``, a private pool is created and torn down per run.

    Resilience: ``config.chaos`` wraps the raw oracle in a seeded fault
    injector; budgets/retries/deadlines wrap it in a
    :class:`~repro.resilience.ResilientPredicate` (each run gets a
    fresh per-run :class:`~repro.resilience.Budget`).  When
    ``config.keep_going`` is set, any exception escaping the strategy —
    an unrecoverable oracle crash, retry exhaustion, a broken encoding
    — is recorded as an error-marked outcome instead of propagating.
    """
    config = config or ExperimentConfig()
    watch = Stopwatch()
    local_pool = None
    if config.speculate > 1 and probe_executor is None:
        local_pool = probe_pool(config)
        probe_executor = local_pool
    try:
        return _run_instance_inner(benchmark, instance, strategy, config,
                                   store, watch, probe_executor)
    except Exception as exc:  # noqa: BLE001 — degraded, not swallowed
        if not config.keep_going:
            raise
        return error_outcome(
            benchmark, instance, strategy, exc, real_seconds=watch.elapsed()
        )
    finally:
        if local_pool is not None:
            local_pool.shutdown(wait=True)


def probe_pool(config: ExperimentConfig, max_workers: Optional[int] = None):
    """The worker pool for speculative probes, or None when sequential.

    Kept separate from the instance-level pool of
    :mod:`repro.parallel.runner` — an instance worker blocking on probe
    futures scheduled into its *own* pool could deadlock.

    ``max_workers`` caps the pool's *physical* size (the worker-budget
    hook; see :class:`repro.parallel.scheduler.WorkerBudget`) without
    touching ``config.speculate`` — the speculation width K governs
    batch semantics and virtual-clock accounting, so results stay
    byte-identical however small the pool is squeezed.
    """
    if config.speculate <= 1:
        return None
    workers = config.speculate
    if max_workers is not None:
        workers = max(1, min(workers, max_workers))
    if config.probe_backend == "process":
        from repro.parallel.procpool import ProcessProbePool

        return ProcessProbePool(max_workers=workers)
    if config.probe_backend != "thread":
        raise ValueError(
            f"unknown probe backend {config.probe_backend!r} "
            "(expected 'thread' or 'process')"
        )
    from concurrent.futures import ThreadPoolExecutor

    return ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="jlreduce-probe"
    )


def probe_cap_for(
    config: Optional[ExperimentConfig], corpus_jobs: int, shared: bool = True
) -> Optional[int]:
    """The probe-pool size cap the worker budget imposes, or None.

    ``shared`` distinguishes the thread runner's one pool shared by all
    corpus workers from the process scheduler's per-worker pools (where
    the leftover budget divides across ``corpus_jobs``).
    """
    if config is None or config.worker_budget is None:
        return None
    from repro.parallel.scheduler import WorkerBudget

    return WorkerBudget(config.worker_budget).probe_pool_cap(
        corpus_jobs, shared=shared
    )


def _maybe_profile(config: ExperimentConfig, tracer):
    """A cProfile capture of the reduce phase, when opted in."""
    if config.profile_phases:
        return profiled_phase("reduce", tracer=tracer)
    return nullcontext()


def _run_instance_inner(
    benchmark: Benchmark,
    instance: BuggyInstance,
    strategy: str,
    config: ExperimentConfig,
    store,
    watch: Stopwatch,
    probe_executor=None,
) -> InstanceOutcome:
    tracer = get_tracer()
    app = benchmark.app
    oracle = instance.oracle
    total_bytes = application_size_bytes(app)
    total_classes = len(app.classes)
    # Fresh per run (not shared via the oracle), so the memo telemetry
    # in outcome.metrics is deterministic regardless of run history.
    serializer = ApplicationSerializer(app)

    def _fingerprint(granularity: str) -> Optional[str]:
        if store is None:
            return None
        return oracle_fingerprint(
            app, instance.decompiler, granularity, tenant=config.tenant
        )

    def _chaos_key(granularity: str) -> str:
        return (
            f"{benchmark.benchmark_id}:{instance.decompiler}:"
            f"{strategy}:{granularity}"
        )

    def _resilient(raw, granularity: str):
        """Layer tool latency, chaos, and fault handling under the cache."""
        key = _chaos_key(granularity)
        wrapped = raw
        if config.tool_latency_seconds > 0:
            from repro.parallel.procpool import ToolLatencyPredicate

            wrapped = ToolLatencyPredicate(
                wrapped, config.tool_latency_seconds
            )
        if config.chaos is not None:
            wrapped = config.chaos.apply(wrapped, key)
        if config.wants_resilience or config.chaos is not None:
            budget = Budget(
                max_calls=config.budget_calls,
                max_seconds=config.budget_seconds,
                seconds_per_call=config.simulated_seconds_per_run,
            )
            wrapped = ResilientPredicate(
                wrapped,
                budget=budget,
                retries=config.retries,
                deadline_seconds=config.deadline_seconds,
                seed=derive_seed(0, key),
            )
        return wrapped

    def _task_spec(granularity: str):
        """The picklable probe recipe for the process backend, or None.

        Workers rebuild the same chain :func:`_resilient` layers here —
        oracle, tool latency, chaos, retries/deadline — from this spec
        (see :func:`repro.parallel.procpool.build_worker_predicate`).
        Budgets stay parent-side: a limiting budget serializes
        speculation before any task reaches the pool.
        """
        if config.probe_backend != "process" or config.speculate <= 1:
            return None
        if getattr(instance, "scenario", "reduction") != "reduction":
            # Worker processes rebuild predicates from decompiler names;
            # scenario oracles (debloat) have no registry entry, so
            # their probes stay in-parent (thread-pool semantics).
            return None
        from repro.parallel.procpool import ProbeTaskSpec

        return ProbeTaskSpec(
            app_bytes=serialize_application(app),
            decompiler=instance.decompiler,
            granularity=granularity,
            chaos=config.chaos,
            chaos_key=_chaos_key(granularity),
            retries=config.retries,
            deadline_seconds=config.deadline_seconds,
            tool_latency_seconds=config.tool_latency_seconds,
        )

    # The run's virtual clock, installed on the tracer before the
    # instrumented predicate exists (it is built inside instance.setup):
    # the cell indirection lets every span of this instance — including
    # instance.run itself — carry ``vstart``/``vduration`` in simulated
    # seconds next to its wall clock.
    instrumented_cell: List[InstrumentedPredicate] = []

    def _virtual_now() -> float:
        return (
            instrumented_cell[0].virtual_now() if instrumented_cell else 0.0
        )

    with tracer.clock(_virtual_now), tracer.span(
        "instance.run",
        benchmark=benchmark.benchmark_id,
        decompiler=instance.decompiler,
        strategy=strategy,
    ):
        if strategy == "jreduce":
            with tracer.span("instance.setup", strategy=strategy):
                instrumented = InstrumentedPredicate(
                    _resilient(oracle.class_predicate, "class"),
                    cost_per_call=config.simulated_seconds_per_run,
                    size_of=serializer.size_of_classes,
                    store=store,
                    fingerprint=_fingerprint("class"),
                    task_spec=_task_spec("class"),
                )
                instrumented_cell.append(instrumented)
                graph = class_dependency_graph(app)
                # Scenario oracles (debloat) pin more than the entry
                # class — duck-typed so DecompilerOracle needs no hook.
                required = list(
                    getattr(oracle, "required_classes", None)
                    or [app.entry_class]
                )
            with tracer.span("instance.reduce", strategy=strategy), (
                _maybe_profile(config, tracer)
            ):
                result = binary_reduction(
                    graph,
                    instrumented,
                    required=required,
                )
            with tracer.span("instance.measure", strategy=strategy):
                reduced = _class_subset(app, result.solution)
        else:
            with tracer.span("instance.setup", strategy=strategy):
                # Scenario oracles build their own problem (on a fresh
                # oracle, keeping memo telemetry deterministic); the
                # default is the paper's decompiler-bug problem.
                builder = getattr(oracle, "build_problem", None)
                if builder is not None:
                    problem = builder()
                else:
                    problem = build_reduction_problem(app, oracle.decompiler)
                instrumented = InstrumentedPredicate(
                    _resilient(problem.predicate, "item"),
                    cost_per_call=config.simulated_seconds_per_run,
                    size_of=serializer.size_of_items,
                    store=store,
                    fingerprint=_fingerprint("item"),
                    task_spec=_task_spec("item"),
                )
                instrumented_cell.append(instrumented)
                problem = ReductionProblem(
                    variables=problem.variables,
                    predicate=instrumented,
                    constraint=problem.constraint,
                    description=problem.description,
                )
            with tracer.span("instance.reduce", strategy=strategy), (
                _maybe_profile(config, tracer)
            ):
                if strategy == "our-reducer":
                    result = generalized_binary_reduction(
                        problem,
                        speculate=config.speculate,
                        probe_executor=probe_executor,
                    )
                elif strategy == "lossy-first":
                    result = lossy_reduce(problem, LossyVariant.FIRST)
                elif strategy == "lossy-last":
                    result = lossy_reduce(problem, LossyVariant.LAST)
                else:
                    raise ValueError(f"unknown strategy {strategy!r}")
            with tracer.span("instance.measure", strategy=strategy):
                reduced = reduce_application(app, result.solution)

    return InstanceOutcome(
        benchmark_id=benchmark.benchmark_id,
        decompiler=instance.decompiler,
        strategy=strategy,
        scenario=getattr(instance, "scenario", "reduction"),
        total_bytes=total_bytes,
        total_classes=total_classes,
        final_bytes=application_size_bytes(reduced),
        final_classes=len(reduced.classes),
        predicate_calls=instrumented.calls,
        real_seconds=watch.elapsed(),
        simulated_seconds=instrumented.virtual_now(),
        timeline=list(instrumented.timeline),
        metrics=dict(result.extras.get("metrics", {})),
        status=result.status,
    )


def error_outcome(
    benchmark: Benchmark,
    instance: BuggyInstance,
    strategy: str,
    error: BaseException,
    real_seconds: float = 0.0,
) -> InstanceOutcome:
    """An error-marked outcome for a crashed instance run.

    Graceful degradation: the instance keeps its place in the corpus
    report (sizes pinned at "no reduction"), the failure is legible in
    ``outcome.error``, and the ``runner.failures`` counter records it
    for trace summaries.
    """
    get_metrics().counter("runner.failures").inc()
    app = benchmark.app
    total_bytes = application_size_bytes(app)
    return InstanceOutcome(
        benchmark_id=benchmark.benchmark_id,
        decompiler=instance.decompiler,
        strategy=strategy,
        scenario=getattr(instance, "scenario", "reduction"),
        total_bytes=total_bytes,
        total_classes=len(app.classes),
        final_bytes=total_bytes,
        final_classes=len(app.classes),
        predicate_calls=0,
        real_seconds=real_seconds,
        simulated_seconds=0.0,
        status="error",
        error=f"{type(error).__name__}: {error}",
    )


#: Per-run metric names that report cache-tier *residency* rather than
#: semantics: which process's store handle had a shard loaded, how many
#: foreign lines its scan walked, what its LRU evicted.  They are
#: faithful telemetry but inherently placement-dependent — two runs with
#: identical probe traffic report different values depending on which
#: worker's handle served them — so outcome comparisons exclude them.
RESIDENCY_METRICS = (
    "store.shard_loads",
    "store.lines_scanned",
    "store.evictions",
    "store.compactions",
)


def outcome_signature(outcome: InstanceOutcome) -> Dict[str, Any]:
    """The deterministic identity of an outcome, for differential tests.

    Everything except wall time (``real_seconds``) and the
    placement-dependent residency counters (:data:`RESIDENCY_METRICS`)
    in the per-run metrics extras.  Two runs of the same corpus agree on
    this signature across sequential / thread / process backends, any
    job count, and any dispatch order — including warm-store and chaos
    lanes.
    """
    record = asdict(outcome)
    record.pop("real_seconds", None)
    metrics = record.get("metrics")
    if metrics:
        record["metrics"] = {
            name: value
            for name, value in metrics.items()
            if name not in RESIDENCY_METRICS
        }
    return record


def progress_line(outcome: InstanceOutcome) -> str:
    """One human-readable status line per finished instance."""
    prefix = (
        f"{outcome.benchmark_id}/{outcome.decompiler}/{outcome.strategy}"
    )
    if outcome.status == "error":
        return f"{prefix}: ERROR {outcome.error}"
    suffix = " (partial: budget exhausted)" if outcome.status == "partial" else ""
    return (
        f"{prefix}: {outcome.relative_bytes:.1%} bytes in "
        f"{outcome.predicate_calls} runs{suffix}"
    )


def run_corpus_experiment(
    benchmarks: Sequence[Benchmark],
    config: Optional[ExperimentConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    store=None,
) -> List[InstanceOutcome]:
    """Run every configured strategy on every buggy instance.

    Args:
        benchmarks: the corpus.
        config: shared strategy knobs.
        progress: optional per-instance status-line callback.
        jobs: worker threads; ``jobs != 1`` delegates to
            :func:`repro.parallel.run_parallel_corpus_experiment`
            (None/0 there means one worker per CPU).  Outcomes are
            merged in serial order either way.
        store: optional predicate store (any
            :func:`repro.parallel.open_store` backend) shared by every
            instance run.
    """
    config = config or ExperimentConfig()
    if jobs != 1:
        from repro.parallel import run_parallel_corpus_experiment

        return run_parallel_corpus_experiment(
            benchmarks, config, progress=progress, jobs=jobs, store=store
        )
    outcomes: List[InstanceOutcome] = []
    probes = probe_pool(config, max_workers=probe_cap_for(config, 1))
    try:
        for benchmark in benchmarks:
            for instance in benchmark.instances:
                for strategy in config.strategies:
                    outcome = run_instance(
                        benchmark,
                        instance,
                        strategy,
                        config,
                        store,
                        probe_executor=probes,
                    )
                    outcomes.append(outcome)
                    if progress is not None:
                        progress(progress_line(outcome))
    finally:
        if probes is not None:
            probes.shutdown(wait=True)
    return outcomes


def _class_subset(app, kept_classes: FrozenSet[str]):
    return app.replace_classes(
        tuple(c for c in app.classes if c.name in kept_classes)
    )

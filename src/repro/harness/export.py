"""CSV export of experiment results.

The text renderers in :mod:`repro.harness.report` are for reading; this
module writes machine-readable CSVs so the figures can be re-plotted
with any tool:

- ``outcomes.csv`` — one row per (instance, strategy) with all sizes,
  times and call counts,
- ``cfd_<metric>.csv`` — the Figure 8a series, one (strategy, value,
  count) row per step,
- ``timeline.csv`` — the Figure 8b series, one (strategy, seconds,
  mean_factor) row per grid point.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Dict, List, Sequence, Tuple

from repro.harness.experiments import InstanceOutcome
from repro.harness.metrics import cumulative_frequency
from repro.harness.report import by_strategy
from repro.harness.timeline import mean_reduction_over_time

__all__ = ["export_outcomes", "export_cfds", "export_timeline", "export_all"]


def export_outcomes(
    outcomes: Sequence[InstanceOutcome], path: pathlib.Path
) -> None:
    """Write the per-outcome table."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "benchmark",
                "decompiler",
                "strategy",
                "total_bytes",
                "final_bytes",
                "relative_bytes",
                "total_classes",
                "final_classes",
                "relative_classes",
                "predicate_calls",
                "real_seconds",
                "simulated_seconds",
            ]
        )
        for o in outcomes:
            writer.writerow(
                [
                    o.benchmark_id,
                    o.decompiler,
                    o.strategy,
                    o.total_bytes,
                    o.final_bytes,
                    f"{o.relative_bytes:.6f}",
                    o.total_classes,
                    o.final_classes,
                    f"{o.relative_classes:.6f}",
                    o.predicate_calls,
                    f"{o.real_seconds:.6f}",
                    f"{o.simulated_seconds:.3f}",
                ]
            )


def export_cfds(
    outcomes: Sequence[InstanceOutcome], directory: pathlib.Path
) -> List[pathlib.Path]:
    """Write one CFD CSV per Figure 8a metric; returns the paths."""
    metrics = {
        "time": lambda o: o.simulated_seconds / 3600.0,
        "classes": lambda o: o.relative_classes,
        "bytes": lambda o: o.relative_bytes,
    }
    paths = []
    for metric, value_of in metrics.items():
        path = directory / f"cfd_{metric}.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["strategy", "value", "count"])
            for strategy, group in by_strategy(outcomes).items():
                series = cumulative_frequency([value_of(o) for o in group])
                for value, count in series:
                    writer.writerow([strategy, f"{value:.6f}", count])
        paths.append(path)
    return paths


def export_timeline(
    outcomes: Sequence[InstanceOutcome],
    path: pathlib.Path,
    points: int = 24,
) -> None:
    """Write the Figure 8b series on a shared grid."""
    groups = by_strategy(outcomes)
    horizon = max(o.simulated_seconds for o in outcomes)
    grid = [horizon * i / (points - 1) for i in range(points)]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["strategy", "seconds", "mean_reduction_factor"])
        for strategy, group in groups.items():
            for when, factor in mean_reduction_over_time(group, grid=grid):
                writer.writerow([strategy, f"{when:.3f}", f"{factor:.4f}"])


def export_all(
    outcomes: Sequence[InstanceOutcome], directory
) -> Dict[str, pathlib.Path]:
    """Write every CSV into ``directory``; returns name -> path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, pathlib.Path] = {}
    outcomes_path = directory / "outcomes.csv"
    export_outcomes(outcomes, outcomes_path)
    written["outcomes"] = outcomes_path
    for path in export_cfds(outcomes, directory):
        written[path.stem] = path
    timeline_path = directory / "timeline.csv"
    export_timeline(outcomes, timeline_path)
    written["timeline"] = timeline_path
    return written

"""Aggregate metrics: geometric means, quantiles, CFD series.

The paper reports geometric means throughout ("On average (geometric
mean), those benchmarks have 184 classes ...") and plots cumulative
frequency diagrams (Figure 8a): for each metric, how many benchmarks
finished at or below each value.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

__all__ = ["geometric_mean", "quantile", "cumulative_frequency"]


def geometric_mean(values: Iterable[float]) -> float:
    """The geometric mean; every value must be positive."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    total = 0.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean needs positive values, got {value}")
        total += math.log(value)
    result = math.exp(total / len(values))
    # The geometric mean lies in [min, max] mathematically; the log/exp
    # round-trip can land an ulp outside (e.g. gmean([17, 17]) = 17+eps),
    # so clamp it back into its bounds.
    return min(max(result, min(values)), max(values))


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile, 0 <= q <= 1."""
    if not values:
        raise ValueError("quantile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def cumulative_frequency(
    values: Sequence[float],
) -> List[Tuple[float, int]]:
    """The CFD series: sorted (value, #values <= value) pairs.

    This is exactly what Figure 8a plots per strategy per metric —
    "steeper is better".
    """
    ordered = sorted(values)
    series: List[Tuple[float, int]] = []
    for i, value in enumerate(ordered, start=1):
        if series and series[-1][0] == value:
            series[-1] = (value, i)
        else:
            series.append((value, i))
    return series

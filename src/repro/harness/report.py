"""Text renderers for the paper's tables and figures.

Every figure in the evaluation becomes a plain-text table: CFDs print
their quantile rows, Figure 8b prints its (time, factor) series, and the
headline/statistics/lossy sections print the same aggregate numbers the
paper quotes in prose.  The benchmarks tee these into
``bench_output.txt`` so EXPERIMENTS.md's paper-vs-measured entries are
regenerable.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.harness.experiments import InstanceOutcome
from repro.harness.metrics import geometric_mean, quantile
from repro.harness.stats import CorpusStatistics

__all__ = [
    "ResultsWriter",
    "StreamingReport",
    "by_strategy",
    "iter_results",
    "render_cfd_table",
    "render_headline",
    "render_lossy_comparison",
    "render_statistics",
    "render_timeline",
    "report_from_results",
]

_QUANTILES = (0.10, 0.25, 0.50, 0.75, 0.90, 1.00)


# ----------------------------------------------------------------------
# Streaming results (paper-scale corpora)
# ----------------------------------------------------------------------
#
# A 1000-app corpus run must not hold its outcomes in the parent: the
# scheduler streams each InstanceOutcome (serial order) to a JSONL
# results file via ResultsWriter, and StreamingReport folds each row
# into O(#row-groups) aggregates — geometric means kept as running
# log-sums — so the paper-style table costs no O(corpus) memory at
# either end.  ``jlreduce report`` re-renders the table from the file.


class ResultsWriter:
    """Append InstanceOutcomes to a JSONL results file, one per line.

    Flushes per row, so a killed run keeps everything committed before
    it (at worst one torn final line — the tolerant readers skip it,
    same policy as the trace shards and the predicate store).
    """

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")
        self.rows = 0

    def write(self, outcome: Union[InstanceOutcome, Dict[str, Any]]) -> None:
        row = asdict(outcome) if not isinstance(outcome, dict) else outcome
        self._handle.write(json.dumps(row, sort_keys=True) + "\n")
        self._handle.flush()
        self.rows += 1

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "ResultsWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def iter_results(path: str) -> Iterator[Dict[str, Any]]:
    """Stream result rows back from a JSONL file (O(1) memory).

    A torn final line — the partial write of a killed run — is skipped;
    a malformed line elsewhere raises.
    """
    with open(path, encoding="utf-8") as handle:
        pending: Optional[str] = None
        lineno = 0
        for lineno, line in enumerate(handle, start=1):
            if pending is not None:
                raise ValueError(
                    f"bad results JSONL at line {lineno - 1}: {pending}"
                )
            stripped = line.strip()
            if not stripped:
                continue
            try:
                row = json.loads(stripped)
            except ValueError as exc:
                if line.endswith("\n"):
                    pending = str(exc)
                continue
            if not isinstance(row, dict):
                raise ValueError(
                    f"bad results JSONL at line {lineno}: not an object"
                )
            yield row
        if pending is not None:
            raise ValueError(
                f"bad results JSONL at line {lineno}: {pending}"
            )


@dataclass
class _GroupAggregate:
    """Streaming aggregates for one (scenario, strategy) row."""

    count: int = 0
    errors: int = 0
    partial: int = 0
    calls: int = 0
    log_bytes: float = 0.0
    log_classes: float = 0.0
    log_sim: float = 0.0
    real_seconds: float = 0.0

    def add(self, row: Dict[str, Any]) -> None:
        self.count += 1
        status = row.get("status", "complete")
        if status == "error":
            self.errors += 1
            return  # error rows carry no-reduction placeholders
        if status == "partial":
            self.partial += 1
        self.calls += int(row.get("predicate_calls", 0))
        total_b = max(float(row.get("total_bytes", 0)), 1.0)
        total_c = max(float(row.get("total_classes", 0)), 1.0)
        self.log_bytes += math.log(
            max(float(row.get("final_bytes", total_b)) / total_b, 1e-9)
        )
        self.log_classes += math.log(
            max(float(row.get("final_classes", total_c)) / total_c, 1e-9)
        )
        self.log_sim += math.log(
            max(float(row.get("simulated_seconds", 0.0)), 1e-9)
        )
        self.real_seconds += float(row.get("real_seconds", 0.0))

    @property
    def reduced(self) -> int:
        return self.count - self.errors

    def _geo(self, log_sum: float) -> float:
        return math.exp(log_sum / self.reduced) if self.reduced else 0.0

    def row(self, strategy: str) -> str:
        line = (
            f"{strategy:<15s} {self.count:>5d}  "
            f"{self._geo(self.log_bytes):7.1%}  "
            f"{self._geo(self.log_classes):7.1%}  "
            f"{self.calls / self.reduced if self.reduced else 0.0:8.1f}  "
            f"{self._geo(self.log_sim) / 3600:7.2f}h  "
            f"{self.real_seconds:9.0f}s"
        )
        flags = []
        if self.partial:
            flags.append(f"{self.partial} partial")
        if self.errors:
            flags.append(f"{self.errors} errors")
        return line + ("  (" + ", ".join(flags) + ")" if flags else "")


class StreamingReport:
    """Fold outcomes (or result rows) into a paper-style corpus table.

    Row-groups are scenarios (the paper's decompiler-bug reduction
    first, then debloating and any other predicate riding the same
    ``Problem`` interface); rows are strategies.  Geometric means are
    maintained as running log-sums, so memory is O(scenarios ×
    strategies) however large the corpus — feed it a million rows.
    """

    def __init__(self) -> None:
        self._groups: Dict[Tuple[str, str], _GroupAggregate] = {}
        self._order: List[Tuple[str, str]] = []
        self.rows = 0

    def add(self, outcome: Union[InstanceOutcome, Dict[str, Any]]) -> None:
        row = asdict(outcome) if not isinstance(outcome, dict) else outcome
        key = (
            row.get("scenario", "reduction"),
            row.get("strategy", "unknown"),
        )
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _GroupAggregate()
            self._order.append(key)
        group.add(row)
        self.rows += 1

    def render(self) -> str:
        lines = [
            "Corpus report",
            "=============",
        ]
        header = (
            f"{'strategy':<15s} {'n':>5s}  {'bytes':>7s}  {'classes':>7s}  "
            f"{'calls':>8s}  {'simtime':>8s}  {'walltime':>10s}"
        )
        scenarios: List[str] = []
        for scenario, _ in self._order:
            if scenario not in scenarios:
                scenarios.append(scenario)
        for scenario in scenarios:
            lines.append("")
            title = f"scenario: {scenario}"
            lines.append(title)
            lines.append("-" * len(title))
            lines.append(header)
            for key in self._order:
                if key[0] != scenario:
                    continue
                lines.append(self._groups[key].row(key[1]))
        lines.append("")
        lines.append(f"{self.rows} result rows")
        return "\n".join(lines)


def report_from_results(path: str) -> StreamingReport:
    """Build the streaming report by replaying a results JSONL file.

    Raises ``ValueError`` if the file holds no result rows — rendering
    an all-empty table for a results file that streamed nothing (a
    bench that crashed before its first commit, or the wrong path)
    hides the real failure; ``OSError`` propagates for a missing file.
    """
    report = StreamingReport()
    for row in iter_results(path):
        report.add(row)
    if not report.rows:
        raise ValueError(
            "no result rows (did the bench run stream anything "
            "with --results?)"
        )
    return report


def by_strategy(
    outcomes: Sequence[InstanceOutcome],
) -> Dict[str, List[InstanceOutcome]]:
    """Group outcomes per strategy (stable order of first appearance)."""
    groups: Dict[str, List[InstanceOutcome]] = {}
    for outcome in outcomes:
        groups.setdefault(outcome.strategy, []).append(outcome)
    return groups


def render_cfd_table(
    outcomes: Sequence[InstanceOutcome],
    metric: str,
    title: str,
) -> str:
    """One Figure 8a panel as quantile rows per strategy.

    ``metric``: 'time' (simulated hours), 'classes', or 'bytes'
    (relative final sizes).
    """

    def value_of(outcome: InstanceOutcome) -> float:
        if metric == "time":
            return outcome.simulated_seconds / 3600.0
        if metric == "classes":
            return outcome.relative_classes
        if metric == "bytes":
            return outcome.relative_bytes
        raise ValueError(f"unknown metric {metric!r}")

    def fmt(value: float) -> str:
        if metric == "time":
            return f"{value:7.2f}h"
        return f"{value:7.1%}"

    lines = [title, "-" * len(title)]
    header = "strategy        " + "".join(
        f"  p{int(q * 100):<3d}   " for q in _QUANTILES
    ) + "  geo-mean"
    lines.append(header)
    for strategy, group in by_strategy(outcomes).items():
        values = [value_of(o) for o in group]
        row = f"{strategy:<15s}"
        for q in _QUANTILES:
            row += " " + fmt(quantile(values, q))
        safe = [max(v, 1e-9) for v in values]
        row += "   " + fmt(geometric_mean(safe))
        lines.append(row)
    return "\n".join(lines)


def render_headline(outcomes: Sequence[InstanceOutcome]) -> str:
    """The Section 5 headline numbers.

    Paper: "Our tool reduces Java bytecode to 4.6% of its original size,
    which is 5.3 times better than the 24.3% achieved by J-Reduce.  It
    does this while only being 3.1 times slower."
    """
    groups = by_strategy(outcomes)
    lines = ["Headline comparison", "-------------------"]
    means: Dict[str, Tuple[float, float, float]] = {}
    for strategy, group in groups.items():
        bytes_mean = geometric_mean(
            [max(o.relative_bytes, 1e-9) for o in group]
        )
        classes_mean = geometric_mean(
            [max(o.relative_classes, 1e-9) for o in group]
        )
        time_mean = geometric_mean(
            [max(o.simulated_seconds, 1e-9) for o in group]
        )
        means[strategy] = (bytes_mean, classes_mean, time_mean)
        lines.append(
            f"{strategy:<15s} bytes {bytes_mean:6.1%}   "
            f"classes {classes_mean:6.1%}   "
            f"time {time_mean:8.1f}s   "
            f"({len(group)} instances)"
        )
    if "our-reducer" in means and "jreduce" in means:
        ours, theirs = means["our-reducer"], means["jreduce"]
        lines.append(
            f"our-reducer vs jreduce: {theirs[0] / ours[0]:.1f}x better on "
            f"bytes, {theirs[1] / ours[1]:.1f}x better on classes, "
            f"{ours[2] / theirs[2]:.1f}x slower"
        )
        lines.append(
            "paper:                  5.3x better on bytes, 2.7x better on "
            "classes, 3.1x slower"
        )
    return "\n".join(lines)


def render_lossy_comparison(outcomes: Sequence[InstanceOutcome]) -> str:
    """The Section 4.3/5 lossy-encoding analysis.

    Paper: first lossy produces 5% more bytes, second 8% more; our
    reducer is strictly better than them on 48% / 51% of benchmarks.
    """
    groups = by_strategy(outcomes)
    ours = {
        (o.benchmark_id, o.decompiler): o
        for o in groups.get("our-reducer", ())
    }
    lines = ["Lossy encodings vs our reducer", "------------------------------"]
    for variant in ("lossy-first", "lossy-last"):
        group = groups.get(variant, ())
        if not group:
            continue
        extra_bytes: List[float] = []
        strictly_better = 0
        compared = 0
        for outcome in group:
            mine = ours.get((outcome.benchmark_id, outcome.decompiler))
            if mine is None:
                continue
            compared += 1
            extra_bytes.append(
                max(outcome.relative_bytes, 1e-9)
                / max(mine.relative_bytes, 1e-9)
            )
            if mine.final_bytes < outcome.final_bytes:
                strictly_better += 1
        if not compared:
            continue
        lines.append(
            f"{variant:<12s} produces {geometric_mean(extra_bytes) - 1:+.1%} "
            f"bytes vs our reducer; ours strictly better on "
            f"{strictly_better / compared:.0%} of instances "
            f"({compared} compared)"
        )
    lines.append(
        "paper:       +5% / +8% bytes; strictly better on 48% / 51%"
    )
    return "\n".join(lines)


def render_statistics(stats: CorpusStatistics) -> str:
    lines = [
        "Corpus statistics",
        "-----------------",
        "ours : " + stats.row(),
        "paper: 227 instances over 94 programs | geo-means: 184 classes, "
        "285.0 KB, 9.2 errors, 2.9k items, 8.7k clauses, 97.5% edges "
        "among clauses",
    ]
    return "\n".join(lines)


def render_timeline(
    series_by_strategy: Dict[str, List[Tuple[float, float]]],
) -> str:
    """Figure 8b as text: mean reduction factor over simulated time."""
    lines = [
        "Reduction over time (mean factor; simulated clock)",
        "---------------------------------------------------",
    ]
    for strategy, series in series_by_strategy.items():
        lines.append(strategy)
        for when, factor in series:
            bar = "#" * min(int(round(factor)), 60)
            lines.append(f"  {when / 3600:6.2f}h  x{factor:6.2f}  {bar}")
    return "\n".join(lines)

"""Text renderers for the paper's tables and figures.

Every figure in the evaluation becomes a plain-text table: CFDs print
their quantile rows, Figure 8b prints its (time, factor) series, and the
headline/statistics/lossy sections print the same aggregate numbers the
paper quotes in prose.  The benchmarks tee these into
``bench_output.txt`` so EXPERIMENTS.md's paper-vs-measured entries are
regenerable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.harness.experiments import InstanceOutcome
from repro.harness.metrics import geometric_mean, quantile
from repro.harness.stats import CorpusStatistics

__all__ = [
    "by_strategy",
    "render_cfd_table",
    "render_headline",
    "render_lossy_comparison",
    "render_statistics",
    "render_timeline",
]

_QUANTILES = (0.10, 0.25, 0.50, 0.75, 0.90, 1.00)


def by_strategy(
    outcomes: Sequence[InstanceOutcome],
) -> Dict[str, List[InstanceOutcome]]:
    """Group outcomes per strategy (stable order of first appearance)."""
    groups: Dict[str, List[InstanceOutcome]] = {}
    for outcome in outcomes:
        groups.setdefault(outcome.strategy, []).append(outcome)
    return groups


def render_cfd_table(
    outcomes: Sequence[InstanceOutcome],
    metric: str,
    title: str,
) -> str:
    """One Figure 8a panel as quantile rows per strategy.

    ``metric``: 'time' (simulated hours), 'classes', or 'bytes'
    (relative final sizes).
    """

    def value_of(outcome: InstanceOutcome) -> float:
        if metric == "time":
            return outcome.simulated_seconds / 3600.0
        if metric == "classes":
            return outcome.relative_classes
        if metric == "bytes":
            return outcome.relative_bytes
        raise ValueError(f"unknown metric {metric!r}")

    def fmt(value: float) -> str:
        if metric == "time":
            return f"{value:7.2f}h"
        return f"{value:7.1%}"

    lines = [title, "-" * len(title)]
    header = "strategy        " + "".join(
        f"  p{int(q * 100):<3d}   " for q in _QUANTILES
    ) + "  geo-mean"
    lines.append(header)
    for strategy, group in by_strategy(outcomes).items():
        values = [value_of(o) for o in group]
        row = f"{strategy:<15s}"
        for q in _QUANTILES:
            row += " " + fmt(quantile(values, q))
        safe = [max(v, 1e-9) for v in values]
        row += "   " + fmt(geometric_mean(safe))
        lines.append(row)
    return "\n".join(lines)


def render_headline(outcomes: Sequence[InstanceOutcome]) -> str:
    """The Section 5 headline numbers.

    Paper: "Our tool reduces Java bytecode to 4.6% of its original size,
    which is 5.3 times better than the 24.3% achieved by J-Reduce.  It
    does this while only being 3.1 times slower."
    """
    groups = by_strategy(outcomes)
    lines = ["Headline comparison", "-------------------"]
    means: Dict[str, Tuple[float, float, float]] = {}
    for strategy, group in groups.items():
        bytes_mean = geometric_mean(
            [max(o.relative_bytes, 1e-9) for o in group]
        )
        classes_mean = geometric_mean(
            [max(o.relative_classes, 1e-9) for o in group]
        )
        time_mean = geometric_mean(
            [max(o.simulated_seconds, 1e-9) for o in group]
        )
        means[strategy] = (bytes_mean, classes_mean, time_mean)
        lines.append(
            f"{strategy:<15s} bytes {bytes_mean:6.1%}   "
            f"classes {classes_mean:6.1%}   "
            f"time {time_mean:8.1f}s   "
            f"({len(group)} instances)"
        )
    if "our-reducer" in means and "jreduce" in means:
        ours, theirs = means["our-reducer"], means["jreduce"]
        lines.append(
            f"our-reducer vs jreduce: {theirs[0] / ours[0]:.1f}x better on "
            f"bytes, {theirs[1] / ours[1]:.1f}x better on classes, "
            f"{ours[2] / theirs[2]:.1f}x slower"
        )
        lines.append(
            "paper:                  5.3x better on bytes, 2.7x better on "
            "classes, 3.1x slower"
        )
    return "\n".join(lines)


def render_lossy_comparison(outcomes: Sequence[InstanceOutcome]) -> str:
    """The Section 4.3/5 lossy-encoding analysis.

    Paper: first lossy produces 5% more bytes, second 8% more; our
    reducer is strictly better than them on 48% / 51% of benchmarks.
    """
    groups = by_strategy(outcomes)
    ours = {
        (o.benchmark_id, o.decompiler): o
        for o in groups.get("our-reducer", ())
    }
    lines = ["Lossy encodings vs our reducer", "------------------------------"]
    for variant in ("lossy-first", "lossy-last"):
        group = groups.get(variant, ())
        if not group:
            continue
        extra_bytes: List[float] = []
        strictly_better = 0
        compared = 0
        for outcome in group:
            mine = ours.get((outcome.benchmark_id, outcome.decompiler))
            if mine is None:
                continue
            compared += 1
            extra_bytes.append(
                max(outcome.relative_bytes, 1e-9)
                / max(mine.relative_bytes, 1e-9)
            )
            if mine.final_bytes < outcome.final_bytes:
                strictly_better += 1
        if not compared:
            continue
        lines.append(
            f"{variant:<12s} produces {geometric_mean(extra_bytes) - 1:+.1%} "
            f"bytes vs our reducer; ours strictly better on "
            f"{strictly_better / compared:.0%} of instances "
            f"({compared} compared)"
        )
    lines.append(
        "paper:       +5% / +8% bytes; strictly better on 48% / 51%"
    )
    return "\n".join(lines)


def render_statistics(stats: CorpusStatistics) -> str:
    lines = [
        "Corpus statistics",
        "-----------------",
        "ours : " + stats.row(),
        "paper: 227 instances over 94 programs | geo-means: 184 classes, "
        "285.0 KB, 9.2 errors, 2.9k items, 8.7k clauses, 97.5% edges "
        "among clauses",
    ]
    return "\n".join(lines)


def render_timeline(
    series_by_strategy: Dict[str, List[Tuple[float, float]]],
) -> str:
    """Figure 8b as text: mean reduction factor over simulated time."""
    lines = [
        "Reduction over time (mean factor; simulated clock)",
        "---------------------------------------------------",
    ]
    for strategy, series in series_by_strategy.items():
        lines.append(strategy)
        for when, factor in series:
            bar = "#" * min(int(round(factor)), 60)
            lines.append(f"  {when / 3600:6.2f}h  x{factor:6.2f}  {bar}")
    return "\n".join(lines)

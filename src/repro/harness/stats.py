"""Corpus statistics (the paper's "Statistics" paragraph).

The paper: "On average (geometric mean), those benchmarks have 184
classes, 285 KB, 9.2 errors produced by the compiler, 2.9k reducible
items, 8.7k clauses in the model, and 97.5% edges among the clauses."

:func:`corpus_statistics` computes the same row for our corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.bytecode.constraints import generate_constraints
from repro.bytecode.items import items_of
from repro.bytecode.metrics import application_size_bytes
from repro.harness.metrics import geometric_mean
from repro.workloads.corpus import Benchmark

__all__ = ["CorpusStatistics", "corpus_statistics"]


@dataclass(frozen=True)
class CorpusStatistics:
    """Geometric means across the buggy instances of the corpus."""

    num_benchmarks: int
    num_instances: int
    classes: float
    kilobytes: float
    errors: float
    reducible_items: float
    clauses: float
    edge_fraction: float

    def row(self) -> str:
        return (
            f"{self.num_instances} instances over "
            f"{self.num_benchmarks} programs | geo-means: "
            f"{self.classes:.0f} classes, {self.kilobytes:.1f} KB, "
            f"{self.errors:.1f} errors, "
            f"{self.reducible_items / 1000:.1f}k items, "
            f"{self.clauses / 1000:.1f}k clauses, "
            f"{self.edge_fraction:.1%} edges among clauses"
        )


def corpus_statistics(benchmarks: List[Benchmark]) -> CorpusStatistics:
    """Compute the statistics row over all buggy instances."""
    classes: List[float] = []
    kilobytes: List[float] = []
    errors: List[float] = []
    items: List[float] = []
    clauses: List[float] = []
    edge_fractions: List[float] = []
    instances = 0

    for benchmark in benchmarks:
        # Debloating instances are not part of the paper's statistics
        # row (their "error count" is zero by construction, which would
        # also poison the geometric mean).
        reduction = [
            instance
            for instance in benchmark.instances
            if getattr(instance, "scenario", "reduction") == "reduction"
        ]
        if not reduction:
            continue
        app = benchmark.app
        cnf = generate_constraints(app)
        app_classes = len(app.classes)
        app_kb = application_size_bytes(app) / 1024
        app_items = len(items_of(app))
        app_clauses = len(cnf)
        app_edges = cnf.graph_clause_fraction()
        for instance in reduction:
            instances += 1
            classes.append(app_classes)
            kilobytes.append(app_kb)
            errors.append(instance.num_errors)
            items.append(app_items)
            clauses.append(app_clauses)
            edge_fractions.append(app_edges)

    return CorpusStatistics(
        num_benchmarks=sum(
            1
            for b in benchmarks
            if any(
                getattr(i, "scenario", "reduction") == "reduction"
                for i in b.instances
            )
        ),
        num_instances=instances,
        classes=geometric_mean(classes),
        kilobytes=geometric_mean(kilobytes),
        errors=geometric_mean(errors),
        reducible_items=geometric_mean(items),
        clauses=geometric_mean(clauses),
        edge_fraction=sum(edge_fractions) / len(edge_fractions),
    )

"""Reduction over time (Figure 8b).

The paper: "A much more likely scenario is that we have a fixed time
window ... We can stop both algorithms at any point in the execution and
use the smallest input until that point that preserves the error
message."  Figure 8b plots the mean *reduction factor* (how many times
smaller the best-so-far input is) against time.

:func:`mean_reduction_over_time` resamples each outcome's step timeline
onto a shared grid of the simulated clock and averages the factors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.experiments import InstanceOutcome

__all__ = ["mean_reduction_over_time", "reduction_factor_at"]


def reduction_factor_at(outcome: InstanceOutcome, time_s: float) -> float:
    """total_bytes / best_bytes(best input found by ``time_s``).

    Before the first bug-preserving observation the best known input is
    the original, i.e. a factor of 1.
    """
    best = outcome.total_bytes
    for (when, size) in outcome.timeline:
        if when > time_s:
            break
        best = size
    return outcome.total_bytes / best if best else float(outcome.total_bytes)


def mean_reduction_over_time(
    outcomes: Sequence[InstanceOutcome],
    grid: Optional[Sequence[float]] = None,
    points: int = 24,
) -> List[Tuple[float, float]]:
    """The Figure 8b series: (time, mean reduction factor) pairs.

    Outcomes should all belong to one strategy; pass an explicit ``grid``
    to compare strategies on the same axis.
    """
    if not outcomes:
        raise ValueError("no outcomes to aggregate")
    if grid is None:
        horizon = max(o.simulated_seconds for o in outcomes)
        horizon = max(horizon, 1.0)
        grid = [horizon * i / (points - 1) for i in range(points)]
    series: List[Tuple[float, float]] = []
    for when in grid:
        factors = [reduction_factor_at(o, when) for o in outcomes]
        series.append((when, sum(factors) / len(factors)))
    return series

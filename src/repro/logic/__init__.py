"""Propositional-logic substrate.

This package provides everything the reducer needs from a SAT stack:

- a small formula AST (:mod:`repro.logic.formula`) for building the
  dependency constraints the way the paper's type rules do,
- a CNF representation with conditioning and restriction
  (:mod:`repro.logic.cnf`),
- unit propagation and a DPLL SAT solver (:mod:`repro.logic.solver`),
- approximate *minimal satisfying assignments* under a variable order
  (:mod:`repro.logic.msa`), the MSA_< procedure of the paper,
- an exact #SAT model counter (:mod:`repro.logic.counting`), our stand-in
  for sharpSAT,
- DIMACS import/export (:mod:`repro.logic.dimacs`).

All public APIs use arbitrary hashable objects as variable names; the
solver-facing code compiles to integer-indexed clauses internally.
"""

from repro.logic.formula import (
    FALSE,
    TRUE,
    And,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    conj,
    disj,
)
from repro.logic.cnf import CNF, Clause, Lit, neg, pos
from repro.logic.assignment import Assignment
from repro.logic.propagation import PropagationResult, unit_propagate
from repro.logic.session import SolverSession
from repro.logic.solver import SatResult, solve, is_satisfiable, solve_legacy
from repro.logic.msa import minimal_satisfying_assignment, minimize_model
from repro.logic.counting import count_models
from repro.logic.dimacs import to_dimacs, from_dimacs

__all__ = [
    "Formula",
    "Var",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "TRUE",
    "FALSE",
    "conj",
    "disj",
    "CNF",
    "Clause",
    "Lit",
    "pos",
    "neg",
    "Assignment",
    "unit_propagate",
    "PropagationResult",
    "solve",
    "solve_legacy",
    "is_satisfiable",
    "SatResult",
    "SolverSession",
    "minimal_satisfying_assignment",
    "minimize_model",
    "count_models",
    "to_dimacs",
    "from_dimacs",
]

"""Truth assignments written as sets of true variables.

The paper writes solutions "as the set of true variables", e.g.
``(x /\\ ~y)({x})`` is true.  :class:`Assignment` is a thin immutable
wrapper over that convention with set algebra and pretty-printing.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Hashable, Iterable, Iterator

__all__ = ["Assignment"]

VarName = Hashable


class Assignment:
    """An immutable truth assignment: the set of variables set to true."""

    __slots__ = ("true_vars",)

    def __init__(self, true_vars: Iterable[VarName] = ()):
        self.true_vars: FrozenSet[VarName] = frozenset(true_vars)

    def __contains__(self, var: VarName) -> bool:
        return var in self.true_vars

    def __iter__(self) -> Iterator[VarName]:
        return iter(self.true_vars)

    def __len__(self) -> int:
        return len(self.true_vars)

    def __bool__(self) -> bool:
        return bool(self.true_vars)

    def __eq__(self, other) -> bool:
        if isinstance(other, Assignment):
            return self.true_vars == other.true_vars
        if isinstance(other, (set, frozenset)):
            return self.true_vars == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.true_vars)

    def __or__(self, other: "Assignment") -> "Assignment":
        return Assignment(self.true_vars | _true_set(other))

    def __and__(self, other: "Assignment") -> "Assignment":
        return Assignment(self.true_vars & _true_set(other))

    def __sub__(self, other: "Assignment") -> "Assignment":
        return Assignment(self.true_vars - _true_set(other))

    def __le__(self, other: "Assignment") -> bool:
        return self.true_vars <= _true_set(other)

    def with_true(self, *names: VarName) -> "Assignment":
        return Assignment(self.true_vars | set(names))

    def without(self, *names: VarName) -> "Assignment":
        return Assignment(self.true_vars - set(names))

    def __repr__(self) -> str:
        shown = ", ".join(sorted(map(str, self.true_vars)))
        return f"Assignment({{{shown}}})"


def _true_set(value) -> AbstractSet[VarName]:
    if isinstance(value, Assignment):
        return value.true_vars
    if isinstance(value, (set, frozenset)):
        return value
    raise TypeError(f"expected Assignment or set, got {value!r}")

"""CNF representation over arbitrary hashable variable names.

This is the workhorse representation of the reducer: the constraint
generators (FJI and bytecode) emit a :class:`CNF`, and the reduction
algorithms condition and restrict it as described in Section 4 of the
paper:

- ``R | X = 1`` — conditioning, substituting true for the variables in X
  (:meth:`CNF.condition`),
- "with vars not in J set to 0" — restriction (:meth:`CNF.restrict`),
- graph-constraint detection — a clause is a *graph constraint* when it
  has exactly one positive and one negative literal, i.e. it is an
  implication edge ``a => b`` (:meth:`Clause.is_graph_constraint`).
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.logic.formula import Formula

__all__ = ["Lit", "Clause", "CNF", "pos", "neg", "IndexedCNF"]

VarName = Hashable


class Lit(NamedTuple):
    """A literal: a variable name plus a polarity."""

    var: VarName
    positive: bool

    def negate(self) -> "Lit":
        return Lit(self.var, not self.positive)

    def __repr__(self) -> str:
        sign = "" if self.positive else "~"
        return f"{sign}{self.var}"


def pos(var: VarName) -> Lit:
    """The positive literal on ``var``."""
    return Lit(var, True)


def neg(var: VarName) -> Lit:
    """The negative literal on ``var``."""
    return Lit(var, False)


class Clause:
    """A disjunction of literals (immutable)."""

    __slots__ = ("literals",)

    def __init__(self, literals: Iterable[Lit]):
        lits = []
        for lit in literals:
            if not isinstance(lit, Lit):
                raise TypeError(f"expected Lit, got {lit!r}")
            lits.append(lit)
        self.literals: FrozenSet[Lit] = frozenset(lits)

    # -- constructors -------------------------------------------------------

    @classmethod
    def implication(
        cls, antecedents: Iterable[VarName], consequents: Iterable[VarName]
    ) -> "Clause":
        """The clause for ``(/\\ antecedents) => (\\/ consequents)``."""
        lits = [neg(a) for a in antecedents]
        lits.extend(pos(c) for c in consequents)
        return cls(lits)

    @classmethod
    def unit(cls, var: VarName, positive: bool = True) -> "Clause":
        """A unit clause requiring (or forbidding) ``var``."""
        return cls([Lit(var, positive)])

    # -- structure -----------------------------------------------------------

    @property
    def positives(self) -> FrozenSet[VarName]:
        return frozenset(lit.var for lit in self.literals if lit.positive)

    @property
    def negatives(self) -> FrozenSet[VarName]:
        return frozenset(lit.var for lit in self.literals if not lit.positive)

    def variables(self) -> FrozenSet[VarName]:
        return frozenset(lit.var for lit in self.literals)

    def is_graph_constraint(self) -> bool:
        """True when the clause is an implication edge ``a => b``.

        The paper: "A clause can be represented as an edge in a graph if
        there [is] exactly one positive and [one] negative literal in the
        clause."
        """
        return len(self.positives) == 1 and len(self.negatives) == 1

    def is_unit(self) -> bool:
        return len(self.literals) == 1

    def is_tautology(self) -> bool:
        return bool(self.positives & self.negatives)

    def is_empty(self) -> bool:
        return not self.literals

    # -- semantics -----------------------------------------------------------

    def satisfied_by(self, true_vars: AbstractSet[VarName]) -> bool:
        """Evaluate under the assignment whose true set is ``true_vars``."""
        for lit in self.literals:
            if lit.positive == (lit.var in true_vars):
                return True
        return False

    def condition(
        self,
        true_vars: AbstractSet[VarName] = frozenset(),
        false_vars: AbstractSet[VarName] = frozenset(),
    ) -> Optional["Clause"]:
        """Substitute constants; return None when the clause is satisfied.

        Returns the residual clause otherwise (possibly empty, meaning the
        clause — and hence the CNF — became unsatisfiable).
        """
        residual = []
        for lit in self.literals:
            if lit.var in true_vars:
                if lit.positive:
                    return None
                continue
            if lit.var in false_vars:
                if not lit.positive:
                    return None
                continue
            residual.append(lit)
        if len(residual) == len(self.literals):
            return self
        return Clause(residual)

    # -- dunder ----------------------------------------------------------------

    def __iter__(self) -> Iterator[Lit]:
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __eq__(self, other) -> bool:
        return isinstance(other, Clause) and self.literals == other.literals

    def __hash__(self) -> int:
        return hash(self.literals)

    def __repr__(self) -> str:
        if not self.literals:
            return "Clause(<empty>)"
        inner = " | ".join(repr(lit) for lit in sorted(
            self.literals, key=lambda l: (repr(l.var), not l.positive)))
        return f"Clause({inner})"


class CNF:
    """A conjunction of clauses over named variables.

    The variable universe can be wider than the variables mentioned in the
    clauses (pass ``variables=`` to the constructor); this matters for the
    reducer, where unconstrained items are still removable items.
    """

    def __init__(
        self,
        clauses: Iterable[Clause] = (),
        variables: Iterable[VarName] = (),
    ):
        self.clauses: List[Clause] = []
        self._clause_set: set = set()
        self._variables: set = set(variables)
        self._indexed_cache: Optional["IndexedCNF"] = None
        for clause in clauses:
            self.add_clause(clause)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_formula(cls, formula: Formula) -> "CNF":
        """Build a CNF from a formula AST via NNF + distribution."""
        cnf = cls(variables=formula.variables())
        for raw in formula.to_clauses():
            cnf.add_clause(Clause(Lit(v, p) for (v, p) in raw))
        return cnf

    def add_clause(self, clause: Clause) -> bool:
        """Add a clause (tautologies and duplicates are dropped).

        Returns True when the clause actually entered the database —
        incremental callers (solver sessions, MSA occurrence indexes)
        use this to know whether their derived structures need the
        clause too.
        """
        if clause.is_tautology():
            # Even a dropped tautology can widen the universe, which
            # changes the default compilation order.
            self._indexed_cache = None
            self._variables.update(clause.variables())
            return False
        if clause in self._clause_set:
            return False
        self._indexed_cache = None
        self.clauses.append(clause)
        self._clause_set.add(clause)
        self._variables.update(clause.variables())
        return True

    def add_formula(self, formula: Formula) -> None:
        """Add all clauses of a formula."""
        self._indexed_cache = None
        self._variables.update(formula.variables())
        for raw in formula.to_clauses():
            self.add_clause(Clause(Lit(v, p) for (v, p) in raw))

    def conjoin(self, other: "CNF") -> "CNF":
        """A new CNF that is the conjunction of self and other."""
        out = CNF(variables=self._variables | other._variables)
        for clause in self.clauses:
            out.add_clause(clause)
        for clause in other.clauses:
            out.add_clause(clause)
        return out

    # -- structure ---------------------------------------------------------------

    @property
    def variables(self) -> FrozenSet[VarName]:
        return frozenset(self._variables)

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def graph_clause_fraction(self) -> float:
        """Fraction of clauses that are graph constraints (paper: 97.5%)."""
        if not self.clauses:
            return 1.0
        edges = sum(1 for c in self.clauses if c.is_graph_constraint())
        return edges / len(self.clauses)

    def non_graph_clauses(self) -> List[Clause]:
        return [c for c in self.clauses if not c.is_graph_constraint()]

    # -- semantics -----------------------------------------------------------------

    def satisfied_by(self, true_vars: AbstractSet[VarName]) -> bool:
        """Evaluate under the assignment whose true set is ``true_vars``."""
        return all(clause.satisfied_by(true_vars) for clause in self.clauses)

    def condition(
        self,
        true_vars: AbstractSet[VarName] = frozenset(),
        false_vars: AbstractSet[VarName] = frozenset(),
    ) -> "CNF":
        """The paper's ``R | X = 1, Y = 0`` conditioning operator.

        The conditioned variables leave the universe.  An empty residual
        clause is kept, recording unsatisfiability.
        """
        true_vars = frozenset(true_vars)
        false_vars = frozenset(false_vars)
        overlap = true_vars & false_vars
        if overlap:
            raise ValueError(f"variables conditioned both ways: {overlap!r}")
        out = CNF(variables=self._variables - true_vars - false_vars)
        for clause in self.clauses:
            residual = clause.condition(true_vars, false_vars)
            if residual is not None:
                out.add_clause(residual)
        return out

    def restrict(self, keep: AbstractSet[VarName]) -> "CNF":
        """Set every variable outside ``keep`` to false.

        This is the paper's "with vars not in J set to 0" step in the
        PROGRESSION subroutine.
        """
        drop = self._variables - set(keep)
        return self.condition(false_vars=drop)

    def is_unsat_trivially(self) -> bool:
        """True when the CNF contains the empty clause."""
        return any(clause.is_empty() for clause in self.clauses)

    def to_indexed(
        self, order: Optional[Sequence[VarName]] = None
    ) -> "IndexedCNF":
        """Compile to the integer-indexed form used by the solver stack.

        ``order`` fixes variable indices (index 0 = smallest); by default
        variables are sorted by repr for determinism.

        The default-order compilation is memoized on the instance
        (invalidated by :meth:`add_clause`), so the solver stack's many
        ``to_indexed()`` calls on one CNF pay for the repr-sort and
        clause encoding once.  Treat the returned object as immutable —
        it is shared between callers.
        """
        if order is None:
            if self._indexed_cache is not None:
                return self._indexed_cache
            ordered = sorted(self._variables, key=repr)
            indexed = IndexedCNF(self, ordered)
            self._indexed_cache = indexed
            return indexed
        ordered = list(order)
        missing = self._variables - set(ordered)
        if missing:
            raise ValueError(f"order is missing variables: {missing!r}")
        return IndexedCNF(self, ordered)

    def __repr__(self) -> str:
        return (
            f"CNF({len(self.clauses)} clauses, "
            f"{len(self._variables)} variables)"
        )


class IndexedCNF:
    """An integer-compiled view of a :class:`CNF`.

    Variables are numbered ``0..n-1`` following a supplied total order; a
    literal is encoded DIMACS-style as ``idx + 1`` (positive) or
    ``-(idx + 1)`` (negative).  The solver, MSA, and counter all run on
    this form.
    """

    def __init__(self, cnf: CNF, ordered_vars: Sequence[VarName]):
        self.names: List[VarName] = list(ordered_vars)
        self.index: Dict[VarName, int] = {
            name: i for i, name in enumerate(self.names)
        }
        if len(self.index) != len(self.names):
            raise ValueError("duplicate variables in order")
        self.clauses: List[Tuple[int, ...]] = []
        for clause in cnf.clauses:
            encoded = tuple(
                sorted(
                    (self.index[lit.var] + 1)
                    if lit.positive
                    else -(self.index[lit.var] + 1)
                    for lit in clause
                )
            )
            self.clauses.append(encoded)

    @property
    def num_vars(self) -> int:
        return len(self.names)

    def decode(self, true_indices: Iterable[int]) -> FrozenSet[VarName]:
        """Map a set of 0-based true variable indices back to names."""
        return frozenset(self.names[i] for i in true_indices)

    def encode_vars(self, names: Iterable[VarName]) -> FrozenSet[int]:
        """Map variable names to 0-based indices."""
        return frozenset(self.index[name] for name in names)

"""Exact #SAT model counting (our stand-in for sharpSAT).

Section 2 of the paper counts the valid sub-inputs of the running example
with sharpSAT and reports 6,766 satisfying assignments.  This module
implements the same three techniques sharpSAT is built on, at reproduction
scale:

- implicit BCP: unit clauses are propagated before branching,
- connected-component decomposition: clause sets that share no variables
  are counted independently and the counts multiplied,
- component caching: residual clause sets are memoized, so structurally
  repeated sub-problems are counted once.

Counts are taken over an explicit variable universe, so variables that are
mentioned in no clause (or that vanish during conditioning) contribute a
factor of two each.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.logic.cnf import CNF
from repro.observability import get_metrics, get_tracer
from repro.observability.spans import NULL_SPAN

__all__ = ["count_models", "enumerate_models"]

VarName = Hashable
IntClause = Tuple[int, ...]
ClauseSet = FrozenSet[IntClause]


def count_models(
    cnf: CNF, variables: Optional[Iterable[VarName]] = None
) -> int:
    """The number of assignments over ``variables`` satisfying ``cnf``.

    ``variables`` defaults to the CNF's variable universe and must cover
    every variable mentioned in a clause.
    """
    universe = (
        set(cnf.variables) if variables is None else set(variables)
    )
    mentioned: Set[VarName] = set()
    for clause in cnf.clauses:
        mentioned.update(clause.variables())
    stray = mentioned - universe
    if stray:
        raise ValueError(f"clauses mention variables outside universe: {stray!r}")

    if variables is None:
        # Same order as sorting the universe by repr — use the CNF's
        # memoized default compilation instead of re-encoding.
        indexed = cnf.to_indexed()
    else:
        indexed = cnf.to_indexed(sorted(universe, key=repr))
    clauses: ClauseSet = frozenset(indexed.clauses)
    counter = _Counter()
    tracer = get_tracer()
    if tracer.enabled:
        cm = tracer.span(
            "counting.count_models",
            variables=len(universe),
            clauses=len(clauses),
        )
    else:
        cm = NULL_SPAN
    with cm as sp:
        core = counter.count(clauses)
        sp.set_attr("cache_hits", counter.hits)
        sp.set_attr("cache_misses", counter.misses)
    metrics = get_metrics()
    metrics.counter("counting.calls").inc()
    if counter.hits:
        metrics.counter("counting.cache_hits").inc(counter.hits)
    if counter.misses:
        metrics.counter("counting.cache_misses").inc(counter.misses)
    free = len(universe) - len(_clause_vars(clauses))
    return core << free


def enumerate_models(
    cnf: CNF, variables: Optional[Iterable[VarName]] = None
) -> Iterator[FrozenSet[VarName]]:
    """Brute-force enumeration of all models (small universes only).

    Yields each model as a frozenset of true variables.  Used by tests to
    validate :func:`count_models`; guarded to 24 variables.
    """
    universe = sorted(
        set(cnf.variables) if variables is None else set(variables), key=repr
    )
    if len(universe) > 24:
        raise ValueError("enumerate_models is for small universes (<= 24 vars)")
    for mask in range(1 << len(universe)):
        true_vars = frozenset(
            universe[i] for i in range(len(universe)) if mask & (1 << i)
        )
        if cnf.satisfied_by(true_vars):
            yield true_vars


class _Counter:
    """The recursive counting engine with a component cache."""

    def __init__(self) -> None:
        self.cache: Dict[ClauseSet, int] = {}
        # Component-cache accounting (aggregated locally; count_models
        # publishes the totals to the metrics registry once per call).
        self.hits = 0
        self.misses = 0

    def count(self, clauses: ClauseSet) -> int:
        """Models over exactly the variables mentioned in ``clauses``."""
        if () in clauses:
            return 0
        if not clauses:
            return 1
        cached = self.cache.get(clauses)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1

        simplified, ok = _bcp(clauses)
        if not ok:
            result = 0
        else:
            vars_before = _clause_vars(clauses)
            vars_after = _clause_vars(simplified)
            # BCP fixed the forced variables (factor 1 each) and may have
            # freed others entirely (factor 2 each).
            forced = _forced_count(clauses, simplified)
            freed = len(vars_before) - len(vars_after) - forced
            assert freed >= 0
            result = self._count_components(simplified) << freed

        self.cache[clauses] = result
        return result

    def _count_components(self, clauses: ClauseSet) -> int:
        if not clauses:
            return 1
        components = _split_components(clauses)
        if len(components) > 1:
            total = 1
            for component in components:
                total *= self.count(component)
                if total == 0:
                    return 0
            return total
        return self._branch(clauses)

    def _branch(self, clauses: ClauseSet) -> int:
        var = _most_frequent_var(clauses)
        total = 0
        scope = len(_clause_vars(clauses))
        for value in (True, False):
            conditioned = _condition(clauses, var, value)
            if conditioned is None:
                continue
            remaining = len(_clause_vars(conditioned))
            freed = scope - 1 - remaining
            assert freed >= 0
            total += self.count(conditioned) << freed
        return total


def _clause_vars(clauses: AbstractSet[IntClause]) -> Set[int]:
    out: Set[int] = set()
    for clause in clauses:
        for lit in clause:
            out.add(abs(lit))
    return out


def _bcp(clauses: ClauseSet) -> Tuple[ClauseSet, bool]:
    """Propagate unit clauses to a fixpoint.

    Returns (residual clause set, consistent flag).
    """
    current: Set[IntClause] = set(clauses)
    assignment: Dict[int, bool] = {}
    while True:
        units = [c[0] for c in current if len(c) == 1]
        if not units:
            break
        for lit in units:
            var, value = abs(lit), lit > 0
            previous = assignment.get(var)
            if previous is not None and previous != value:
                return frozenset(), False
            assignment[var] = value
        fresh: Set[IntClause] = set()
        for clause in current:
            residual: List[int] = []
            satisfied = False
            for lit in clause:
                value = assignment.get(abs(lit))
                if value is None:
                    residual.append(lit)
                elif value == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            if not residual:
                return frozenset(), False
            fresh.add(tuple(residual))
        current = fresh
    return frozenset(current), True


def _forced_count(before: ClauseSet, after: ClauseSet) -> int:
    """How many variables BCP forced (appear in units transitively).

    We recompute by running the same propagation; cheap relative to the
    recursion and keeps :func:`_bcp` simple.
    """
    current: Set[IntClause] = set(before)
    assignment: Dict[int, bool] = {}
    while True:
        units = [c[0] for c in current if len(c) == 1]
        if not units:
            break
        for lit in units:
            assignment[abs(lit)] = lit > 0
        fresh: Set[IntClause] = set()
        for clause in current:
            residual: List[int] = []
            satisfied = False
            for lit in clause:
                value = assignment.get(abs(lit))
                if value is None:
                    residual.append(lit)
                elif value == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            if residual:
                fresh.add(tuple(residual))
        current = fresh
    return len(assignment)


def _condition(
    clauses: ClauseSet, var: int, value: bool
) -> Optional[ClauseSet]:
    """Substitute var := value; None when a clause becomes empty."""
    out: Set[IntClause] = set()
    for clause in clauses:
        residual: List[int] = []
        satisfied = False
        for lit in clause:
            if abs(lit) == var:
                if (lit > 0) == value:
                    satisfied = True
                    break
                continue
            residual.append(lit)
        if satisfied:
            continue
        if not residual:
            return None
        out.add(tuple(residual))
    return frozenset(out)


def _split_components(clauses: ClauseSet) -> List[ClauseSet]:
    """Partition clauses into variable-connected components."""
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for clause in clauses:
        variables = [abs(lit) for lit in clause]
        for var in variables:
            parent.setdefault(var, var)
        for other in variables[1:]:
            union(variables[0], other)

    groups: Dict[int, Set[IntClause]] = {}
    for clause in clauses:
        root = find(abs(clause[0]))
        groups.setdefault(root, set()).add(clause)
    return [frozenset(group) for group in groups.values()]


def _most_frequent_var(clauses: ClauseSet) -> int:
    counts: Dict[int, int] = {}
    for clause in clauses:
        for lit in clause:
            var = abs(lit)
            counts[var] = counts.get(var, 0) + 1
    return max(counts, key=lambda v: (counts[v], -v))

"""DIMACS CNF import/export.

The paper's pipeline hands its constraints to off-the-shelf tools
(sharpSAT for counting).  We provide the same interoperability surface:
:func:`to_dimacs` serializes a :class:`repro.logic.cnf.CNF` in the
standard ``p cnf`` format (with a comment block mapping variable numbers
back to item names), and :func:`from_dimacs` parses it back.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.logic.cnf import CNF, Clause, Lit

__all__ = ["to_dimacs", "from_dimacs"]

VarName = Hashable


def to_dimacs(
    cnf: CNF,
    order: Optional[Sequence[VarName]] = None,
    include_names: bool = True,
) -> str:
    """Serialize to DIMACS CNF text.

    When ``include_names`` is set, a ``c var <n> <name>`` comment line is
    emitted per variable so the mapping survives the round trip for
    humans (parsers ignore comments).
    """
    indexed = cnf.to_indexed(order)
    lines: List[str] = []
    if include_names:
        for i, name in enumerate(indexed.names):
            lines.append(f"c var {i + 1} {name}")
    lines.append(f"p cnf {indexed.num_vars} {len(indexed.clauses)}")
    for clause in indexed.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def from_dimacs(text: str) -> CNF:
    """Parse DIMACS CNF text into a :class:`CNF`.

    Variable names are recovered from ``c var`` comments when present and
    default to the integers otherwise.
    """
    names: Dict[int, VarName] = {}
    clauses: List[Tuple[int, ...]] = []
    declared_vars = 0
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("c"):
            parts = line.split(maxsplit=3)
            if len(parts) == 4 and parts[1] == "var":
                try:
                    names[int(parts[2])] = parts[3]
                except ValueError:
                    pass
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            declared_vars = int(parts[2])
            continue
        literals = [int(tok) for tok in line.split()]
        if literals and literals[-1] == 0:
            literals = literals[:-1]
        if literals:
            clauses.append(tuple(literals))

    def name_of(num: int) -> VarName:
        return names.get(num, num)

    universe = [name_of(i) for i in range(1, declared_vars + 1)]
    cnf = CNF(variables=universe)
    for encoded in clauses:
        cnf.add_clause(
            Clause(Lit(name_of(abs(lit)), lit > 0) for lit in encoded)
        )
    return cnf

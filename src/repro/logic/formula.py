r"""A small propositional-formula AST.

The paper's type rules (Figures 6 and 7) build constraints of the shape

    [C.m()!code] => [C.m()] /\ pi_1 /\ pi_2
    ([C <| I] /\ [I.m()]) => mAny(P, m, C)

i.e. implications between conjunctions and disjunctions of variables.  This
module provides an ergonomic AST for writing those constraints down, plus a
conversion to clause form (:meth:`Formula.to_clauses`) used by the rest of
the logic stack.

Variables are arbitrary hashable Python objects, so the FJI and bytecode
constraint generators can use their item objects directly as variable
names.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Iterator, List, Tuple

__all__ = [
    "Formula",
    "Var",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "TRUE",
    "FALSE",
    "conj",
    "disj",
]

VarName = Hashable
ClauseTuple = FrozenSet[Tuple[VarName, bool]]


class Formula:
    """Base class for propositional formulas.

    Supports the operators ``&`` (and), ``|`` (or), ``~`` (not), ``>>``
    (implies).  Equality is structural.
    """

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, other)

    # -- structure ---------------------------------------------------------

    def variables(self) -> FrozenSet[VarName]:
        """The set of variable names appearing in the formula."""
        out = set()
        self._collect_variables(out)
        return frozenset(out)

    def _collect_variables(self, out: set) -> None:
        raise NotImplementedError

    # -- evaluation --------------------------------------------------------

    def evaluate(self, true_vars: Iterable[VarName]) -> bool:
        """Evaluate under the assignment that sets exactly ``true_vars``.

        This is the paper's convention: a solution is written as the set
        of true variables; everything else is false.
        """
        return self._evaluate(frozenset(true_vars))

    def _evaluate(self, true_vars: FrozenSet[VarName]) -> bool:
        raise NotImplementedError

    # -- clause conversion -------------------------------------------------

    def to_clauses(self) -> List[ClauseTuple]:
        """Convert to CNF clauses by NNF + distribution.

        Each clause is a frozenset of ``(var, polarity)`` literals.  An
        empty list means the formula is valid (no constraints); a list
        containing the empty frozenset means the formula is unsatisfiable.

        Distribution can blow up exponentially on adversarial input, but
        the constraint shapes produced by the type rules are already
        near-CNF, so this is the right tool here (a Tseitin transform
        would introduce fresh variables, which would pollute the reducer's
        variable universe).
        """
        nnf = self._nnf(positive=True)
        clauses = nnf._distribute()
        return _simplify_clauses(clauses)

    def _nnf(self, positive: bool) -> "Formula":
        raise NotImplementedError

    def _distribute(self) -> List[ClauseTuple]:
        raise NotImplementedError


class _Const(Formula):
    """Boolean constant (use the TRUE / FALSE singletons)."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = value

    def _collect_variables(self, out: set) -> None:
        pass

    def _evaluate(self, true_vars: FrozenSet[VarName]) -> bool:
        return self.value

    def _nnf(self, positive: bool) -> Formula:
        return TRUE if (self.value == positive) else FALSE

    def _distribute(self) -> List[ClauseTuple]:
        if self.value:
            return []
        return [frozenset()]

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"

    def __eq__(self, other) -> bool:
        return isinstance(other, _Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))


TRUE = _Const(True)
FALSE = _Const(False)


class Var(Formula):
    """A propositional variable named by any hashable object."""

    __slots__ = ("name",)

    def __init__(self, name: VarName):
        self.name = name

    def _collect_variables(self, out: set) -> None:
        out.add(self.name)

    def _evaluate(self, true_vars: FrozenSet[VarName]) -> bool:
        return self.name in true_vars

    def _nnf(self, positive: bool) -> Formula:
        return self if positive else Not(self)

    def _distribute(self) -> List[ClauseTuple]:
        return [frozenset([(self.name, True)])]

    def __repr__(self) -> str:
        return f"Var({self.name!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("var", self.name))


class Not(Formula):
    """Negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Formula):
        self.operand = operand

    def _collect_variables(self, out: set) -> None:
        self.operand._collect_variables(out)

    def _evaluate(self, true_vars: FrozenSet[VarName]) -> bool:
        return not self.operand._evaluate(true_vars)

    def _nnf(self, positive: bool) -> Formula:
        return self.operand._nnf(not positive)

    def _distribute(self) -> List[ClauseTuple]:
        # In NNF, Not only wraps Vars.
        if isinstance(self.operand, Var):
            return [frozenset([(self.operand.name, False)])]
        raise ValueError("Not outside NNF; call to_clauses() on the root")

    def __repr__(self) -> str:
        return f"Not({self.operand!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Not) and self.operand == other.operand

    def __hash__(self) -> int:
        return hash(("not", self.operand))


class _Nary(Formula):
    """Shared machinery for And / Or."""

    __slots__ = ("operands",)
    _symbol = "?"

    def __init__(self, operands: Iterable[Formula]):
        ops: List[Formula] = []
        for op in operands:
            if not isinstance(op, Formula):
                raise TypeError(f"expected Formula, got {op!r}")
            # Flatten nested nodes of the same connective.
            if type(op) is type(self):
                ops.extend(op.operands)  # type: ignore[attr-defined]
            else:
                ops.append(op)
        self.operands: Tuple[Formula, ...] = tuple(ops)

    def _collect_variables(self, out: set) -> None:
        for op in self.operands:
            op._collect_variables(out)

    def __repr__(self) -> str:
        inner = f" {self._symbol} ".join(repr(op) for op in self.operands)
        return f"({inner})"

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.operands == other.operands

    def __hash__(self) -> int:
        return hash((self._symbol, self.operands))


class And(_Nary):
    """Conjunction of zero or more formulas (empty = TRUE)."""

    _symbol = "&"

    def _evaluate(self, true_vars: FrozenSet[VarName]) -> bool:
        return all(op._evaluate(true_vars) for op in self.operands)

    def _nnf(self, positive: bool) -> Formula:
        children = tuple(op._nnf(positive) for op in self.operands)
        return And(children) if positive else Or(children)

    def _distribute(self) -> List[ClauseTuple]:
        clauses: List[ClauseTuple] = []
        for op in self.operands:
            clauses.extend(op._distribute())
        return clauses


class Or(_Nary):
    """Disjunction of zero or more formulas (empty = FALSE)."""

    _symbol = "|"

    def _evaluate(self, true_vars: FrozenSet[VarName]) -> bool:
        return any(op._evaluate(true_vars) for op in self.operands)

    def _nnf(self, positive: bool) -> Formula:
        children = tuple(op._nnf(positive) for op in self.operands)
        return Or(children) if positive else And(children)

    def _distribute(self) -> List[ClauseTuple]:
        if not self.operands:
            return [frozenset()]
        result: List[ClauseTuple] = [frozenset()]
        for op in self.operands:
            op_clauses = op._distribute()
            result = [
                prefix | suffix for prefix in result for suffix in op_clauses
            ]
        return result


def Implies(antecedent: Formula, consequent: Formula) -> Formula:
    """``antecedent => consequent`` as a formula."""
    return Or((Not(antecedent), consequent))


def Iff(left: Formula, right: Formula) -> Formula:
    """``left <=> right`` as a formula."""
    return And((Implies(left, right), Implies(right, left)))


def conj(formulas: Iterable[Formula]) -> Formula:
    """Conjunction of an iterable of formulas (TRUE when empty)."""
    ops = tuple(formulas)
    if not ops:
        return TRUE
    if len(ops) == 1:
        return ops[0]
    return And(ops)


def disj(formulas: Iterable[Formula]) -> Formula:
    """Disjunction of an iterable of formulas (FALSE when empty)."""
    ops = tuple(formulas)
    if not ops:
        return FALSE
    if len(ops) == 1:
        return ops[0]
    return Or(ops)


def _simplify_clauses(clauses: List[ClauseTuple]) -> List[ClauseTuple]:
    """Drop tautological and duplicate clauses, preserving order."""
    seen = set()
    out: List[ClauseTuple] = []
    for clause in clauses:
        if _is_tautology(clause):
            continue
        if clause in seen:
            continue
        seen.add(clause)
        out.append(clause)
    return out


def _is_tautology(clause: ClauseTuple) -> bool:
    positives = {v for (v, polarity) in clause if polarity}
    negatives = {v for (v, polarity) in clause if not polarity}
    return bool(positives & negatives)


def _clauses_iter(formula: Formula) -> Iterator[ClauseTuple]:
    yield from formula.to_clauses()

"""Approximate minimal satisfying assignments (the paper's MSA_<).

Finding a satisfying assignment with the fewest true variables is
NP-complete (Ravi & Somenzi 2004, cited by the paper), so — exactly like
the paper — we settle for an approximate procedure that runs in polynomial
time and respects a total variable order ``<``:

1. **Greedy with propagation** (the fast path): start from the required
   variables, and while some clause is violated (all positive literals
   false, all negative literals true), satisfy it by setting its
   ``<``-smallest unassigned positive variable to true.  Each step adds
   one variable, so the loop runs at most ``|I|`` times.  For the clause
   shapes produced by the type rules — implications whose heads are
   non-empty disjunctions of variables — this never gets stuck, and it
   has the property the paper's termination proof needs: the result
   contains the ``<``-smallest variable of each all-positive (learned)
   clause that no earlier choice already satisfied.

2. **Solver fallback** (general CNF): if the greedy pass meets a clause
   with no positive literals (a pure "at-most" constraint), fall back to
   the DPLL solver and locally minimize the model by attempting removals
   in reverse ``<`` order.

The :class:`MsaSolver` also exposes an *incremental* ``extend`` operation,
which the PROGRESSION subroutine uses: given a consistent true-set and a
batch of newly-required variables, it cascades only through the clauses
the new variables can violate, so building a whole progression costs
roughly one pass over the clause database instead of one per entry.
"""

from __future__ import annotations

from collections import deque
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.logic.cnf import CNF, Clause
from repro.logic.session import SolverSession
from repro.observability import get_metrics

__all__ = ["MsaSolver", "minimal_satisfying_assignment", "minimize_model"]

VarName = Hashable


class MsaSolver:
    """Reusable MSA machinery over one CNF and one variable order.

    The order is given as a sequence of variable names; earlier means
    ``<``-smaller.  Variables absent from the order sort last (ties broken
    deterministically by ``repr``).

    The solver can run *scoped* (see :meth:`set_scope`): out-of-scope
    variables are treated as false — semantically ``cnf.restrict(scope)``
    — but implemented with solver-session assumptions instead of
    materializing a restricted CNF, which is what makes PROGRESSION's
    per-iteration rebuilds cheap.  Incremental callers may pass a
    pre-built ``session`` (and feed appended clauses through
    :meth:`notice_clause`); otherwise one is created lazily on the first
    solver fallback.
    """

    def __init__(
        self,
        cnf: CNF,
        order: Sequence[VarName] = (),
        session: Optional[SolverSession] = None,
    ):
        self.cnf = cnf
        self._order_index: Dict[VarName, int] = {
            name: i for i, name in enumerate(order)
        }
        self._session = session
        self._scope: Optional[FrozenSet[VarName]] = None
        # Clauses indexed by the variables whose *truth* can violate them
        # (i.e. variables occurring negatively).
        self._neg_occurrences: Dict[VarName, List[Clause]] = {}
        self._positive_clauses: List[Clause] = []
        for clause in cnf.clauses:
            self._index_clause(clause)

    def _index_clause(self, clause: Clause) -> None:
        negatives = clause.negatives
        if not negatives:
            self._positive_clauses.append(clause)
        for var in negatives:
            self._neg_occurrences.setdefault(var, []).append(clause)

    def notice_clause(self, clause: Clause) -> None:
        """Register a clause appended to ``self.cnf`` after construction.

        Keeps the cascade's occurrence structures — and the fallback
        session's clause database — in sync with the growing CNF.  The
        caller is responsible for having actually added the clause
        (``CNF.add_clause`` returning True).
        """
        self._index_clause(clause)
        if self._session is not None:
            self._session.add_clause(clause)

    def set_scope(self, scope: Optional[FrozenSet[VarName]]) -> None:
        """Restrict (or, with None, unrestrict) the solver to ``scope``.

        While scoped, every computation behaves as if run against
        ``cnf.restrict(scope)``: out-of-scope variables are false, never
        eligible as repairs, and assumed false in fallback solves.
        """
        self._scope = None if scope is None else frozenset(scope)

    def _ensure_session(self) -> SolverSession:
        if self._session is None:
            self._session = SolverSession(self.cnf)
        return self._session

    # -- ordering -----------------------------------------------------------

    def rank(self, var: VarName) -> Tuple[int, str]:
        """Sort key implementing the total order ``<``."""
        return (self._order_index.get(var, len(self._order_index)), repr(var))

    def smallest(self, variables: Iterable[VarName]) -> VarName:
        """The ``<``-smallest of ``variables``."""
        return min(variables, key=self.rank)

    # -- full MSA ------------------------------------------------------------

    def compute(
        self, require_true: AbstractSet[VarName] = frozenset()
    ) -> Optional[FrozenSet[VarName]]:
        """An approximate MSA of the CNF with ``require_true`` forced.

        Returns None when the CNF (plus requirements) is unsatisfiable.
        """
        true_set: Set[VarName] = set(require_true)
        seeds = deque(self._positive_clauses)
        for var in require_true:
            seeds.extend(self._neg_occurrences.get(var, ()))
        if self._cascade(true_set, seeds):
            return frozenset(true_set)
        return self._fallback(require_true)

    def extend(
        self,
        current: AbstractSet[VarName],
        new_true: Iterable[VarName],
    ) -> Optional[FrozenSet[VarName]]:
        """Minimally extend a consistent true-set with new requirements.

        ``current`` must already satisfy the CNF.  Returns the full
        extended true-set (a superset of ``current`` and ``new_true``), or
        None when no extension satisfies the CNF.
        """
        required = frozenset(current) | frozenset(new_true)
        true_set: Set[VarName] = set(current)
        seeds: deque = deque()
        for var in new_true:
            if var not in true_set:
                true_set.add(var)
                seeds.extend(self._neg_occurrences.get(var, ()))
        if self._cascade(true_set, seeds):
            return frozenset(true_set)
        return self._fallback(required)

    # -- internals --------------------------------------------------------------

    def _cascade(self, true_set: Set[VarName], seeds: deque) -> bool:
        """Greedy repair loop; mutates ``true_set``.

        Returns False when it gets stuck on a clause with no positive
        literals (the caller then uses the solver fallback).
        """
        repairs = 0
        try:
            while seeds:
                clause = seeds.popleft()
                if not _violated(clause, true_set):
                    continue
                candidates = clause.positives - true_set
                if self._scope is not None:
                    candidates &= self._scope
                if not candidates:
                    return False  # pure-negative clause with all vars true
                choice = self.smallest(candidates)
                repairs += 1
                true_set.add(choice)
                seeds.extend(self._neg_occurrences.get(choice, ()))
                # The clause itself is now satisfied (choice is positive
                # in it).
            return True
        finally:
            if repairs:
                get_metrics().counter("msa.repairs").inc(repairs)

    def _fallback(
        self, require_true: AbstractSet[VarName]
    ) -> Optional[FrozenSet[VarName]]:
        get_metrics().counter("msa.fallbacks").inc()
        session = self._ensure_session()
        if self._scope is None:
            assume_false: FrozenSet[VarName] = frozenset()
        else:
            # Scope-as-assumptions: semantically cnf.restrict(scope),
            # without compiling a restricted CNF per call.
            assume_false = self.cnf.variables - self._scope
        result = session.solve(
            assume_true=require_true, assume_false=assume_false
        )
        if not result.satisfiable:
            return None
        assert result.model is not None
        model = result.model | frozenset(require_true)
        return minimize_model(
            self.cnf,
            model,
            protect=require_true,
            rank=self.rank,
            occurrences=session.positive_occurrences(),
        )


def _violated(clause: Clause, true_set: AbstractSet[VarName]) -> bool:
    """Violated under set-semantics: unassigned variables default to false."""
    for lit in clause.literals:
        if lit.positive == (lit.var in true_set):
            return False
    return True


def minimal_satisfying_assignment(
    cnf: CNF,
    order: Sequence[VarName] = (),
    require_true: AbstractSet[VarName] = frozenset(),
) -> Optional[FrozenSet[VarName]]:
    """One-shot approximate MSA (see :class:`MsaSolver`)."""
    return MsaSolver(cnf, order).compute(require_true)


def minimize_model(
    cnf: CNF,
    model: AbstractSet[VarName],
    protect: AbstractSet[VarName] = frozenset(),
    rank=None,
    occurrences: Optional[Dict[VarName, List[Clause]]] = None,
) -> FrozenSet[VarName]:
    """Locally minimize a model by attempting single-variable removals.

    Variables are tried in reverse ``rank`` order (largest first), so the
    ``<``-smallest variables are the last to go.  The result still
    satisfies ``cnf`` and contains ``protect``.  Runs removal passes to a
    fixpoint.

    Removal checks are incremental: flipping ``var`` true→false can only
    falsify clauses where ``var`` occurs *positively* (every other
    clause's literals are unaffected or strengthened), so each attempt
    re-checks just those clauses via a per-variable index instead of the
    whole CNF — O(occ(var)) per attempt instead of O(|cnf|).
    ``occurrences`` lets session-holding callers share a prebuilt index
    (see :meth:`repro.logic.session.SolverSession.positive_occurrences`);
    it must cover at least every removable variable's positive clauses.
    """
    if not cnf.satisfied_by(model):
        raise ValueError("minimize_model requires a satisfying model")
    if rank is None:
        rank = lambda var: repr(var)  # noqa: E731 - local default key
    if occurrences is None:
        occurrences = {}
        for clause in cnf.clauses:
            for var in clause.positives:
                occurrences.setdefault(var, []).append(clause)
    current: Set[VarName] = set(model)
    changed = True
    while changed:
        changed = False
        removable = sorted(
            (v for v in current if v not in protect), key=rank, reverse=True
        )
        for var in removable:
            candidate = current - {var}
            if all(
                clause.satisfied_by(candidate)
                for clause in occurrences.get(var, ())
            ):
                current = candidate
                changed = True
    return frozenset(current)

"""Boolean constraint propagation (unit propagation).

Both the DPLL solver and the MSA procedure lean on unit propagation.  We
work on the integer-indexed clause form (:class:`repro.logic.cnf.IndexedCNF`
encoding): a literal is ``idx + 1`` or ``-(idx + 1)``.

Two engines live here:

- :class:`WatchedIndex` + :func:`propagate_watched` — the two-watched-
  literal scheme (MiniSat-style) used by
  :class:`repro.logic.session.SolverSession`.  Watches are built once
  per clause database and never undone on backtracking, which is what
  makes repeated ``solve(assume...)`` calls on one session cheap.
- :class:`OccurrenceIndex` + :func:`unit_propagate` — the original
  occurrence-list engine, kept as the executable reference: the
  differential tests assert both engines reach the same fixpoints and
  detect the same conflicts, and the hot-path benchmark uses it as the
  pre-session baseline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

__all__ = [
    "PropagationResult",
    "unit_propagate",
    "OccurrenceIndex",
    "WatchedIndex",
    "propagate_watched",
    "watched_propagate_from_seed",
]


class PropagationResult(NamedTuple):
    """Outcome of a propagation run.

    ``conflict`` is True when a clause became empty.  ``assignment`` maps
    variable index -> bool for every variable assigned so far (including
    the seed literals).
    """

    conflict: bool
    assignment: Dict[int, bool]


class OccurrenceIndex:
    """Occurrence lists for a clause database (built once, reused)."""

    def __init__(self, clauses: Sequence[Tuple[int, ...]], num_vars: int):
        self.clauses = list(clauses)
        self.num_vars = num_vars
        # occurrences[var][polarity] -> clause indices where (var, polarity)
        # appears; polarity 1 = positive, 0 = negative.
        self.occurrences: List[Tuple[List[int], List[int]]] = [
            ([], []) for _ in range(num_vars)
        ]
        for ci, clause in enumerate(self.clauses):
            for lit in clause:
                var = abs(lit) - 1
                self.occurrences[var][1 if lit > 0 else 0].append(ci)


def unit_propagate(
    index: OccurrenceIndex,
    seed: Iterable[Tuple[int, bool]],
    base: Optional[Dict[int, bool]] = None,
) -> PropagationResult:
    """Propagate units from ``seed`` on top of the partial assignment ``base``.

    ``seed`` is an iterable of (variable index, value) decisions.  The
    returned assignment includes ``base``, the seeds, and everything
    implied.  Detects conflicts (a clause with every literal falsified).
    """
    assignment: Dict[int, bool] = dict(base) if base else {}
    queue: List[Tuple[int, bool]] = []

    def assign(var: int, value: bool) -> bool:
        existing = assignment.get(var)
        if existing is not None:
            return existing == value
        assignment[var] = value
        queue.append((var, value))
        return True

    for var, value in seed:
        if not assign(var, value):
            return PropagationResult(True, assignment)

    clauses = index.clauses
    occurrences = index.occurrences

    while queue:
        var, value = queue.pop()
        # Clauses where the assigned literal is falsified may become unit.
        affected = occurrences[var][0 if value else 1]
        for ci in affected:
            clause = clauses[ci]
            unit_lit = None
            satisfied = False
            for lit in clause:
                lvar = abs(lit) - 1
                lval = assignment.get(lvar)
                if lval is None:
                    if unit_lit is not None:
                        unit_lit = 0  # at least two free literals
                    else:
                        unit_lit = lit
                elif lval == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            if unit_lit is None:
                return PropagationResult(True, assignment)  # all falsified
            if unit_lit == 0:
                continue  # still has 2+ free literals
            uvar = abs(unit_lit) - 1
            if not assign(uvar, unit_lit > 0):
                return PropagationResult(True, assignment)

    return PropagationResult(False, assignment)


class WatchedIndex:
    """Two-watched-literal clause database (built once, reused forever).

    Each clause of length >= 2 watches two of its literals: the clause
    only needs attention when a *watched* literal is falsified, so an
    assignment touches ``O(watchers)`` clauses instead of every
    occurrence.  Watch positions are the first two slots of the
    (mutable) per-clause literal list; moves are never undone on
    backtracking — the invariant "a falsified watch is repaired before
    propagation finishes" is restored lazily on the next propagation.

    Length-0 clauses set :attr:`has_empty` (the database is trivially
    unsatisfiable); length-1 clauses go to :attr:`unit_literals` and are
    enqueued by the caller at the start of every solve.  Clause ids are
    list positions, aligned with the caller's pristine scan list.
    """

    __slots__ = ("num_vars", "clause_lits", "watches", "unit_literals", "has_empty")

    def __init__(self, clauses: Iterable[Tuple[int, ...]], num_vars: int):
        self.num_vars = num_vars
        self.clause_lits: List[List[int]] = []
        self.watches: Dict[int, List[int]] = {}
        self.unit_literals: List[int] = []
        self.has_empty = False
        for clause in clauses:
            self.add_clause(clause)

    def add_clause(self, literals: Iterable[int]) -> None:
        """Append a clause; safe between solves (never mid-propagation)."""
        lits = list(literals)
        ci = len(self.clause_lits)
        self.clause_lits.append(lits)
        if not lits:
            self.has_empty = True
        elif len(lits) == 1:
            self.unit_literals.append(lits[0])
        else:
            self.watches.setdefault(lits[0], []).append(ci)
            self.watches.setdefault(lits[1], []).append(ci)


def propagate_watched(
    index: WatchedIndex,
    values: List[Optional[bool]],
    trail: List[int],
    qhead: int,
) -> Tuple[bool, int]:
    """Propagate to fixpoint from ``trail[qhead:]``; mutates in place.

    ``values`` maps variable index -> assigned value (None = free);
    ``trail`` holds assigned literal codes in assignment order.  Implied
    literals are assigned into ``values`` and appended to ``trail``.

    Returns ``(ok, qhead')``: ``ok`` is False when a clause was
    falsified (callers backtrack via the trail; watch invariants stay
    intact either way).
    """
    clause_lits = index.clause_lits
    watches = index.watches
    while qhead < len(trail):
        false_lit = -trail[qhead]
        qhead += 1
        watchers = watches.get(false_lit)
        if not watchers:
            continue
        kept: List[int] = []
        pos = 0
        total = len(watchers)
        while pos < total:
            ci = watchers[pos]
            pos += 1
            lits = clause_lits[ci]
            if lits[0] == false_lit:
                lits[0] = lits[1]
                lits[1] = false_lit
            first = lits[0]
            fvar = first - 1 if first > 0 else -first - 1
            fval = values[fvar]
            if fval is not None and fval == (first > 0):
                kept.append(ci)  # satisfied by the other watch
                continue
            moved = False
            for k in range(2, len(lits)):
                other = lits[k]
                ovar = other - 1 if other > 0 else -other - 1
                oval = values[ovar]
                if oval is None or oval == (other > 0):
                    lits[1] = other
                    lits[k] = false_lit
                    watches.setdefault(other, []).append(ci)
                    moved = True
                    break
            if moved:
                continue
            kept.append(ci)  # no replacement: clause is unit or falsified
            if fval is None:
                values[fvar] = first > 0
                trail.append(first)
            else:
                kept.extend(watchers[pos:])
                watches[false_lit] = kept
                return False, qhead
        watches[false_lit] = kept
    return True, qhead


def _repair_watches(
    index: WatchedIndex,
    values: List[Optional[bool]],
    base: Dict[int, bool],
) -> None:
    """Move watches off literals falsified by an unpropagated base.

    ``propagate_watched`` relies on the invariant that a clause's first
    watch is only falsified while its falsifying assignment is still
    pending in the queue.  A base installed directly into ``values``
    breaks that (nothing is pending), so a clause can end up watched on
    two literals where one is already false — a later watch move would
    then skip a unit implication.  This pass re-points such watches at
    non-false literals where any exist.  Clauses with at most one
    non-false literal are left alone (unit under the base): asserting
    them would derive more than the occurrence-list reference does.
    """
    clause_lits = index.clause_lits
    watches = index.watches
    for var, value in base.items():
        false_lit = -(var + 1) if value else (var + 1)
        watchers = watches.get(false_lit)
        if not watchers:
            continue
        kept: List[int] = []
        for ci in watchers:
            lits = clause_lits[ci]
            if lits[0] == false_lit:
                lits[0], lits[1] = lits[1], lits[0]
            moved = False
            for k in range(2, len(lits)):
                other = lits[k]
                ovar = other - 1 if other > 0 else -other - 1
                oval = values[ovar]
                if oval is None or oval == (other > 0):
                    lits[1] = other
                    lits[k] = false_lit
                    watches.setdefault(other, []).append(ci)
                    moved = True
                    break
            if not moved:
                kept.append(ci)
        watches[false_lit] = kept


def watched_propagate_from_seed(
    index: WatchedIndex,
    seed: Iterable[Tuple[int, bool]],
    base: Optional[Dict[int, bool]] = None,
) -> PropagationResult:
    """Drop-in :func:`unit_propagate` twin running on watched literals.

    Exists so the differential tests can compare the two engines
    call-for-call; the solver session drives :func:`propagate_watched`
    directly (no dict copies, trail-based backtracking).

    Parity notes: like ``unit_propagate``, base literals are not
    re-queued, and length-1 clauses assert nothing on their own — but an
    assignment made *during this call* against a unit clause is a
    conflict (``unit_propagate`` sees it through the occurrence lists;
    units are outside the watch database, so we check them explicitly).
    """
    values: List[Optional[bool]] = [None] * index.num_vars
    trail: List[int] = []
    if base:
        for var, value in base.items():
            values[var] = value
            trail.append(var + 1 if value else -(var + 1))
        # Base literals are installed without propagation, which can
        # leave clauses watched on base-falsified literals.  Repair the
        # watch invariant (move watches off falsified literals) without
        # asserting anything: implications that follow from the base
        # alone stay underived, matching ``unit_propagate``.
        _repair_watches(index, values, base)
    start = len(trail)
    conflict = False
    for var, value in seed:
        existing = values[var]
        if existing is None:
            values[var] = value
            trail.append(var + 1 if value else -(var + 1))
        elif existing != value:
            conflict = True
            break
    if not conflict:
        ok, _ = propagate_watched(index, values, trail, start)
        conflict = not ok
    if not conflict and index.unit_literals:
        assigned_now = {
            lit - 1 if lit > 0 else -lit - 1 for lit in trail[start:]
        }
        for lit in index.unit_literals:
            var = lit - 1 if lit > 0 else -lit - 1
            if var in assigned_now and values[var] != (lit > 0):
                conflict = True
                break
    assignment = {
        var: value for var, value in enumerate(values) if value is not None
    }
    return PropagationResult(conflict, assignment)

"""Boolean constraint propagation (unit propagation).

Both the DPLL solver and the MSA procedure lean on unit propagation.  We
work on the integer-indexed clause form (:class:`repro.logic.cnf.IndexedCNF`
encoding): a literal is ``idx + 1`` or ``-(idx + 1)``.

The implementation keeps per-literal occurrence lists and a counter of
satisfied/falsified literals per clause, which is simpler than two-watched
literals and fast enough at the scale of this reproduction (thousands of
variables and clauses per benchmark).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

__all__ = ["PropagationResult", "unit_propagate", "OccurrenceIndex"]


class PropagationResult(NamedTuple):
    """Outcome of a propagation run.

    ``conflict`` is True when a clause became empty.  ``assignment`` maps
    variable index -> bool for every variable assigned so far (including
    the seed literals).
    """

    conflict: bool
    assignment: Dict[int, bool]


class OccurrenceIndex:
    """Occurrence lists for a clause database (built once, reused)."""

    def __init__(self, clauses: Sequence[Tuple[int, ...]], num_vars: int):
        self.clauses = list(clauses)
        self.num_vars = num_vars
        # occurrences[var][polarity] -> clause indices where (var, polarity)
        # appears; polarity 1 = positive, 0 = negative.
        self.occurrences: List[Tuple[List[int], List[int]]] = [
            ([], []) for _ in range(num_vars)
        ]
        for ci, clause in enumerate(self.clauses):
            for lit in clause:
                var = abs(lit) - 1
                self.occurrences[var][1 if lit > 0 else 0].append(ci)


def unit_propagate(
    index: OccurrenceIndex,
    seed: Iterable[Tuple[int, bool]],
    base: Optional[Dict[int, bool]] = None,
) -> PropagationResult:
    """Propagate units from ``seed`` on top of the partial assignment ``base``.

    ``seed`` is an iterable of (variable index, value) decisions.  The
    returned assignment includes ``base``, the seeds, and everything
    implied.  Detects conflicts (a clause with every literal falsified).
    """
    assignment: Dict[int, bool] = dict(base) if base else {}
    queue: List[Tuple[int, bool]] = []

    def assign(var: int, value: bool) -> bool:
        existing = assignment.get(var)
        if existing is not None:
            return existing == value
        assignment[var] = value
        queue.append((var, value))
        return True

    for var, value in seed:
        if not assign(var, value):
            return PropagationResult(True, assignment)

    clauses = index.clauses
    occurrences = index.occurrences

    while queue:
        var, value = queue.pop()
        # Clauses where the assigned literal is falsified may become unit.
        affected = occurrences[var][0 if value else 1]
        for ci in affected:
            clause = clauses[ci]
            unit_lit = None
            satisfied = False
            for lit in clause:
                lvar = abs(lit) - 1
                lval = assignment.get(lvar)
                if lval is None:
                    if unit_lit is not None:
                        unit_lit = 0  # at least two free literals
                    else:
                        unit_lit = lit
                elif lval == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            if unit_lit is None:
                return PropagationResult(True, assignment)  # all falsified
            if unit_lit == 0:
                continue  # still has 2+ free literals
            uvar = abs(unit_lit) - 1
            if not assign(uvar, unit_lit > 0):
                return PropagationResult(True, assignment)

    return PropagationResult(False, assignment)

"""Incremental solver sessions: compile a CNF once, query it many times.

The reduction stack re-solves near-identical problems relentlessly: GBR,
PROGRESSION, and the MSA fallback all call ``solve()`` on the same CNF
under different assumptions.  The one-shot solver pays per call for
``CNF.to_indexed()`` (a full repr-sort of the universe), an occurrence
index rebuild, and a fresh assignment dict copied at every decision.

A :class:`SolverSession` pays those costs once:

- the :class:`~repro.logic.cnf.IndexedCNF` compilation is persistent
  (and memoized on the CNF itself, see :meth:`CNF.to_indexed`),
- propagation runs on two-watched-literal structures
  (:class:`~repro.logic.propagation.WatchedIndex`) built once — watch
  moves are never undone, so backtracking and repeated queries cost
  nothing to prepare,
- assumptions are pushed onto a trail and popped after each query; the
  assignment lives in one flat array, not per-decision dict copies.

Results are **byte-identical** to the one-shot solver: the search keeps
the same false-first value order and the same branch heuristic (first
free literal of the first shortest unsatisfied clause in clause order),
and unit propagation reaches the same fixpoints (propagation is
confluent), so every model — and therefore every downstream
``ReductionResult`` — matches the legacy engine.  The differential
tests in ``tests/logic`` assert exactly this.

Sessions are deliberately *not* thread-safe (the trail and watch lists
are mutable); create one session per thread, as the parallel corpus
runner does per instance.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.logic.cnf import CNF, Clause, IndexedCNF
from repro.logic.propagation import WatchedIndex, propagate_watched
from repro.observability import get_metrics, get_tracer
from repro.observability.spans import NULL_SPAN

__all__ = ["SatResult", "SolverSession"]

VarName = Hashable


class SatResult(NamedTuple):
    """Result of a SAT call: satisfiable flag plus a model (if SAT).

    The model is returned as the frozenset of true variable names; all
    other variables in the CNF's universe are false.
    """

    satisfiable: bool
    model: Optional[FrozenSet[VarName]]


class _SolverStats:
    """Per-call DPLL counters, pushed to the metrics registry once.

    The inner loops are the hottest code in the repo, so we count with
    plain attribute adds here and do a single ``Counter.inc`` per solver
    call.
    """

    __slots__ = ("decisions", "propagations", "conflicts")

    def __init__(self) -> None:
        self.decisions = 0
        self.propagations = 0
        self.conflicts = 0

    def publish(self, satisfiable: bool) -> None:
        metrics = get_metrics()
        metrics.counter("solver.calls").inc()
        if satisfiable:
            metrics.counter("solver.sat").inc()
        else:
            metrics.counter("solver.unsat").inc()
        if self.decisions:
            metrics.counter("solver.decisions").inc(self.decisions)
        if self.propagations:
            metrics.counter("solver.propagations").inc(self.propagations)
        if self.conflicts:
            metrics.counter("solver.conflicts").inc(self.conflicts)


class SolverSession:
    """A reusable DPLL context over one compiled clause database.

    Args:
        cnf: the CNF to compile.  ``to_indexed()`` is memoized on the
            CNF, so sessions over the same CNF share the compilation.
        order: optional explicit variable order (defaults to the CNF's
            deterministic repr-sort).
        indexed: pre-compiled form; mutually exclusive with ``cnf``
            being required (used by ``solve_indexed`` interop).

    The session owns private scan/watch structures — the shared
    ``IndexedCNF`` is never mutated — so clauses may be appended to the
    session (:meth:`add_clause`) without touching the source CNF's
    memoized compilation.
    """

    def __init__(
        self,
        cnf: Optional[CNF] = None,
        order: Optional[Sequence[VarName]] = None,
        indexed: Optional[IndexedCNF] = None,
    ):
        if indexed is None:
            if cnf is None:
                raise ValueError("SolverSession needs a CNF or an IndexedCNF")
            indexed = cnf.to_indexed(order)
        self.cnf = cnf
        self.indexed = indexed
        #: Pristine clause tuples for the branch heuristic scan;
        #: session-private (appended to by :meth:`add_clause`).
        self.scan_clauses: List[Tuple[int, ...]] = list(indexed.clauses)
        self._watched = WatchedIndex(indexed.clauses, indexed.num_vars)
        self._values: List[Optional[bool]] = [None] * indexed.num_vars
        self._trail: List[int] = []
        self._pos_occurrences: Optional[Dict[VarName, List[Clause]]] = None
        self.solves = 0

    # -- clause database ------------------------------------------------------

    def add_clause(self, clause: Clause) -> None:
        """Append a clause (named form) to this session's database.

        Every variable of the clause must already be in the compiled
        universe.  Safe between queries, never during one.
        """
        index = self.indexed.index
        encoded = tuple(
            sorted(
                (index[lit.var] + 1) if lit.positive else -(index[lit.var] + 1)
                for lit in clause
            )
        )
        self.scan_clauses.append(encoded)
        self._watched.add_clause(encoded)
        if self._pos_occurrences is not None:
            for var in clause.positives:
                self._pos_occurrences.setdefault(var, []).append(clause)

    def positive_occurrences(self) -> Dict[VarName, List[Clause]]:
        """Per-variable index of clauses containing the variable positively.

        Built once (lazily) and kept current by :meth:`add_clause`;
        :func:`repro.logic.msa.minimize_model` threads this through its
        removal re-verification so each attempt touches only the
        clauses the removed variable can break.
        """
        if self._pos_occurrences is None:
            if self.cnf is None:
                raise ValueError(
                    "positive_occurrences needs a session built from a CNF"
                )
            occurrences: Dict[VarName, List[Clause]] = {}
            for clause in self.cnf.clauses:
                for var in clause.positives:
                    occurrences.setdefault(var, []).append(clause)
            self._pos_occurrences = occurrences
        return self._pos_occurrences

    # -- queries --------------------------------------------------------------

    def solve(
        self,
        assume_true: AbstractSet[VarName] = frozenset(),
        assume_false: AbstractSet[VarName] = frozenset(),
    ) -> SatResult:
        """Decide satisfiability under the given assumptions.

        Assumption handling matches the one-shot solver exactly: names
        outside the compiled universe are ignored (but a name assumed
        both ways is unsatisfiable even then).
        """
        index = self.indexed.index
        seed: List[Tuple[int, bool]] = []
        for name in assume_true:
            if name in index:
                seed.append((index[name], True))
        for name in assume_false:
            if name in index:
                seed.append((index[name], False))
            if name in assume_true:
                return SatResult(False, None)
        satisfiable, model = self.solve_seed(seed)
        if not satisfiable:
            return SatResult(False, None)
        assert model is not None
        return SatResult(True, self.indexed.decode(model))

    def is_satisfiable(
        self,
        assume_true: AbstractSet[VarName] = frozenset(),
        assume_false: AbstractSet[VarName] = frozenset(),
    ) -> bool:
        """Shorthand for ``solve(...).satisfiable``."""
        return self.solve(assume_true, assume_false).satisfiable

    def solve_seed(
        self, seed: Iterable[Tuple[int, bool]] = ()
    ) -> Tuple[bool, Optional[FrozenSet[int]]]:
        """Index-level query: seed is (variable index, value) pairs.

        Returns (satisfiable, set of true variable indices); the trail
        is fully popped before returning, so the session is clean for
        the next query.
        """
        stats = _SolverStats()
        tracer = get_tracer()
        if tracer.enabled:
            cm = tracer.span(
                "solver.solve",
                variables=self.indexed.num_vars,
                clauses=len(self.scan_clauses),
            )
        else:
            cm = NULL_SPAN
        with cm as sp:
            satisfiable, model = self._solve(seed, stats)
            sp.set_attr("satisfiable", satisfiable)
            sp.set_attr("decisions", stats.decisions)
            sp.set_attr("conflicts", stats.conflicts)
        stats.publish(satisfiable)
        self.solves += 1
        return satisfiable, model

    def is_clean(self) -> bool:
        """Push/pop invariant: no assignment survives between queries."""
        return not self._trail and all(v is None for v in self._values)

    # -- internals ------------------------------------------------------------

    def _solve(
        self, seed: Iterable[Tuple[int, bool]], stats: _SolverStats
    ) -> Tuple[bool, Optional[FrozenSet[int]]]:
        if self._watched.has_empty:
            return False, None  # an empty clause is trivially unsatisfiable
        values = self._values
        trail = self._trail
        try:
            ok = True
            for lit in self._watched.unit_literals:
                if not self._assume_literal(lit):
                    ok = False
                    break
            if ok:
                for var, value in seed:
                    if not self._assume_literal(
                        var + 1 if value else -(var + 1)
                    ):
                        ok = False
                        break
            if ok:
                enqueued = len(trail)
                ok, _ = propagate_watched(self._watched, values, trail, 0)
                if ok:
                    stats.propagations += len(trail) - enqueued
            if not ok:
                stats.conflicts += 1
                return False, None
            if not self._search(stats, (), 0):
                return False, None
            model = frozenset(i for i, v in enumerate(values) if v)
            return True, model
        finally:
            self._backtrack(0)

    def _assume_literal(self, lit: int) -> bool:
        var = lit - 1 if lit > 0 else -lit - 1
        existing = self._values[var]
        if existing is None:
            self._values[var] = lit > 0
            self._trail.append(lit)
            return True
        return existing == (lit > 0)

    def _backtrack(self, mark: int) -> None:
        values = self._values
        trail = self._trail
        for i in range(len(trail) - 1, mark - 1, -1):
            lit = trail[i]
            values[lit - 1 if lit > 0 else -lit - 1] = None
        del trail[mark:]

    def _search(
        self, stats: _SolverStats, alive: Tuple[Tuple[int, ...], ...], start: int
    ) -> bool:
        """Recursive DPLL on top of a propagated partial assignment.

        ``alive``/``start`` carry the incremental scan state (see
        :meth:`_pick_branch`): along one search path assignments only
        grow, so clauses found satisfied at this node never need
        re-checking deeper down.  Backtracking needs no undo — each
        depth keeps its own immutable state.
        """
        var, alive, start = self._pick_branch(alive, start)
        if var is None:
            return True  # every clause satisfied
        values = self._values
        trail = self._trail
        for value in (False, True):  # false-first: prefer small models
            stats.decisions += 1
            mark = len(trail)
            values[var] = value
            trail.append(var + 1 if value else -(var + 1))
            ok, _ = propagate_watched(self._watched, values, trail, mark)
            if ok:
                # Everything newly assigned beyond the decision itself
                # was implied.
                stats.propagations += len(trail) - mark - 1
                if self._search(stats, alive, start):
                    return True
            else:
                stats.conflicts += 1
            self._backtrack(mark)
        return False

    def _pick_branch(
        self, alive: Tuple[Tuple[int, ...], ...], start: int
    ) -> Tuple[Optional[int], Tuple[Tuple[int, ...], ...], int]:
        """Pick a free variable from the shortest unsatisfied clause.

        Identical semantics to the legacy solver's heuristic — first
        free literal of the first clause attaining the minimum free
        count, clauses in database order — which is what keeps models
        byte-identical across engines.  Two fixpoint-only shortcuts make
        it cheap (we always branch on a completed propagation fixpoint,
        where an unsatisfied clause has >= 2 free literals — one free
        would be a pending unit, zero a conflict):

        - the scan early-exits at ``free == 2``: no later clause can
          attain a smaller count, so the first 2-free clause IS the
          first minimal one (the legacy engine cannot do this — its
          root assignment is not a fixpoint, so it must keep scanning
          for a 1-free clause);
        - candidates narrow as the search deepens: clauses found
          satisfied here stay satisfied below, so only ``alive``
          (clauses seen unsatisfied with free > 2, in database order)
          and the unscanned tail from ``start`` are rescanned.

        Returns ``(branch var or None, alive', start')`` where the
        primed state is the child scan's candidate set.
        """
        values = self._values
        scan_clauses = self.scan_clauses
        total = len(scan_clauses)
        best_var: Optional[int] = None
        best_free: Optional[int] = None
        survivors: List[Tuple[int, ...]] = []
        position = start
        from_tail = False
        source = iter(alive)
        while True:
            if not from_tail:
                clause = next(source, None)
                if clause is None:
                    from_tail = True
                    continue
            else:
                if position >= total:
                    break
                clause = scan_clauses[position]
                position += 1
            free_count = 0
            first_free = -1
            satisfied = False
            for lit in clause:
                var = lit - 1 if lit > 0 else -lit - 1
                value = values[var]
                if value is None:
                    free_count += 1
                    if first_free < 0:
                        first_free = var
                elif value == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            if free_count == 0:
                # Propagation detects every falsified clause before we
                # branch.
                raise AssertionError(
                    f"falsified clause {clause!r} reached the branching step"
                )
            if best_free is None or free_count < best_free:
                best_free = free_count
                best_var = first_free
                if best_free <= 2:
                    # The winning clause stays a candidate for deeper
                    # scans (the decision may not satisfy it).
                    survivors.append(clause)
                    break
            survivors.append(clause)
        if from_tail:
            remaining: Tuple[Tuple[int, ...], ...] = ()
            next_start = position
        else:
            # Broke inside `alive`: everything not yet drawn is still a
            # candidate, and the tail was never reached.
            remaining = tuple(source)
            next_start = start
        return best_var, tuple(survivors) + remaining, next_start

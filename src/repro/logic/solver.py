"""A DPLL SAT solver.

This is deliberately a classic DPLL (unit propagation + branching), not a
CDCL engine: the dependency constraints produced by the type rules are
overwhelmingly Horn-like implications (97.5% plain edges in the paper's
benchmarks), which BCP handles almost entirely on its own.  The solver
branches false-first, which biases discovered models toward *small* true
sets — useful because callers in :mod:`repro.logic.msa` minimize models.

Two engines answer queries:

- :class:`repro.logic.session.SolverSession` — the production engine:
  persistent compilation, two-watched-literal propagation, trail-based
  backtracking.  :func:`solve` runs every one-shot query through a
  session over the CNF's memoized compilation.
- the occurrence-list engine below (:func:`solve_indexed`,
  :func:`solve_legacy`) — the original per-call implementation, kept as
  the executable reference baseline: differential tests assert the two
  engines return byte-identical models, and the hot-path benchmark
  (``benchmarks/bench_solver_hotpath.py``) reports the session's speedup
  over it.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.logic.cnf import CNF, IndexedCNF
from repro.logic.propagation import OccurrenceIndex, unit_propagate
from repro.logic.session import SatResult, SolverSession, _SolverStats
from repro.observability import get_tracer
from repro.observability.spans import NULL_SPAN

__all__ = [
    "SatResult",
    "solve",
    "is_satisfiable",
    "solve_indexed",
    "solve_legacy",
]

VarName = Hashable


def solve(
    cnf: CNF,
    assume_true: AbstractSet[VarName] = frozenset(),
    assume_false: AbstractSet[VarName] = frozenset(),
) -> SatResult:
    """Decide satisfiability of ``cnf`` under the given assumptions.

    One-shot convenience over :class:`SolverSession`; the CNF's
    compilation is memoized, so repeated calls on the same CNF only pay
    for the session's (cheap) watch/scan setup.  Callers with a genuinely
    hot loop should hold a session and call it directly.
    """
    return SolverSession(cnf).solve(assume_true, assume_false)


def is_satisfiable(
    cnf: CNF,
    assume_true: AbstractSet[VarName] = frozenset(),
    assume_false: AbstractSet[VarName] = frozenset(),
) -> bool:
    """Shorthand for ``solve(...).satisfiable``."""
    return solve(cnf, assume_true, assume_false).satisfiable


def solve_legacy(
    cnf: CNF,
    assume_true: AbstractSet[VarName] = frozenset(),
    assume_false: AbstractSet[VarName] = frozenset(),
) -> SatResult:
    """The pre-session code path, preserved verbatim as a baseline.

    Pays the original per-call costs on purpose — a fresh repr-sort of
    the universe, a fresh :class:`OccurrenceIndex`, dict-copy
    backtracking — so benchmarks and differential tests measure against
    the real former behaviour, not a half-accelerated one.
    """
    indexed = IndexedCNF(cnf, sorted(cnf.variables, key=repr))
    seed: List[Tuple[int, bool]] = []
    for name in assume_true:
        if name in indexed.index:
            seed.append((indexed.index[name], True))
    for name in assume_false:
        if name in indexed.index:
            seed.append((indexed.index[name], False))
        if name in assume_true:
            return SatResult(False, None)
    sat, model_indices = solve_indexed(indexed, seed)
    if not sat:
        return SatResult(False, None)
    assert model_indices is not None
    return SatResult(True, indexed.decode(model_indices))


def solve_indexed(
    indexed: IndexedCNF,
    seed: Iterable[Tuple[int, bool]] = (),
) -> Tuple[bool, Optional[FrozenSet[int]]]:
    """DPLL over the integer-indexed form (occurrence-list engine).

    Returns (satisfiable, set of true variable indices).  Unconstrained
    variables are left false, biasing the model toward small true sets.
    """
    stats = _SolverStats()
    tracer = get_tracer()
    if tracer.enabled:
        cm = tracer.span(
            "solver.solve",
            variables=indexed.num_vars,
            clauses=len(indexed.clauses),
        )
    else:
        cm = NULL_SPAN
    with cm as sp:
        satisfiable, model = _solve_indexed(indexed, seed, stats)
        sp.set_attr("satisfiable", satisfiable)
        sp.set_attr("decisions", stats.decisions)
        sp.set_attr("conflicts", stats.conflicts)
    stats.publish(satisfiable)
    return satisfiable, model


def _solve_indexed(
    indexed: IndexedCNF,
    seed: Iterable[Tuple[int, bool]],
    stats: _SolverStats,
) -> Tuple[bool, Optional[FrozenSet[int]]]:
    if any(not clause for clause in indexed.clauses):
        return False, None  # an empty clause is trivially unsatisfiable
    index = OccurrenceIndex(indexed.clauses, indexed.num_vars)
    seed = list(seed)
    result = unit_propagate(index, seed)
    if result.conflict:
        stats.conflicts += 1
        return False, None
    stats.propagations += len(result.assignment) - len(seed)
    assignment = result.assignment
    final = _dpll(index, assignment, stats)
    if final is None:
        return False, None
    true_indices = frozenset(v for v, val in final.items() if val)
    return True, true_indices


def _dpll(
    index: OccurrenceIndex,
    assignment: Dict[int, bool],
    stats: _SolverStats,
) -> Optional[Dict[int, bool]]:
    """Recursive DPLL search on top of a propagated partial assignment."""
    branch_var = _pick_branch_variable(index, assignment)
    if branch_var is None:
        return assignment  # every clause satisfied
    for value in (False, True):  # false-first: prefer small models
        stats.decisions += 1
        result = unit_propagate(index, [(branch_var, value)], base=assignment)
        if result.conflict:
            stats.conflicts += 1
            continue
        # Everything newly assigned beyond the decision itself was implied.
        stats.propagations += len(result.assignment) - len(assignment) - 1
        final = _dpll(index, result.assignment, stats)
        if final is not None:
            return final
    return None


def _pick_branch_variable(
    index: OccurrenceIndex, assignment: Dict[int, bool]
) -> Optional[int]:
    """Pick a free variable from the shortest unsatisfied clause.

    Returns None when all clauses are satisfied (so any remaining free
    variables can default to false).
    """
    best_var: Optional[int] = None
    best_free = None
    for clause in index.clauses:
        free: List[int] = []
        satisfied = False
        for lit in clause:
            var = abs(lit) - 1
            value = assignment.get(var)
            if value is None:
                free.append(var)
            elif value == (lit > 0):
                satisfied = True
                break
        if satisfied:
            continue
        if not free:
            # Propagation detects every falsified clause before we branch.
            free_conflict(clause)
        if best_free is None or len(free) < best_free:
            best_free = len(free)
            best_var = free[0]
            if best_free == 1:
                break
    return best_var


def free_conflict(clause: Tuple[int, ...]) -> int:
    """Unreachable guard: a falsified clause survived propagation."""
    raise AssertionError(
        f"falsified clause {clause!r} reached the branching step"
    )

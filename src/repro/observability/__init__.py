"""Structured tracing, metrics, and JSONL run telemetry.

The paper's whole evaluation is run telemetry — predicate-invocation
counts, wall-clock, best-size-over-time — and the ROADMAP's performance
work needs per-phase visibility into the solver / #SAT / progression hot
paths.  This package is that layer, zero-dependency and no-op by
default:

- :mod:`repro.observability.spans` — nestable span timers with a
  thread-local context and a process-global :class:`Tracer` (disabled
  unless installed, so instrumented hot paths pay one attribute check),
- :mod:`repro.observability.metrics` — a registry of named counters,
  gauges, and fixed-bucket histograms with ``snapshot()`` / ``reset()``,
- :mod:`repro.observability.sink` — the JSONL event sink plus
  ``load_trace()`` and ``summarize()`` (per-span-name total/mean/p95,
  counter totals) behind ``jlreduce trace summarize``.

Instrumented call sites: GBR iterations and prefix-search probes,
progression rebuilds, predicate cache hits/misses and fresh-call
latency, DPLL decisions/propagations/conflicts, #SAT component-cache
hits, MSA clause repairs, per-instance harness phases, and the
resilience layer (``predicate.retries`` / ``predicate.timeouts`` from
:class:`~repro.resilience.predicate.ResilientPredicate`,
``runner.failures`` from degraded corpus instances).

:func:`tracing_session` is the one-stop entry point::

    with tracing_session() as (tracer, metrics):
        result = generalized_binary_reduction(problem)
    write_trace("run.jsonl", tracer, metrics)
"""

from contextlib import contextmanager
from typing import Iterator, Tuple

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_deltas,
    get_metrics,
    scoped_metrics,
    set_metrics,
)
from repro.observability.sink import (
    JsonlSink,
    load_trace,
    render_summary,
    summarize,
    write_trace,
)
from repro.observability.spans import (
    NULL_SPAN,
    SpanEvent,
    Tracer,
    get_tracer,
    set_tracer,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter_deltas",
    "get_metrics",
    "scoped_metrics",
    "set_metrics",
    "JsonlSink",
    "load_trace",
    "render_summary",
    "summarize",
    "write_trace",
    "SpanEvent",
    "Tracer",
    "NULL_SPAN",
    "get_tracer",
    "set_tracer",
    "span",
    "tracing_session",
]


@contextmanager
def tracing_session() -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Install a fresh enabled tracer and a fresh metrics registry.

    Yields ``(tracer, metrics)`` scoped to the ``with`` block; the
    previous globals are restored on exit, so nothing from the session
    bleeds into (or out of) the surrounding process state.
    """
    tracer = Tracer(enabled=True)
    metrics = MetricsRegistry()
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(metrics)
    try:
        yield tracer, metrics
    finally:
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)

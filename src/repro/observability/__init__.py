"""Structured tracing, metrics, and JSONL run telemetry.

The paper's whole evaluation is run telemetry — predicate-invocation
counts, wall-clock, best-size-over-time — and the ROADMAP's performance
work needs per-phase visibility into the solver / #SAT / progression hot
paths.  This package is that layer, zero-dependency and no-op by
default.

Observability v2 (DESIGN.md §9) made it causal and multi-process:

- :mod:`repro.observability.context` — serializable
  :class:`TraceContext` capsules (``run_id``/``trace_id``/``span_id``/
  serial slot/worker shard) that hop threads today and process-pool
  workers next PR,
- :mod:`repro.observability.spans` — nestable span timers with dual
  clocks (wall + virtual), causal parent links across workers via
  :meth:`Tracer.attach`, free-form ledger events, and a process-global
  :class:`Tracer` (disabled unless installed, so instrumented hot paths
  pay one attribute check),
- :mod:`repro.observability.metrics` — a registry of named counters,
  gauges, and fixed-bucket histograms with ``snapshot()`` / ``reset()``,
- :mod:`repro.observability.shard` — per-worker JSONL shard files with
  a deterministic serial-commit-order merge,
- :mod:`repro.observability.sink` — JSONL trace write/load (torn-line
  tolerant) and ``summarize()`` behind ``jlreduce trace summarize``,
- :mod:`repro.observability.provenance` — the probe provenance ledger
  (why did this probe run, at what cost on both clocks) behind
  ``jlreduce trace explain``,
- :mod:`repro.observability.profiling` — opt-in per-phase cProfile
  hotspot capture,
- :mod:`repro.observability.tooling` — timeline / folded-stack flame /
  two-clock diff / Prometheus export over the merged event stream.

Instrumented call sites: GBR iterations and prefix-search probes,
progression rebuilds, predicate cache hits/misses and fresh-call
latency, DPLL decisions/propagations/conflicts, #SAT component-cache
hits, MSA clause repairs, per-instance harness phases, and the
resilience layer (``predicate.retries`` / ``predicate.timeouts`` from
:class:`~repro.resilience.predicate.ResilientPredicate`,
``runner.failures`` from degraded corpus instances).

:func:`tracing_session` is the one-stop entry point::

    with tracing_session() as (tracer, metrics):
        result = generalized_binary_reduction(problem)
    write_trace("run.jsonl", tracer, metrics)

For a sharded (multi-worker) session, hand it a
:class:`~repro.observability.shard.ShardSet`::

    with ShardSet("run.jsonl", run_id=run_id) as shards:
        with tracing_session(run_id=run_id, shards=shards) as (t, m):
            run_parallel_corpus_experiment(...)
"""

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.observability.context import TraceContext, new_run_id
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_deltas,
    get_metrics,
    scoped_metrics,
    set_metrics,
)
from repro.observability.profiling import profiled_phase, render_profile
from repro.observability.provenance import (
    current_probe_fields,
    explain,
    probe_scope,
    render_explain,
)
from repro.observability.shard import (
    ShardSet,
    discover_shards,
    expand_trace_args,
    merge_events,
    shard_path,
)
from repro.observability.sink import (
    JsonlSink,
    load_trace,
    load_traces,
    metric_events,
    render_summary,
    summarize,
    write_trace,
)
from repro.observability.spans import (
    NULL_SPAN,
    SpanEvent,
    Tracer,
    get_tracer,
    set_tracer,
    span,
)
from repro.observability.tooling import (
    baseline_totals,
    clock_totals,
    diff_traces,
    folded_stacks,
    prometheus_exposition,
    render_diff,
    render_timeline,
)

__all__ = [
    "TraceContext",
    "new_run_id",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter_deltas",
    "get_metrics",
    "scoped_metrics",
    "set_metrics",
    "profiled_phase",
    "render_profile",
    "current_probe_fields",
    "explain",
    "probe_scope",
    "render_explain",
    "ShardSet",
    "discover_shards",
    "expand_trace_args",
    "merge_events",
    "shard_path",
    "JsonlSink",
    "load_trace",
    "load_traces",
    "metric_events",
    "render_summary",
    "summarize",
    "write_trace",
    "SpanEvent",
    "Tracer",
    "NULL_SPAN",
    "get_tracer",
    "set_tracer",
    "span",
    "baseline_totals",
    "clock_totals",
    "diff_traces",
    "folded_stacks",
    "prometheus_exposition",
    "render_diff",
    "render_timeline",
    "tracing_session",
]


@contextmanager
def tracing_session(
    run_id: Optional[str] = None,
    shards: Optional[ShardSet] = None,
) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Install a fresh enabled tracer and a fresh metrics registry.

    Yields ``(tracer, metrics)`` scoped to the ``with`` block; the
    previous globals are restored on exit, so nothing from the session
    bleeds into (or out of) the surrounding process state.  With
    ``shards``, events stream to per-worker shard files instead of
    accumulating in memory.
    """
    tracer = Tracer(enabled=True, run_id=run_id)
    if shards is not None:
        tracer.set_shards(shards)
    metrics = MetricsRegistry()
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(metrics)
    try:
        yield tracer, metrics
    finally:
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)

"""Causal trace contexts that survive thread and process hops.

BENCH_5 exposed the diagnostic gap this module closes: speculation is
2.38x in simulated seconds but 0.85x in wall-clock, and the old
telemetry could not say *where* the wall time went because span parent
links never crossed threads — a probe evaluated on the speculation pool
produced a root span, causally orphaned from the ``speculate.round``
that issued it.

A :class:`TraceContext` is the serializable capsule that fixes that:

- ``run_id`` — one telemetry session (one CLI invocation, one bench);
- ``trace_id`` — one causal tree inside the run (the corpus runner
  derives one per instance task, so a merged trace groups cleanly);
- ``span_id`` — the nearest *recorded* span in the spawning frame; a
  worker that re-attaches the context parents its root spans here, so
  the merged timeline is one connected tree;
- ``serial`` — the task's serial commit position (the order
  ``runner.py``/``speculate.py`` merge results in), the primary sort
  key of the deterministic shard merge;
- ``worker`` — the shard label (``main``, ``w0`` ...); doubles as the
  span-id namespace so ids stay unique across workers and, next PR,
  across processes.

The capsule is a plain frozen dataclass of JSON-able scalars, so it
pickles into a ``ProcessPoolExecutor`` worker as cheaply as it hops a
thread: serialize with :meth:`to_dict`, rebuild with :meth:`from_dict`,
re-attach with :meth:`~repro.observability.spans.Tracer.attach`.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

__all__ = ["TraceContext", "new_run_id"]


def new_run_id(prefix: str = "run") -> str:
    """A fresh, globally-unique run identifier (``run-<12 hex>``)."""
    return f"{prefix}-{uuid.uuid4().hex[:12]}"


@dataclass(frozen=True)
class TraceContext:
    """Where in the causal tree the current code is executing.

    ``serial`` is -1 for code outside any serially-committed task (the
    parent process before fan-out); the shard merge sorts those events
    first.
    """

    run_id: str
    trace_id: str
    span_id: Optional[str] = None
    serial: int = -1
    worker: str = "main"

    def task(
        self,
        serial: int,
        worker: str,
        trace_id: Optional[str] = None,
    ) -> "TraceContext":
        """The context a fanned-out task should attach.

        Keeps the spawning span as the causal parent, moves to the
        task's serial slot and worker shard, and (by default) derives a
        per-task trace id so one instance's events group together.
        """
        return replace(
            self,
            serial=serial,
            worker=worker,
            trace_id=(
                trace_id
                if trace_id is not None
                else f"{self.trace_id}/{serial:04d}"
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON/pickle-friendly form (for process-pool workers)."""
        return {
            "run_id": self.run_id,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "serial": self.serial,
            "worker": self.worker,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceContext":
        return cls(
            run_id=payload["run_id"],
            trace_id=payload["trace_id"],
            span_id=payload.get("span_id"),
            serial=int(payload.get("serial", -1)),
            worker=payload.get("worker", "main"),
        )

"""A registry of named counters, gauges, and fixed-bucket histograms.

Unlike tracing (which is off by default because spans read the clock),
metrics are always on: incrementing a counter is one lock-protected
integer add, cheap enough for every call site in this codebase.  Truly
hot inner loops (DPLL propagation) still aggregate locally and push one
``inc`` per solver call — see :mod:`repro.logic.solver`.

Naming convention: dotted lowercase paths, ``<subsystem>.<what>``, e.g.
``solver.decisions``, ``counting.cache_hits``, ``predicate.calls``.

Concurrency model (the parallel corpus runner fans reduction runs out to
worker threads, all hitting this registry):

- every metric carries its own lock, so concurrent ``inc``/``set``/
  ``observe`` calls never lose updates;
- a registry can have a *parent*: every update is applied locally and
  then forwarded up the chain, so a scoped child sees only its own
  activity while the parent keeps the process-wide totals;
- :func:`scoped_metrics` installs a fresh child registry for the
  *current thread only* (:func:`get_metrics` checks the thread-local
  override first).  A reduction run wrapped in ``scoped_metrics()`` gets
  exact per-run counters even when other runs execute concurrently —
  this is what ``ReductionResult.extras['metrics']`` is built from.

The registry is process-global by default (:func:`get_metrics`), with
:func:`set_metrics` for swapping in a fresh one around a run — the CLI's
``--trace`` and the tests do this so runs don't bleed into each other.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "scoped_metrics",
    "counter_deltas",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Upper bounds (seconds) for latency histograms: 10 µs .. 10 s, with an
#: implicit overflow bucket above the last edge.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class Counter:
    """A monotonically-increasing count (thread-safe)."""

    __slots__ = ("name", "value", "_lock", "_parent")

    def __init__(self, name: str, parent: Optional["Counter"] = None):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()
        self._parent = parent

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n
        if self._parent is not None:
            self._parent.inc(n)

    def reset(self) -> None:
        with self._lock:
            self.value = 0


class Gauge:
    """A point-in-time value (last write wins; thread-safe)."""

    __slots__ = ("name", "value", "_lock", "_parent")

    def __init__(self, name: str, parent: Optional["Gauge"] = None):
        self.name = name
        self.value: float = 0.0
        self._lock = threading.Lock()
        self._parent = parent

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
        if self._parent is not None:
            self._parent.set(value)

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0


class Histogram:
    """A fixed-bucket histogram (cumulative-style, like Prometheus).

    ``buckets`` are sorted upper bounds; an observation lands in the
    first bucket whose bound is >= the value, or in the implicit
    overflow bucket past the end.  ``counts`` has ``len(buckets) + 1``
    entries (the last one is the overflow).  Observations are
    thread-safe.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count", "_lock",
                 "_parent")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float],
        parent: Optional["Histogram"] = None,
    ):
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()
        self._parent = parent

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.buckets, value)] += 1
            self.sum += value
            self.count += 1
        if self._parent is not None:
            self._parent.observe(value)

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(
        self, counts: Sequence[int], total: float, count: int
    ) -> None:
        """Fold another histogram's tallies in (forwards up the chain)."""
        with self._lock:
            for i, n in enumerate(counts):
                if i < len(self.counts):
                    self.counts[i] += n
            self.sum += total
            self.count += count
        if self._parent is not None:
            self._parent.merge(counts, total, count)

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.buckets) + 1)
            self.sum = 0.0
            self.count = 0


class MetricsRegistry:
    """Get-or-create registry of named metrics with snapshot/reset.

    Args:
        parent: optional registry every update is forwarded to.  A child
            registry sees only its own activity (perfect for per-run
            attribution) while the parent keeps accumulating totals —
            see :func:`scoped_metrics`.
    """

    def __init__(self, parent: Optional["MetricsRegistry"] = None) -> None:
        self._lock = threading.Lock()
        self._parent = parent
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    @property
    def parent(self) -> Optional["MetricsRegistry"]:
        return self._parent

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.get(name)
                if counter is None:
                    upstream = (
                        self._parent.counter(name) if self._parent else None
                    )
                    counter = Counter(name, parent=upstream)
                    self._counters[name] = counter
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.get(name)
                if gauge is None:
                    upstream = (
                        self._parent.gauge(name) if self._parent else None
                    )
                    gauge = Gauge(name, parent=upstream)
                    self._gauges[name] = gauge
        return gauge

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.get(name)
                if histogram is None:
                    upstream = (
                        self._parent.histogram(name, buckets)
                        if self._parent
                        else None
                    )
                    histogram = Histogram(name, buckets, parent=upstream)
                    self._histograms[name] = histogram
        return histogram

    # -- snapshots -----------------------------------------------------------

    def counter_values(self) -> Dict[str, int]:
        """Plain ``{name: value}`` of the counters (cheap, for diffing)."""
        with self._lock:
            return {name: c.value for name, c in self._counters.items()}

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly snapshot of every registered metric."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": {
                    n: {
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                    }
                    for n, h in self._histograms.items()
                },
            }

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        The corpus scheduler's worker processes run under their own
        registries and ship snapshots home with each result; merging at
        serial commit time keeps the parent's totals identical to an
        in-process run.  Counters add, gauges last-write-win, histogram
        bucket counts and sums add (bucket bounds must match — they are
        the module-constant latency buckets everywhere today).
        """
        for name, value in snapshot.get("counters", {}).items():
            if value:
                self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            if not data.get("count"):
                continue
            histogram = self.histogram(
                name, tuple(data.get("buckets") or DEFAULT_LATENCY_BUCKETS)
            )
            histogram.merge(
                data.get("counts", []),
                data.get("sum", 0.0),
                data.get("count", 0),
            )

    def reset(self) -> None:
        """Zero every metric (registrations are kept; parents untouched)."""
        with self._lock:
            for counter in self._counters.values():
                counter.reset()
            for gauge in self._gauges.values():
                gauge.reset()
            for histogram in self._histograms.values():
                histogram.reset()


def counter_deltas(
    before: Dict[str, int], after: Dict[str, int]
) -> Dict[str, int]:
    """Per-counter increase from ``before`` to ``after`` (non-zero only).

    Kept for trace tooling and tests; run attribution now uses
    :func:`scoped_metrics` instead, which stays exact when several runs
    execute concurrently.
    """
    return {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value - before.get(name, 0)
    }


_GLOBAL_METRICS = MetricsRegistry()
_THREAD_SCOPE = threading.local()


def get_metrics() -> MetricsRegistry:
    """The active registry: the thread's scope if set, else the global."""
    scoped = getattr(_THREAD_SCOPE, "registry", None)
    if scoped is not None:
        return scoped
    return _GLOBAL_METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` globally; returns the previous registry.

    This swaps the process-wide default; thread-local scopes installed
    by :func:`scoped_metrics` still take precedence on their threads.
    """
    global _GLOBAL_METRICS
    previous = _GLOBAL_METRICS
    _GLOBAL_METRICS = registry
    return previous


@contextmanager
def scoped_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Install a per-run child registry for the current thread.

    Inside the ``with`` block, :func:`get_metrics` on *this thread*
    returns a fresh child of the previously-active registry.  Updates
    apply to the child and forward to the parent chain, so:

    - the child's :meth:`~MetricsRegistry.counter_values` is exactly
      this run's activity, even with concurrent runs on other threads;
    - process-wide totals (and any ``--trace`` session registry) still
      see everything.

    Scopes nest; the previous scope is restored on exit.
    """
    child = registry if registry is not None else MetricsRegistry(
        parent=get_metrics()
    )
    previous = getattr(_THREAD_SCOPE, "registry", None)
    _THREAD_SCOPE.registry = child
    try:
        yield child
    finally:
        _THREAD_SCOPE.registry = previous

"""A registry of named counters, gauges, and fixed-bucket histograms.

Unlike tracing (which is off by default because spans read the clock),
metrics are always on: incrementing a counter is one integer add, cheap
enough for every call site in this codebase.  Truly hot inner loops
(DPLL propagation) still aggregate locally and push one ``inc`` per
solver call — see :mod:`repro.logic.solver`.

Naming convention: dotted lowercase paths, ``<subsystem>.<what>``, e.g.
``solver.decisions``, ``counting.cache_hits``, ``predicate.calls``.

The registry is process-global by default (:func:`get_metrics`), with
:func:`set_metrics` for swapping in a fresh one around a run — the CLI's
``--trace`` and the tests do this so runs don't bleed into each other.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "counter_deltas",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Upper bounds (seconds) for latency histograms: 10 µs .. 10 s, with an
#: implicit overflow bucket above the last edge.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class Counter:
    """A monotonically-increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """A fixed-bucket histogram (cumulative-style, like Prometheus).

    ``buckets`` are sorted upper bounds; an observation lands in the
    first bucket whose bound is >= the value, or in the implicit
    overflow bucket past the end.  ``counts`` has ``len(buckets) + 1``
    entries (the last one is the overflow).
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, buckets: Sequence[float]):
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0


class MetricsRegistry:
    """Get-or-create registry of named metrics with snapshot/reset."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name))
        return gauge

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(name, buckets)
                )
        return histogram

    # -- snapshots -----------------------------------------------------------

    def counter_values(self) -> Dict[str, int]:
        """Plain ``{name: value}`` of the counters (cheap, for diffing)."""
        return {name: c.value for name, c in self._counters.items()}

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly snapshot of every registered metric."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {
                n: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for n, h in self._histograms.items()
            },
        }

    def reset(self) -> None:
        """Zero every metric (registrations are kept)."""
        with self._lock:
            for counter in self._counters.values():
                counter.reset()
            for gauge in self._gauges.values():
                gauge.reset()
            for histogram in self._histograms.values():
                histogram.reset()


def counter_deltas(
    before: Dict[str, int], after: Dict[str, int]
) -> Dict[str, int]:
    """Per-counter increase from ``before`` to ``after`` (non-zero only).

    Used to attribute global-registry activity to one reduction run:
    snapshot :meth:`MetricsRegistry.counter_values` before and after, and
    the delta is what the run did (solver decisions, cache hits, ...).
    """
    return {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value - before.get(name, 0)
    }


_GLOBAL_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _GLOBAL_METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` globally; returns the previous registry."""
    global _GLOBAL_METRICS
    previous = _GLOBAL_METRICS
    _GLOBAL_METRICS = registry
    return previous

"""Opt-in per-phase cProfile capture, emitted into the trace stream.

Tracing answers *which phase* is slow; profiling answers *which
function inside the phase*.  BENCH_5's finding — speculation wins 2.38x
on the simulated clock but loses 0.85x on wall-clock — is exactly the
kind of question that needs both: the trace shows ``speculate.round``
eating the time, the profile shows the GIL-bound batch plumbing inside
it.

:func:`profiled_phase` wraps one phase of work in a ``cProfile``
profiler and emits a ``{"type": "profile"}`` ledger event carrying the
top-N hotspots (by cumulative time) plus folded call counts.  It is
strictly opt-in (``--profile-phases``): cProfile costs far more than
the ≤5% tracing budget, so it must never be on by default, and the
overhead gate (BENCH_6) runs without it.

Profiling is per-thread (cProfile hooks ``sys.setprofile`` on the
calling thread only) and non-reentrant: a nested ``profiled_phase``
inside an active one is a no-op, because two profilers on one thread
would fight over the hook.
"""

from __future__ import annotations

import cProfile
import pstats
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.observability.spans import Tracer, get_tracer

__all__ = ["profiled_phase", "render_profile"]

_ACTIVE = threading.local()


@contextmanager
def profiled_phase(
    phase: str,
    top: int = 10,
    tracer: Optional[Tracer] = None,
) -> Iterator[None]:
    """Profile the block and emit a ``profile`` event with top hotspots.

    ``phase`` labels the capture (e.g. ``"reduce"``); ``top`` bounds the
    hotspot table.  Uses the process-global tracer unless one is given;
    with a disabled tracer (or when nested inside another active
    capture on this thread) the block runs unprofiled.
    """
    tracer = tracer if tracer is not None else get_tracer()
    if not tracer.enabled or getattr(_ACTIVE, "on", False):
        yield
        return
    profiler = cProfile.Profile()
    _ACTIVE.on = True
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        _ACTIVE.on = False
        tracer.event("profile", phase=phase, top=_hotspots(profiler, top))


def _hotspots(profiler: cProfile.Profile, top: int) -> List[Dict[str, Any]]:
    """The top-N functions by cumulative time, JSONL-friendly."""
    stats = pstats.Stats(profiler)
    rows: List[Dict[str, Any]] = []
    for func, (cc, nc, tottime, cumtime, _callers) in stats.stats.items():
        filename, lineno, name = func
        rows.append({
            "func": _func_label(filename, lineno, name),
            "calls": nc,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        })
    rows.sort(key=lambda r: (-r["cumtime"], r["func"]))
    return rows[:top]


def _func_label(filename: str, lineno: int, name: str) -> str:
    if filename == "~":  # builtins
        return name
    short = filename
    for marker in ("/src/", "/lib/"):
        idx = filename.rfind(marker)
        if idx >= 0:
            short = filename[idx + len(marker):]
            break
    else:
        short = filename.rsplit("/", 1)[-1]
    return f"{short}:{lineno}:{name}"


def render_profile(event: Dict[str, Any]) -> str:
    """Human-readable hotspot table for one ``profile`` event."""
    lines = [f"profile: phase={event.get('phase', '?')}"]
    rows = event.get("top") or []
    if not rows:
        lines.append("  (no samples)")
        return "\n".join(lines)
    lines.append(
        f"  {'cumtime':>10} {'tottime':>10} {'calls':>8}  function"
    )
    for row in rows:
        lines.append(
            f"  {row['cumtime']:>10.4f} {row['tottime']:>10.4f} "
            f"{row['calls']:>8}  {row['func']}"
        )
    return "\n".join(lines)

"""The probe provenance ledger: why did this probe run, at what cost?

Every *physical* probe — a fresh predicate call or a cross-run store
hit, never a memo hit — emits one ``{"type": "probe"}`` ledger event
via :meth:`Tracer.event` (see
:meth:`repro.reduction.predicate.InstrumentedPredicate`).  The event
carries:

- causal addressing (``event_id``, ``span_id``, ``run_id``,
  ``trace_id``, ``serial``, ``worker``, ``seq``) and both clocks
  (``t`` wall, ``vt`` virtual) — stamped by the tracer;
- ``cache`` — ``"fresh"`` or ``"store"``;
- ``outcome`` — the predicate's boolean verdict;
- ``key`` — a short stable hash of the probed subset (joins a probe to
  its store entry);
- ``wall_seconds`` / ``virtual_charge`` — what the probe cost on each
  clock (store hits charge 0 virtual seconds);
- ``round`` / ``batch_pos`` — which speculation round issued it and
  where it sat in the batch (absent for sequential probes), annotated
  via :func:`probe_scope`;
- ``discarded`` — true for a probe that physically completed but whose
  outcome was thrown away because an earlier-in-order probe of the
  same speculative round raised (the sequential run would never have
  issued it); discarded probes charge 0 virtual seconds but still get
  their one ledger event;
- ``attempts`` / ``retries`` / ``timeouts`` — per-probe deltas from a
  wrapping :class:`~repro.resilience.predicate.ResilientPredicate`;
- ``budget_calls`` / ``budget_seconds`` — per-probe charges against a
  wrapping :class:`~repro.resilience.budget.Budget`.

Memo hits stay counter-only (``predicate.cache_hits``): they dominate
the hot path by an order of magnitude and recording each one would
blow the ≤5% tracing-overhead budget for information the counters
already carry.

:func:`explain` is the read side: given a merged event stream and a
probe handle (its ``event_id``, or a ``key`` prefix), it resolves the
probe's full causal chain — the span it ran under, that span's
ancestors up to the root — and renders the "why and what it cost"
answer ``jlreduce trace explain`` prints.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "probe_scope",
    "current_probe_fields",
    "explain",
    "render_explain",
]

_SCOPE = threading.local()


@contextmanager
def probe_scope(**fields: Any) -> Iterator[None]:
    """Annotate probes issued inside the block (thread-local, nestable).

    The speculation engine wraps each batch in
    ``probe_scope(round=n)``; the batch executor adds ``batch_pos``.
    Inner scopes shadow outer keys for their duration.
    """
    stack = getattr(_SCOPE, "stack", None)
    if stack is None:
        stack = []
        _SCOPE.stack = stack
    stack.append(fields)
    try:
        yield
    finally:
        stack.pop()


def current_probe_fields() -> Dict[str, Any]:
    """The merged annotations of all active :func:`probe_scope` blocks."""
    stack = getattr(_SCOPE, "stack", None)
    if not stack:
        return {}
    merged: Dict[str, Any] = {}
    for fields in stack:
        merged.update(fields)
    return merged


def explain(
    events: Sequence[Dict[str, Any]], handle: str
) -> Dict[str, Any]:
    """Resolve one probe's full provenance chain from a merged trace.

    ``handle`` matches a probe by exact ``event_id`` first, then by
    ``key`` prefix (first match in serial order).  Returns::

        {"probe": <the probe event>,
         "chain": [<owning span>, <its parent>, ..., <root span>]}

    Raises ``ValueError`` when no probe matches or a parent link
    dangles (which the tracer's leaked-span emission should prevent).
    """
    probes = [e for e in events if e.get("type") == "probe"]
    if not probes:
        raise ValueError("trace carries no probe ledger (schema-1 trace, "
                         "or the run was not traced)")
    probe = next(
        (p for p in probes if p.get("event_id") == handle), None
    )
    if probe is None:
        probe = next(
            (p for p in probes
             if str(p.get("key", "")).startswith(handle)),
            None,
        )
    if probe is None:
        raise ValueError(f"no probe matches {handle!r}")

    spans = {
        e["span_id"]: e
        for e in events
        if e.get("type") == "span" and e.get("span_id")
    }
    chain: List[Dict[str, Any]] = []
    span_id: Optional[str] = probe.get("span_id")
    seen = set()
    while span_id is not None:
        if span_id in seen:
            raise ValueError(f"span parent cycle at {span_id!r}")
        seen.add(span_id)
        span = spans.get(span_id)
        if span is None:
            raise ValueError(
                f"dangling span id {span_id!r} in provenance chain"
            )
        chain.append(span)
        span_id = span.get("parent_span_id")
    return {"probe": probe, "chain": chain}


def render_explain(resolution: Dict[str, Any]) -> str:
    """Human-readable provenance report for ``jlreduce trace explain``."""
    probe = resolution["probe"]
    chain = resolution["chain"]
    lines: List[str] = []
    lines.append(f"probe {probe.get('event_id')}")
    verdict = (
        f"  key={probe.get('key', '?')} cache={probe.get('cache', '?')} "
        f"outcome={probe.get('outcome')}"
    )
    if probe.get("discarded"):
        verdict += " DISCARDED (an earlier probe in the round raised)"
    lines.append(verdict)
    lines.append(
        f"  worker={probe.get('worker', 'main')} "
        f"serial={probe.get('serial', -1)} "
        f"trace={probe.get('trace_id', '')}"
    )
    rnd = probe.get("round")
    if rnd is not None:
        lines.append(
            f"  speculation: round={rnd} batch_pos={probe.get('batch_pos')}"
        )
    cost = (
        f"  cost: wall={float(probe.get('wall_seconds', 0.0)):.4f}s "
        f"virtual={float(probe.get('virtual_charge', 0.0)):.1f}s"
    )
    attempts = probe.get("attempts")
    if attempts is not None:
        cost += (
            f" attempts={attempts} retries={probe.get('retries', 0)} "
            f"timeouts={probe.get('timeouts', 0)}"
        )
    lines.append(cost)
    if probe.get("budget_calls") is not None:
        lines.append(
            f"  budget: calls={probe.get('budget_calls')} "
            f"seconds={float(probe.get('budget_seconds', 0.0)):.1f}"
        )
    lines.append("  causal chain (innermost first):")
    if not chain:
        lines.append("    (no owning span — probe ran outside any span)")
    for span in chain:
        attrs = span.get("attrs") or {}
        attr_text = " ".join(
            f"{k}={v}" for k, v in sorted(attrs.items())
        )
        lines.append(
            f"    {span.get('span_id')}  {span.get('name')}"
            f"  wall={float(span.get('duration', 0.0)):.4f}s"
            f"  virtual={float(span.get('vduration', 0.0)):.1f}s"
            + (f"  [{attr_text}]" if attr_text else "")
        )
    return "\n".join(lines)

"""Per-worker JSONL trace shards and their deterministic merge.

The PR-2 JSONL sink assumed one writer in one process: the tracer
buffered every event in memory and ``write_trace`` dumped the lot at
the end.  That breaks twice on the ROADMAP's path — a process-pool
worker cannot append to the parent's buffer, and a killed run loses its
whole trace.  Shards fix both:

- **One shard file per worker.**  A :class:`ShardSet` owns the base
  trace path; worker ``main`` writes the base file itself, worker ``w3``
  writes ``<base stem>.shard-w3.jsonl`` next to it.  Each shard opens
  with its own ``meta`` line (schema, run id, shard label) and every
  event line is flushed on write, so a crashed worker leaves at most
  one torn final line — which the tolerant loader skips, exactly like
  :mod:`repro.parallel.store`.
- **Deterministic merge.**  Events carry ``serial`` (the owning task's
  serial commit position — the same order ``runner.py`` merges outcomes
  and ``speculate.py`` commits batch results) and ``seq`` (per-tracer
  emit index).  :func:`merge_events` sorts by ``(serial, seq)``:
  parent-process events (serial -1) first, then each task's events in
  emit order, regardless of which worker thread actually ran it or how
  the shard files interleaved on disk.  Two runs of the same corpus
  produce the same merged *structure* (wall-clock fields still vary).

:func:`discover_shards` maps a base trace path back to the full shard
family, so every ``trace`` subcommand can be pointed at the file the
user passed to ``--trace`` and transparently see the whole run.
"""

from __future__ import annotations

import glob as _glob
import json
import os
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO

__all__ = [
    "ShardSet",
    "discover_shards",
    "expand_trace_args",
    "merge_events",
    "shard_path",
]

#: Keeps shard filenames legible and glob-discoverable.
_SHARD_MARK = ".shard-"


def shard_path(base: str, worker: str) -> str:
    """The shard file a worker writes: ``trace.jsonl`` → ``trace.shard-w0.jsonl``."""
    if worker == "main":
        return base
    stem, ext = os.path.splitext(base)
    safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in worker)
    return f"{stem}{_SHARD_MARK}{safe}{ext or '.jsonl'}"


def discover_shards(base: str) -> List[str]:
    """The base trace file plus any sibling worker shards, sorted."""
    stem, ext = os.path.splitext(base)
    family = sorted(_glob.glob(f"{_glob.escape(stem)}{_SHARD_MARK}*{ext}"))
    paths = [base] if os.path.exists(base) else []
    return paths + [p for p in family if p != base]


def expand_trace_args(patterns: Sequence[str]) -> List[str]:
    """CLI file arguments → concrete trace paths (globs + shard family).

    Each argument may be a literal path or a glob; every resolved base
    path additionally pulls in its shard siblings, so ``trace summarize
    bench.jsonl`` sees the whole ``--jobs 4`` run.  Order is stable and
    duplicates are dropped.
    """
    seen: Dict[str, None] = {}
    for pattern in patterns:
        if _glob.has_magic(pattern):
            # An unmatched glob contributes nothing (the caller reports
            # "no trace files match"); a literal path passes through so
            # a typo'd filename still gets a clear open() error.
            matches = sorted(_glob.glob(pattern))
        else:
            matches = [pattern]
        for match in matches:
            for path in discover_shards(match) or [match]:
                seen.setdefault(path, None)
    return list(seen)


def merge_events(
    event_lists: Iterable[List[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """Merge per-shard event lists into one serial-commit-ordered list.

    Sort key: ``(serial, seq)`` — parent-process events (serial -1)
    first, then tasks in the order the runner commits their results;
    within a task, tracer emit order.  Events without the v2 keys
    (schema-1 traces) sort by their original position, so old traces
    still merge stably.  ``meta`` lines float to the front.
    """
    merged: List[Dict[str, Any]] = []
    metas: List[Dict[str, Any]] = []
    position = 0
    for events in event_lists:
        for event in events:
            if event.get("type") == "meta":
                metas.append(event)
                continue
            serial = event.get("serial", -1)
            seq = event.get("seq", position)
            merged.append((serial, seq, position, event))  # type: ignore[arg-type]
            position += 1
    merged.sort(key=lambda item: (item[0], item[1], item[2]))
    return metas + [event for (_, _, _, event) in merged]


class _ShardWriter:
    """One locked, flushed JSONL shard file."""

    def __init__(self, path: str, header: Dict[str, Any]):
        self.path = path
        self._handle: TextIO = open(path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self.emit(header)

    def emit(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            self._handle.close()


class ShardSet:
    """Routes events to per-worker shard files (thread-safe).

    Install on a tracer with
    :meth:`~repro.observability.spans.Tracer.set_shards`; the tracer
    then streams every finished span and ledger event here, keyed by
    the worker label of the event's attached
    :class:`~repro.observability.context.TraceContext`.
    """

    def __init__(self, base: str, run_id: str, label: str = ""):
        self.base = base
        self.run_id = run_id
        self.label = label
        self._writers: Dict[str, _ShardWriter] = {}
        self._lock = threading.Lock()

    def emit(self, worker: str, event: Dict[str, Any]) -> None:
        self._writer_for(worker).emit(event)

    def emit_main(self, event: Dict[str, Any]) -> None:
        """Append a line to the main shard (end-of-run metrics dump)."""
        self.emit("main", event)

    def paths(self) -> List[str]:
        with self._lock:
            return [w.path for w in self._writers.values()]

    def close(self) -> None:
        with self._lock:
            for writer in self._writers.values():
                writer.close()
            self._writers.clear()

    def __enter__(self) -> "ShardSet":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _writer_for(self, worker: str) -> _ShardWriter:
        writer = self._writers.get(worker)
        if writer is None:
            with self._lock:
                writer = self._writers.get(worker)
                if writer is None:
                    # Imported here: sink imports shard for merging.
                    from repro.observability.sink import TRACE_SCHEMA_VERSION

                    writer = _ShardWriter(
                        shard_path(self.base, worker),
                        {
                            "type": "meta",
                            "schema": TRACE_SCHEMA_VERSION,
                            "label": self.label,
                            "run_id": self.run_id,
                            "shard": worker,
                        },
                    )
                    self._writers[worker] = writer
        return writer

"""JSONL trace files: writing, reading back, merging, aggregating.

A trace file is one JSON object per line, each tagged with a ``type``:

- ``{"type": "meta", ...}`` — one header line (schema version, label,
  run id, shard label),
- ``{"type": "span", "name", "start", "duration", "vstart",
  "vduration", "span_id", "parent_span_id", "run_id", "trace_id",
  "serial", "worker", "seq", "attrs"}`` — one per finished span, with
  both clocks (wall and virtual) and full causal addressing,
- ``{"type": "probe", "event_id", "cache", "outcome", "round",
  "batch_pos", "wall_seconds", "virtual_charge", ...}`` — the probe
  provenance ledger (see :mod:`repro.observability.provenance`),
- ``{"type": "profile", "phase", "top": [...]}`` — opt-in cProfile
  hotspot captures (see :mod:`repro.observability.profiling`),
- ``{"type": "counter" | "gauge", "name", "value"}`` — one per metric,
- ``{"type": "histogram", "name", "buckets", "counts", "sum",
  "count"}`` — one per histogram.

Schema 2 (Observability v2) adds the causal/provenance fields; schema-1
traces still load and summarize (the new fields just read as absent).

Loading is torn-line tolerant the way :mod:`repro.parallel.store` is:
a truncated final line (killed writer, full disk) is skipped, not
fatal, because streamed shards are expected to end mid-line when a
worker dies.  Malformed lines *inside* the file still raise — that is
corruption, not tearing.

The format is append-friendly and diff-friendly: two runs can be
compared with ``jlreduce trace diff a.jsonl b.jsonl`` (or the
``summarize`` tables side by side); sharded runs merge with
:func:`load_traces`, which expands globs, pulls in shard siblings, and
orders events by serial commit order.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO, Union

from repro.observability.metrics import MetricsRegistry
from repro.observability.shard import expand_trace_args, merge_events
from repro.observability.spans import SpanEvent, Tracer

__all__ = [
    "JsonlSink",
    "write_trace",
    "load_trace",
    "load_traces",
    "metric_events",
    "summarize",
    "render_summary",
    "TRACE_SCHEMA_VERSION",
]

TRACE_SCHEMA_VERSION = 2

#: How many of the slowest ``instance.run`` spans ``summarize`` keeps.
INSTANCE_TOP = 10


class JsonlSink:
    """Writes JSON-serializable event dicts, one per line.

    Accepts a path (opened lazily, closed by :meth:`close` / ``with``)
    or an already-open text stream (left open).
    """

    def __init__(self, target: Union[str, TextIO]):
        if isinstance(target, str):
            self._handle: TextIO = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def emit(self, event: Dict[str, Any]) -> None:
        json.dump(event, self._handle, sort_keys=True, default=str)
        self._handle.write("\n")

    def emit_all(self, events: Iterable[Dict[str, Any]]) -> None:
        for event in events:
            self.emit(event)

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def metric_events(
    metrics: MetricsRegistry, run_id: str = ""
) -> List[Dict[str, Any]]:
    """A registry snapshot as a list of JSONL-able metric events."""
    events: List[Dict[str, Any]] = []
    snapshot = metrics.snapshot()
    for name in sorted(snapshot["counters"]):
        events.append({
            "type": "counter",
            "name": name,
            "value": snapshot["counters"][name],
            "run_id": run_id,
        })
    for name in sorted(snapshot["gauges"]):
        events.append({
            "type": "gauge",
            "name": name,
            "value": snapshot["gauges"][name],
            "run_id": run_id,
        })
    for name in sorted(snapshot["histograms"]):
        hist = snapshot["histograms"][name]
        events.append(
            {"type": "histogram", "name": name, "run_id": run_id, **hist}
        )
    return events


def write_trace(
    target: Union[str, TextIO],
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    label: str = "",
) -> int:
    """Dump a tracer's spans/ledger and a registry's metrics as JSONL.

    Either source may be None.  Returns the number of lines written
    (including the meta header).
    """
    run_id = tracer.run_id if tracer is not None else ""
    lines = 1
    with JsonlSink(target) as sink:
        sink.emit({
            "type": "meta",
            "schema": TRACE_SCHEMA_VERSION,
            "label": label,
            "run_id": run_id,
            "shard": "main",
        })
        if tracer is not None:
            for event in tracer.events():
                sink.emit(event.to_dict())
                lines += 1
            for raw in tracer.raw_events():
                sink.emit(raw)
                lines += 1
        if metrics is not None:
            for event in metric_events(metrics, run_id=run_id):
                sink.emit(event)
                lines += 1
    return lines


def load_trace(target: Union[str, TextIO]) -> List[Dict[str, Any]]:
    """Read a JSONL trace back into a list of event dicts.

    Blank lines are skipped.  A *truncated final line* — one that does
    not end in a newline and does not parse — is skipped silently: that
    is the torn write a killed shard writer leaves behind (same policy
    as :class:`repro.parallel.store.PredicateStore`).  Any other
    malformed line raises ``ValueError`` with the offending line number.
    """
    if isinstance(target, str):
        with open(target, "r", encoding="utf-8") as handle:
            return _parse_lines(handle)
    return _parse_lines(target)


def load_traces(patterns: Sequence[str]) -> List[Dict[str, Any]]:
    """Load several trace files/globs and merge them deterministically.

    Each argument may be a literal path or a glob; base trace files
    automatically pull in their ``.shard-*`` siblings.  Events are
    merged in serial commit order (see
    :func:`repro.observability.shard.merge_events`).
    """
    paths = expand_trace_args(patterns)
    if not paths:
        raise ValueError(f"no trace files match {list(patterns)!r}")
    return merge_events(load_trace(path) for path in paths)


def _parse_lines(handle: TextIO) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    lines = handle.readlines()
    last = len(lines)
    for lineno, line in enumerate(lines, start=1):
        torn_candidate = lineno == last and not line.endswith("\n")
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            if torn_candidate:
                # A truncated trailing write from a killed shard
                # writer; everything before it is intact.
                continue
            raise ValueError(f"bad JSONL at line {lineno}: {exc}") from None
        if not isinstance(event, dict):
            raise ValueError(f"bad JSONL at line {lineno}: not an object")
        events.append(event)
    return events


def summarize(
    events: Union[Iterable[Dict[str, Any]], Iterable[SpanEvent]],
) -> Dict[str, Any]:
    """Aggregate trace events into a compact summary.

    Returns::

        {"spans": {name: {"count", "total", "mean", "p95", "max",
                          "vtotal"}},
         "counters": {name: total},
         "gauges": {name: value},
         "histograms": {name: {"count", "sum", "mean", "p50", "p95"}},
         "probes": {"count", "fresh", "store", "wall_seconds",
                    "virtual_seconds", "retries"},
         "store": {"lookups", "hits", "misses", "hit_rate", "records",
                   "evictions", "compactions", "shard_loads"},
         "service": {"submitted", "admitted", "rejected", "completed",
                     "failed", "queue_depth": {...}, "tenants": {...}},
         "instances": [{"benchmark", "decompiler", "strategy", "serial",
                        "worker", "wall_seconds", "virtual_seconds",
                        "probes", "fresh", "store_hits"}, ...]}

    Accepts either raw :class:`SpanEvent` objects (straight from a
    tracer) or dicts (from :func:`load_trace`); counter lines for the
    same name are summed, so concatenated traces aggregate sensibly.
    The ``probes`` section appears only when the trace carries a
    provenance ledger; the ``store`` section (cache-tier hit rate,
    evictions, compactions — see :mod:`repro.parallel.store`) only when
    the run consulted a persistent predicate store.

    Histogram events carrying bucket bounds and counts (the
    :class:`~repro.observability.metrics.MetricsRegistry` snapshot
    shape) get interpolated ``p50``/``p95`` estimates; repeated
    histogram lines for the same name fold their bucket counts
    together, matching counter semantics.  The ``service`` section
    appears only when a service-tier run emitted ``service.*``
    counters: total and per-tenant admission/completion tallies, tenant
    latency quantiles from the ``service.latency.<tenant>`` histograms,
    and the queue-depth time series sampled into the trace by the
    server's gauge events (their ``t`` field is seconds since the run
    epoch).

    ``instances`` lists the slowest ``instance.run`` spans (at most
    :data:`INSTANCE_TOP`, by wall clock) with their probe tallies
    joined by serial commit number.  Traces without serials (a
    ``--jobs 1`` bench writes every event with serial ``-1``) still
    list the slow instances, but their probe columns read ``None`` —
    probes cannot be attributed to one instance without the serial.
    """
    durations: Dict[str, List[float]] = {}
    vtotals: Dict[str, float] = {}
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    depth_samples: List[Dict[str, float]] = []
    probes = {
        "count": 0,
        "fresh": 0,
        "store": 0,
        "wall_seconds": 0.0,
        "virtual_seconds": 0.0,
        "retries": 0,
    }
    instance_runs: List[Dict[str, Any]] = []
    probes_by_serial: Dict[int, Dict[str, int]] = {}

    for event in events:
        if isinstance(event, SpanEvent):
            event = event.to_dict()
        kind = event.get("type")
        if kind == "span":
            name = event["name"]
            durations.setdefault(name, []).append(float(event["duration"]))
            vtotals[name] = vtotals.get(name, 0.0) + float(
                event.get("vduration", 0.0)
            )
            if name == "instance.run":
                attrs = event.get("attrs") or {}
                instance_runs.append({
                    "benchmark": attrs.get("benchmark", "?"),
                    "decompiler": attrs.get("decompiler", "?"),
                    "strategy": attrs.get("strategy", "?"),
                    "serial": event.get("serial"),
                    "worker": event.get("worker", ""),
                    "wall_seconds": float(event["duration"]),
                    "virtual_seconds": float(event.get("vduration", 0.0)),
                })
        elif kind == "counter":
            name = event["name"]
            counters[name] = counters.get(name, 0) + event["value"]
        elif kind == "gauge":
            gauges[event["name"]] = event["value"]
            if event["name"] == "service.queue_depth" and "t" in event:
                depth_samples.append(
                    {"t": float(event["t"]), "value": float(event["value"])}
                )
        elif kind == "histogram":
            name = event["name"]
            count = event.get("count", 0)
            total = event.get("sum", 0.0)
            buckets = list(event.get("buckets") or [])
            bucket_counts = list(event.get("counts") or [])
            existing = histograms.get(name)
            if existing is not None and existing["buckets"] == buckets:
                existing["count"] += count
                existing["sum"] += total
                existing["counts"] = [
                    a + b
                    for a, b in zip(existing["counts"], bucket_counts)
                ] or existing["counts"]
            else:
                histograms[name] = {
                    "count": count,
                    "sum": total,
                    "buckets": buckets,
                    "counts": bucket_counts,
                }
        elif kind == "probe":
            probes["count"] += 1
            cache = event.get("cache")
            if cache in ("fresh", "store"):
                probes[cache] += 1
            probes["wall_seconds"] += float(event.get("wall_seconds", 0.0))
            probes["virtual_seconds"] += float(
                event.get("virtual_charge", 0.0)
            )
            probes["retries"] += int(event.get("retries") or 0)
            serial = event.get("serial")
            if isinstance(serial, int) and serial >= 0:
                tally = probes_by_serial.setdefault(
                    serial, {"probes": 0, "fresh": 0, "store_hits": 0}
                )
                tally["probes"] += 1
                if cache == "fresh":
                    tally["fresh"] += 1
                elif cache == "store":
                    tally["store_hits"] += 1

    spans = {
        name: {
            "count": len(values),
            "total": sum(values),
            "mean": sum(values) / len(values),
            "p95": _percentile(values, 0.95),
            "max": max(values),
            "vtotal": vtotals.get(name, 0.0),
        }
        for name, values in durations.items()
    }
    for hist in histograms.values():
        hist["mean"] = hist["sum"] / hist["count"] if hist["count"] else 0.0
        hist["p50"] = _histogram_quantile(hist, 0.50)
        hist["p95"] = _histogram_quantile(hist, 0.95)
    summary: Dict[str, Any] = {
        "spans": spans,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }
    if probes["count"]:
        summary["probes"] = probes
    if instance_runs:
        for row in instance_runs:
            serial = row["serial"]
            tally = (
                probes_by_serial.get(serial)
                if isinstance(serial, int) and serial >= 0
                else None
            )
            row["probes"] = tally["probes"] if tally else None
            row["fresh"] = tally["fresh"] if tally else None
            row["store_hits"] = tally["store_hits"] if tally else None
        instance_runs.sort(key=lambda row: -row["wall_seconds"])
        summary["instances"] = instance_runs[:INSTANCE_TOP]
        summary["instance_count"] = len(instance_runs)
    lookups = counters.get("store.lookups", 0)
    if lookups:
        hits = counters.get("store.hits", 0)
        summary["store"] = {
            "lookups": lookups,
            "hits": hits,
            "misses": counters.get("store.misses", 0),
            "hit_rate": hits / lookups,
            "records": counters.get("store.records", 0),
            "evictions": counters.get("store.evictions", 0),
            "compactions": counters.get("store.compactions", 0),
            "shard_loads": counters.get("store.shard_loads", 0),
        }
    service = _service_block(counters, histograms, depth_samples)
    if service is not None:
        summary["service"] = service
    return summary


def _service_block(
    counters: Dict[str, float],
    histograms: Dict[str, Dict[str, Any]],
    depth_samples: List[Dict[str, float]],
) -> Optional[Dict[str, Any]]:
    """The service-tier section of a summary, or None for offline runs."""
    if not any(name.startswith("service.") for name in counters):
        return None
    tenants: Dict[str, Dict[str, Any]] = {}

    def _tenant(name: str) -> Dict[str, Any]:
        return tenants.setdefault(name, {
            "admitted": 0,
            "rejected": 0,
            "completed": 0,
            "failed": 0,
        })

    for name, value in counters.items():
        if not name.startswith("service.tenant."):
            continue
        tenant, _, what = name[len("service.tenant."):].rpartition(".")
        if tenant and what in ("admitted", "rejected", "completed",
                               "failed", "started"):
            _tenant(tenant)[what] = value
    for name, hist in histograms.items():
        if name.startswith("service.latency."):
            tenant = name[len("service.latency."):]
            _tenant(tenant)["latency"] = {
                "count": hist["count"],
                "mean": hist["mean"],
                "p50": hist["p50"],
                "p95": hist["p95"],
            }
    block: Dict[str, Any] = {
        "submitted": counters.get("service.submitted", 0),
        "admitted": counters.get("service.admitted", 0),
        "rejected": counters.get("service.rejected", 0),
        "completed": counters.get("service.completed", 0),
        "failed": counters.get("service.failed", 0),
        "tenants": {name: tenants[name] for name in sorted(tenants)},
    }
    if depth_samples:
        depths = [sample["value"] for sample in depth_samples]
        block["queue_depth"] = {
            "samples": len(depths),
            "mean": sum(depths) / len(depths),
            "max": max(depths),
            "last": depths[-1],
            "series": depth_samples,
        }
    return block


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a non-empty list."""
    ordered = sorted(values)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[rank]


def _histogram_quantile(hist: Dict[str, Any], q: float) -> float:
    """A quantile estimate from fixed-bucket tallies.

    Linear interpolation inside the bucket holding the target rank,
    Prometheus-style; the overflow bucket reports its lower bound (the
    last edge) since its upper edge is unbounded.  0.0 when empty or
    when the event carried no buckets (a schema-1 trace).
    """
    buckets = hist.get("buckets") or []
    bucket_counts = hist.get("counts") or []
    total = sum(bucket_counts)
    if not buckets or not total:
        return 0.0
    rank = q * total
    seen = 0.0
    for i, n in enumerate(bucket_counts):
        if not n:
            continue
        if seen + n >= rank:
            if i >= len(buckets):
                return float(buckets[-1])
            lower = buckets[i - 1] if i else 0.0
            upper = buckets[i]
            return lower + (upper - lower) * ((rank - seen) / n)
        seen += n
    return float(buckets[-1])


def render_summary(summary: Dict[str, Any]) -> str:
    """Human-readable table for ``jlreduce trace summarize``."""
    lines: List[str] = []
    spans = summary.get("spans", {})
    if spans:
        lines.append("spans (seconds)")
        header = (
            f"  {'name':<28} {'count':>7} {'total':>10} "
            f"{'mean':>10} {'p95':>10}"
        )
        lines.append(header)
        for name in sorted(spans, key=lambda n: -spans[n]["total"]):
            stats = spans[name]
            lines.append(
                f"  {name:<28} {stats['count']:>7} {stats['total']:>10.4f} "
                f"{stats['mean']:>10.6f} {stats['p95']:>10.6f}"
            )
    instances = summary.get("instances")
    if instances:
        if lines:
            lines.append("")
        shown = len(instances)
        total = summary.get("instance_count", shown)
        title = "slowest instances"
        if total > shown:
            title += f" (top {shown} of {total})"
        lines.append(title)
        lines.append(
            f"  {'benchmark':<14} {'decompiler':<10} {'strategy':<12} "
            f"{'probes':>7} {'fresh':>7} {'store':>7} "
            f"{'wall':>9} {'virtual':>10}"
        )
        for row in instances:
            def _cell(value) -> str:
                return "-" if value is None else f"{value:,}"

            lines.append(
                f"  {row['benchmark']:<14} {row['decompiler']:<10} "
                f"{row['strategy']:<12} {_cell(row['probes']):>7} "
                f"{_cell(row['fresh']):>7} {_cell(row['store_hits']):>7} "
                f"{row['wall_seconds']:>8.3f}s "
                f"{row['virtual_seconds']:>9.1f}s"
            )
    probes = summary.get("probes")
    if probes:
        if lines:
            lines.append("")
        lines.append("probes (provenance ledger)")
        lines.append(
            f"  physical={probes['count']:,} fresh={probes['fresh']:,} "
            f"store_hits={probes['store']:,} retries={probes['retries']:,}"
        )
        lines.append(
            f"  wall={probes['wall_seconds']:.4f}s "
            f"virtual={probes['virtual_seconds']:.1f}s"
        )
    service = summary.get("service")
    if service:
        if lines:
            lines.append("")
        lines.append("service tier")
        lines.append(
            f"  submitted={service['submitted']:,} "
            f"admitted={service['admitted']:,} "
            f"rejected={service['rejected']:,} "
            f"completed={service['completed']:,} "
            f"failed={service['failed']:,}"
        )
        depth = service.get("queue_depth")
        if depth:
            lines.append(
                f"  queue depth: mean={depth['mean']:.1f} "
                f"max={depth['max']:.0f} last={depth['last']:.0f} "
                f"({depth['samples']} samples)"
            )
        tenants = service.get("tenants", {})
        if tenants:
            lines.append(
                f"  {'tenant':<14} {'admitted':>9} {'rejected':>9} "
                f"{'completed':>10} {'failed':>7} {'p50':>9} {'p95':>9}"
            )
            for name in sorted(tenants):
                row = tenants[name]
                latency = row.get("latency") or {}

                def _secs(value) -> str:
                    return "-" if value is None else f"{value:.3f}s"

                lines.append(
                    f"  {name:<14} {row['admitted']:>9,} "
                    f"{row['rejected']:>9,} {row['completed']:>10,} "
                    f"{row['failed']:>7,} "
                    f"{_secs(latency.get('p50')):>9} "
                    f"{_secs(latency.get('p95')):>9}"
                )
    store = summary.get("store")
    if store:
        if lines:
            lines.append("")
        lines.append("predicate store (cache tier)")
        lines.append(
            f"  lookups={store['lookups']:,} hits={store['hits']:,} "
            f"misses={store['misses']:,} "
            f"hit_rate={store['hit_rate']:.1%}"
        )
        lines.append(
            f"  records={store['records']:,} "
            f"evictions={store['evictions']:,} "
            f"compactions={store['compactions']:,} "
            f"shard_loads={store['shard_loads']:,}"
        )
    counters = summary.get("counters", {})
    if counters:
        if lines:
            lines.append("")
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"  {name:<38} {counters[name]:>12,}")
    gauges = summary.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges")
        for name in sorted(gauges):
            lines.append(f"  {name:<38} {gauges[name]:>12}")
    histograms = summary.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("histograms")
        for name in sorted(histograms):
            stats = histograms[name]
            line = (
                f"  {name:<28} count={stats['count']:<8,} "
                f"mean={stats['mean']:.6f}"
            )
            if stats.get("buckets"):
                line += (
                    f" p50={stats['p50']:.6f} p95={stats['p95']:.6f}"
                )
            lines.append(line)
    if not lines:
        lines.append("(empty trace)")
    return "\n".join(lines)

"""JSONL trace files: writing, reading back, and aggregating.

A trace file is one JSON object per line, each tagged with a ``type``:

- ``{"type": "meta", ...}`` — one header line (schema version, label),
- ``{"type": "span", "name", "start", "duration", "span_id",
  "parent_id", "attrs"}`` — one per finished span,
- ``{"type": "counter" | "gauge", "name", "value"}`` — one per metric,
- ``{"type": "histogram", "name", "buckets", "counts", "sum",
  "count"}`` — one per histogram.

The format is append-friendly and diff-friendly: two runs can be
compared with ``summarize(load_trace(a))`` vs ``summarize(load_trace(b))``
(or just the ``jlreduce trace summarize`` tables side by side).
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional, TextIO, Union

from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import SpanEvent, Tracer

__all__ = [
    "JsonlSink",
    "write_trace",
    "load_trace",
    "summarize",
    "render_summary",
    "TRACE_SCHEMA_VERSION",
]

TRACE_SCHEMA_VERSION = 1


class JsonlSink:
    """Writes JSON-serializable event dicts, one per line.

    Accepts a path (opened lazily, closed by :meth:`close` / ``with``)
    or an already-open text stream (left open).
    """

    def __init__(self, target: Union[str, TextIO]):
        if isinstance(target, str):
            self._handle: TextIO = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def emit(self, event: Dict[str, Any]) -> None:
        json.dump(event, self._handle, sort_keys=True, default=str)
        self._handle.write("\n")

    def emit_all(self, events: Iterable[Dict[str, Any]]) -> None:
        for event in events:
            self.emit(event)

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_trace(
    target: Union[str, TextIO],
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    label: str = "",
) -> int:
    """Dump a tracer's spans and a registry's metrics as JSONL.

    Either source may be None.  Returns the number of lines written
    (including the meta header).
    """
    lines = 1
    with JsonlSink(target) as sink:
        sink.emit({
            "type": "meta",
            "schema": TRACE_SCHEMA_VERSION,
            "label": label,
        })
        if tracer is not None:
            for event in tracer.events():
                sink.emit(event.to_dict())
                lines += 1
        if metrics is not None:
            snapshot = metrics.snapshot()
            for name in sorted(snapshot["counters"]):
                sink.emit({
                    "type": "counter",
                    "name": name,
                    "value": snapshot["counters"][name],
                })
                lines += 1
            for name in sorted(snapshot["gauges"]):
                sink.emit({
                    "type": "gauge",
                    "name": name,
                    "value": snapshot["gauges"][name],
                })
                lines += 1
            for name in sorted(snapshot["histograms"]):
                hist = snapshot["histograms"][name]
                sink.emit({"type": "histogram", "name": name, **hist})
                lines += 1
    return lines


def load_trace(target: Union[str, TextIO]) -> List[Dict[str, Any]]:
    """Read a JSONL trace back into a list of event dicts.

    Blank lines are skipped; malformed lines raise ``ValueError`` with
    the offending line number.
    """
    if isinstance(target, str):
        with open(target, "r", encoding="utf-8") as handle:
            return _parse_lines(handle)
    return _parse_lines(target)


def _parse_lines(handle: TextIO) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad JSONL at line {lineno}: {exc}") from None
        if not isinstance(event, dict):
            raise ValueError(f"bad JSONL at line {lineno}: not an object")
        events.append(event)
    return events


def summarize(
    events: Union[Iterable[Dict[str, Any]], Iterable[SpanEvent]],
) -> Dict[str, Any]:
    """Aggregate trace events into a compact summary.

    Returns::

        {"spans": {name: {"count", "total", "mean", "p95", "max"}},
         "counters": {name: total},
         "gauges": {name: value},
         "histograms": {name: {"count", "sum", "mean"}}}

    Accepts either raw :class:`SpanEvent` objects (straight from a
    tracer) or dicts (from :func:`load_trace`); counter lines for the
    same name are summed, so concatenated traces aggregate sensibly.
    """
    durations: Dict[str, List[float]] = {}
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, float]] = {}

    for event in events:
        if isinstance(event, SpanEvent):
            event = event.to_dict()
        kind = event.get("type")
        if kind == "span":
            durations.setdefault(event["name"], []).append(
                float(event["duration"])
            )
        elif kind == "counter":
            name = event["name"]
            counters[name] = counters.get(name, 0) + event["value"]
        elif kind == "gauge":
            gauges[event["name"]] = event["value"]
        elif kind == "histogram":
            count = event.get("count", 0)
            total = event.get("sum", 0.0)
            histograms[event["name"]] = {
                "count": count,
                "sum": total,
                "mean": total / count if count else 0.0,
            }

    spans = {
        name: {
            "count": len(values),
            "total": sum(values),
            "mean": sum(values) / len(values),
            "p95": _percentile(values, 0.95),
            "max": max(values),
        }
        for name, values in durations.items()
    }
    return {
        "spans": spans,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a non-empty list."""
    ordered = sorted(values)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[rank]


def render_summary(summary: Dict[str, Any]) -> str:
    """Human-readable table for ``jlreduce trace summarize``."""
    lines: List[str] = []
    spans = summary.get("spans", {})
    if spans:
        lines.append("spans (seconds)")
        header = (
            f"  {'name':<28} {'count':>7} {'total':>10} "
            f"{'mean':>10} {'p95':>10}"
        )
        lines.append(header)
        for name in sorted(spans, key=lambda n: -spans[n]["total"]):
            stats = spans[name]
            lines.append(
                f"  {name:<28} {stats['count']:>7} {stats['total']:>10.4f} "
                f"{stats['mean']:>10.6f} {stats['p95']:>10.6f}"
            )
    counters = summary.get("counters", {})
    if counters:
        if lines:
            lines.append("")
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"  {name:<38} {counters[name]:>12,}")
    gauges = summary.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges")
        for name in sorted(gauges):
            lines.append(f"  {name:<38} {gauges[name]:>12}")
    histograms = summary.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("histograms")
        for name in sorted(histograms):
            stats = histograms[name]
            lines.append(
                f"  {name:<28} count={stats['count']:<8,} "
                f"mean={stats['mean']:.6f}"
            )
    if not lines:
        lines.append("(empty trace)")
    return "\n".join(lines)

"""Nestable span timers with a thread-local context.

A *span* is a named, timed region of execution with free-form attributes
and a parent (the span that was open on the same thread when it started).
Spans form trees, so a trace of one reduction run reads like a profile:
``gbr.run`` contains ``gbr.iteration`` contains ``progression.build``
contains ``solver.solve`` and so on.

Design constraints (this is a hot-path layer):

- **No-op by default.**  The process-global tracer starts disabled, and
  a disabled tracer returns a shared singleton null span — no allocation
  and no clock reads — so instrumented code pays one attribute check.
- **Thread-local nesting.**  Each thread keeps its own stack of open
  spans; parent links never cross threads.
- **Append-only events.**  Finished spans append a :class:`SpanEvent` to
  a list under a lock; readers snapshot via :meth:`Tracer.events`.

Timestamps are ``time.perf_counter()`` values relative to the tracer's
creation, so events within one trace are directly comparable.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "SpanEvent",
    "Tracer",
    "NULL_SPAN",
    "get_tracer",
    "set_tracer",
    "span",
]


@dataclass(frozen=True)
class SpanEvent:
    """One finished span: ``(name, start, duration, attrs, parent)``.

    ``span_id``/``parent_id`` tie the events into a tree (``parent_id``
    is None for roots).  ``start`` is seconds since the tracer was
    created; ``duration`` is seconds.
    """

    name: str
    start: float
    duration: float
    span_id: int
    parent_id: Optional[int]
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-friendly form (the JSONL sink writes these)."""
        return {
            "type": "span",
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attrs": self.attrs,
        }


class _NullSpan:
    """The do-nothing span returned by a disabled tracer (a singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set_attr(self, name: str, value: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: Public handle on the shared null span.  Hot paths that would pay for
#: building a ``**attrs`` dict before ``Tracer.span`` can even decline it
#: check ``tracer.enabled`` themselves and use this directly::
#:
#:     cm = tracer.span("solver.solve", clauses=n) if tracer.enabled else NULL_SPAN
NULL_SPAN = _NULL_SPAN


class _Span:
    """An open span; finishes (and records itself) on ``__exit__``."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, Any],
        span_id: int,
        parent_id: Optional[int],
    ):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self._start = time.perf_counter()

    def set_attr(self, name: str, value: Any) -> None:
        """Attach/overwrite an attribute while the span is open."""
        self.attrs[name] = value

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._finish(self, time.perf_counter())


class Tracer:
    """Records spans into an in-memory event list.

    Args:
        enabled: a disabled tracer hands out null spans and records
            nothing; the process-global default tracer is disabled.
        sample_every: stride sampling for high-frequency spans — record
            only every Nth ``span()`` call (1 = record all).  The stride
            counter is a plain attribute increment, not locked: under
            threads the sampling is best-effort, which is fine for a
            load-shedding knob.
    """

    def __init__(self, enabled: bool = True, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self._enabled = enabled
        self._sample_every = sample_every
        self._sample_tick = 0
        self._epoch = time.perf_counter()
        self._events: List[SpanEvent] = []
        self._lock = threading.Lock()
        self._next_id = 0
        self._local = threading.local()

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def sample_every(self) -> int:
        return self._sample_every

    def span(self, name: str, **attrs: Any):
        """Open a nested span (a context manager).

        Usage::

            with tracer.span("progression.build", scope=12) as sp:
                ...
                sp.set_attr("entries", len(entries))
        """
        if not self._enabled:
            return _NULL_SPAN
        if self._sample_every > 1:
            self._sample_tick += 1
            if self._sample_tick % self._sample_every:
                return _NULL_SPAN
        stack = self._stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent_id = stack[-1] if stack else None
        stack.append(span_id)
        return _Span(self, name, dict(attrs), span_id, parent_id)

    def events(self) -> List[SpanEvent]:
        """Snapshot of the finished spans, in finish order."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        """Drop recorded events (open spans are unaffected)."""
        with self._lock:
            self._events.clear()

    # -- internals -----------------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish(self, open_span: _Span, end: float) -> None:
        stack = self._stack()
        # Pop back to (and including) this span; tolerates exits out of
        # order if a caller leaks an open span.
        while stack:
            top = stack.pop()
            if top == open_span.span_id:
                break
        event = SpanEvent(
            name=open_span.name,
            start=open_span._start - self._epoch,
            duration=end - open_span._start,
            span_id=open_span.span_id,
            parent_id=open_span.parent_id,
            attrs=open_span.attrs,
        )
        with self._lock:
            self._events.append(event)


#: The process-global tracer; disabled (no-op) until someone installs an
#: enabled one (the CLI's ``--trace`` does, tests do).
_GLOBAL_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer (disabled by default)."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` globally; returns the previous tracer."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous


def span(name: str, **attrs: Any):
    """Open a span on the process-global tracer."""
    return _GLOBAL_TRACER.span(name, **attrs)

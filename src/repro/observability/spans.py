"""Nestable span timers with causal contexts and dual clocks.

A *span* is a named, timed region of execution with free-form
attributes and a parent (the span open on the same logical task when it
started).  Spans form trees, so a trace of one reduction run reads like
a profile: ``gbr.run`` contains ``gbr.iteration`` contains
``progression.build`` contains ``solver.solve`` and so on.

What changed in Observability v2 (see DESIGN.md §9):

- **Trace contexts.**  Every event carries ``run_id`` / ``trace_id`` /
  ``span_id`` / ``parent_span_id``.  A
  :class:`~repro.observability.context.TraceContext` captured with
  :meth:`Tracer.current_context` can be handed to a worker (thread
  today, process-pool worker next) and re-attached with
  :meth:`Tracer.attach`, so the worker's root spans parent onto the
  spawning span instead of floating free.
- **Dual clocks.**  Spans record wall time (``start``/``duration``,
  ``perf_counter`` relative to the tracer epoch) *and* virtual time
  (``vstart``/``vduration``, read from a per-task virtual-clock
  provider installed with :meth:`Tracer.clock` — the harness installs
  the run's :meth:`InstrumentedPredicate.virtual_now`).  This is what
  lets ``trace diff`` reproduce the BENCH_5 wall-vs-simulated gap from
  telemetry alone.
- **Streaming shard sinks.**  With :meth:`Tracer.set_shards`, finished
  events stream to per-worker JSONL shard files instead of
  accumulating in memory (see :mod:`repro.observability.shard`).
- **Free-form events.**  :meth:`Tracer.event` emits non-span ledger
  entries (probe provenance, profiles) with the same context stamps.

Design constraints (this is a hot-path layer):

- **No-op by default.**  The process-global tracer starts disabled, and
  a disabled tracer returns a shared singleton null span — no
  allocation and no clock reads — so instrumented code pays one
  attribute check.
- **Thread-local nesting.**  Each thread keeps its own stack of open
  spans; *lexical* parent links never cross threads — cross-thread
  causality is attached explicitly via contexts.
- **No dangling parents.**  Sampled-out spans (``sample_every``) are
  never pushed on the stack, so a child whose parent was sampled out
  attaches to the nearest recorded ancestor; spans leaked open when an
  ancestor exits are emitted (marked ``leaked``) rather than silently
  discarded, so every ``parent_span_id`` in a trace resolves.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from contextlib import contextmanager

from repro.observability.context import TraceContext, new_run_id

__all__ = [
    "SpanEvent",
    "Tracer",
    "NULL_SPAN",
    "get_tracer",
    "set_tracer",
    "span",
]


@dataclass(frozen=True)
class SpanEvent:
    """One finished span, causally addressed and dual-clocked.

    ``span_id``/``parent_id`` tie the events into a tree (``parent_id``
    is None for roots); ids are ``"<worker>:<seq>"`` strings, unique
    across workers.  ``start`` is wall seconds since the tracer epoch
    and ``duration`` wall seconds; ``vstart``/``vduration`` are the
    virtual-clock equivalents (0.0 when no virtual clock was attached).
    ``serial`` is the owning task's serial commit position and ``seq``
    the tracer-wide emit index — together the deterministic merge key.
    """

    name: str
    start: float
    duration: float
    span_id: str
    parent_id: Optional[str]
    run_id: str = ""
    trace_id: str = ""
    serial: int = -1
    worker: str = "main"
    seq: int = 0
    vstart: float = 0.0
    vduration: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-friendly form (the JSONL sinks write these)."""
        return {
            "type": "span",
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "vstart": self.vstart,
            "vduration": self.vduration,
            "span_id": self.span_id,
            "parent_span_id": self.parent_id,
            "run_id": self.run_id,
            "trace_id": self.trace_id,
            "serial": self.serial,
            "worker": self.worker,
            "seq": self.seq,
            "attrs": self.attrs,
        }


class _NullSpan:
    """The do-nothing span returned by a disabled tracer (a singleton)."""

    __slots__ = ()
    span_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set_attr(self, name: str, value: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: Public handle on the shared null span.  Hot paths that would pay for
#: building a ``**attrs`` dict before ``Tracer.span`` can even decline it
#: check ``tracer.enabled`` themselves and use this directly::
#:
#:     cm = tracer.span("solver.solve", clauses=n) if tracer.enabled else NULL_SPAN
NULL_SPAN = _NULL_SPAN


class _Span:
    """An open span; finishes (and records itself) on ``__exit__``."""

    __slots__ = (
        "_tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "seq",
        "_ctx",
        "_start",
        "_vstart",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, Any],
        span_id: str,
        parent_id: Optional[str],
        seq: int,
        ctx: Optional[TraceContext],
        vstart: float,
    ):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.seq = seq
        self._ctx = ctx
        self._start = time.perf_counter()
        self._vstart = vstart

    def set_attr(self, name: str, value: Any) -> None:
        """Attach/overwrite an attribute while the span is open."""
        self.attrs[name] = value

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._finish(self, time.perf_counter())


class Tracer:
    """Records spans and ledger events, in memory or onto shard sinks.

    Args:
        enabled: a disabled tracer hands out null spans and records
            nothing; the process-global default tracer is disabled.
        sample_every: stride sampling for high-frequency spans — record
            only every Nth ``span()`` call (1 = record all).  The stride
            counter is a plain attribute increment, not locked: under
            threads the sampling is best-effort, which is fine for a
            load-shedding knob.  Sampled-out spans never enter the
            nesting stack, so their children re-parent onto the nearest
            recorded ancestor (no dangling ids).
        run_id: the telemetry session id stamped on every event
            (generated when omitted).
    """

    def __init__(
        self,
        enabled: bool = True,
        sample_every: int = 1,
        run_id: Optional[str] = None,
    ):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self._enabled = enabled
        self._sample_every = sample_every
        self._sample_tick = 0
        self._epoch = time.perf_counter()
        self.epoch_unix = time.time()
        self.run_id = run_id if run_id is not None else new_run_id()
        self._events: List[SpanEvent] = []
        self._raw: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._next_seq = 0
        self._local = threading.local()
        self._shards = None

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def streaming(self) -> bool:
        """Are events streaming to shard files (vs buffering in memory)?

        The service tier keys on this: thread-backend workers share the
        parent's tracer, which is only safe to use concurrently when
        events bypass the snapshot-and-clear in-memory buffer.
        """
        return self._shards is not None

    @property
    def sample_every(self) -> int:
        return self._sample_every

    # -- contexts and clocks -------------------------------------------------

    def current_context(self) -> TraceContext:
        """The serializable capsule a worker needs to continue this trace.

        ``span_id`` is the innermost *recorded* open span on this thread
        (sampled-out spans never qualify), so a re-attached worker links
        to an id that is guaranteed to appear in the merged trace.
        """
        ctx = getattr(self._local, "ctx", None)
        stack = getattr(self._local, "stack", None)
        if stack:
            parent = stack[-1].span_id
        elif ctx is not None:
            parent = ctx.span_id
        else:
            parent = None
        if ctx is not None:
            return TraceContext(
                run_id=ctx.run_id,
                trace_id=ctx.trace_id,
                span_id=parent,
                serial=ctx.serial,
                worker=ctx.worker,
            )
        return TraceContext(
            run_id=self.run_id, trace_id=self.run_id, span_id=parent
        )

    @contextmanager
    def attach(
        self,
        ctx: TraceContext,
        clock: Optional[Callable[[], float]] = None,
    ) -> Iterator[TraceContext]:
        """Re-attach a captured context on the current thread.

        Root spans opened inside the block parent onto ``ctx.span_id``,
        and every event is stamped with the context's trace id, serial
        slot, and worker shard.  ``clock`` optionally carries the
        spawning task's virtual-clock provider across the thread hop.
        """
        previous_ctx = getattr(self._local, "ctx", None)
        previous_stack = getattr(self._local, "stack", None)
        previous_clock = getattr(self._local, "vclock", None)
        self._local.ctx = ctx
        # A fresh nesting stack: the attached parent is causal, not
        # lexical, so pre-existing open spans on this thread (a pool
        # thread reused across tasks) must not leak into the new task.
        self._local.stack = []
        if clock is not None:
            self._local.vclock = clock
        try:
            yield ctx
        finally:
            self._local.ctx = previous_ctx
            self._local.stack = previous_stack
            self._local.vclock = previous_clock

    @contextmanager
    def clock(self, provider: Callable[[], float]) -> Iterator[None]:
        """Install a virtual-clock provider for the current thread.

        While active, spans and events record ``vstart``/``vduration``
        (resp. ``vt``) from ``provider()`` — the harness installs the
        run's ``InstrumentedPredicate.virtual_now`` so telemetry carries
        the simulated clock next to the wall clock.
        """
        previous = getattr(self._local, "vclock", None)
        self._local.vclock = provider
        try:
            yield
        finally:
            self._local.vclock = previous

    def current_clock(self) -> Optional[Callable[[], float]]:
        """This thread's virtual-clock provider, if any."""
        return getattr(self._local, "vclock", None)

    def virtual_now(self) -> float:
        """The attached virtual clock's reading (0.0 without one)."""
        provider = getattr(self._local, "vclock", None)
        return provider() if provider is not None else 0.0

    # -- shard routing -------------------------------------------------------

    def set_shards(self, shards) -> None:
        """Stream events to a per-worker shard set instead of memory.

        ``shards`` duck-types ``emit(worker, event_dict)`` (see
        :class:`repro.observability.shard.ShardSet`).  Passing ``None``
        restores in-memory accumulation.
        """
        self._shards = shards

    # -- spans and events ----------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a nested span (a context manager).

        Usage::

            with tracer.span("progression.build", scope=12) as sp:
                ...
                sp.set_attr("entries", len(entries))
        """
        if not self._enabled:
            return _NULL_SPAN
        if self._sample_every > 1:
            self._sample_tick += 1
            if self._sample_tick % self._sample_every:
                return _NULL_SPAN
        stack = self._stack()
        ctx = getattr(self._local, "ctx", None)
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
        worker = ctx.worker if ctx is not None else "main"
        span_id = f"{worker}:{seq}"
        if stack:
            parent_id = stack[-1].span_id
        elif ctx is not None:
            parent_id = ctx.span_id
        else:
            parent_id = None
        open_span = _Span(
            self,
            name,
            dict(attrs),
            span_id,
            parent_id,
            seq,
            ctx,
            self.virtual_now(),
        )
        stack.append(open_span)
        return open_span

    def event(
        self,
        event_type: str,
        span_id: Optional[str] = None,
        **fields: Any,
    ) -> Optional[Dict[str, Any]]:
        """Emit a free-form ledger event with full context stamps.

        Used for the probe provenance ledger (``type == "probe"``) and
        profiling captures (``type == "profile"``).  ``span_id``
        overrides the causal parent (default: the innermost open span).
        Returns the emitted dict (its ``event_id`` is the stable handle
        ``trace explain`` resolves), or None when disabled.
        """
        if not self._enabled:
            return None
        ctx = getattr(self._local, "ctx", None)
        stack = getattr(self._local, "stack", None)
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
        worker = ctx.worker if ctx is not None else "main"
        if span_id is None:
            if stack:
                span_id = stack[-1].span_id
            elif ctx is not None:
                span_id = ctx.span_id
        event = {
            "type": event_type,
            "event_id": f"{worker}:e{seq}",
            "span_id": span_id,
            "run_id": ctx.run_id if ctx is not None else self.run_id,
            "trace_id": ctx.trace_id if ctx is not None else self.run_id,
            "serial": ctx.serial if ctx is not None else -1,
            "worker": worker,
            "seq": seq,
            "t": time.perf_counter() - self._epoch,
            "vt": self.virtual_now(),
        }
        event.update(fields)
        if self._shards is not None:
            self._shards.emit(worker, event)
        else:
            with self._lock:
                self._raw.append(event)
        return event

    def adopt(self, payload: Dict[str, Any]) -> Optional[str]:
        """Re-emit a worker-built span payload under this tracer.

        Process-pool workers have no live tracer — they handcraft span
        payload dicts (see
        :func:`repro.parallel.procpool._evaluate_probe`) and ship them
        back with their results.  The parent adopts each payload at the
        probe's serial commit position: a fresh tracer-wide ``seq`` is
        assigned (keeping the deterministic shard merge order) and the
        span id is minted as ``"<worker>:<seq>"``, unique because the
        worker label carries the pid.  ``parent_span_id`` is taken from
        the payload — the spawning context's span — so the merged trace
        stays one connected tree.  Returns the minted span id, or None
        when disabled.
        """
        if not self._enabled:
            return None
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
        worker = payload.get("worker", "main")
        span_id = f"{worker}:{seq}"
        event = SpanEvent(
            name=payload.get("name", "adopted"),
            start=float(payload.get("start", 0.0)),
            duration=float(payload.get("duration", 0.0)),
            vstart=float(payload.get("vstart", 0.0)),
            vduration=float(payload.get("vduration", 0.0)),
            span_id=span_id,
            parent_id=payload.get("parent_span_id"),
            run_id=payload.get("run_id") or self.run_id,
            trace_id=payload.get("trace_id") or self.run_id,
            serial=int(payload.get("serial", -1)),
            worker=worker,
            seq=seq,
            attrs=dict(payload.get("attrs") or {}),
        )
        if self._shards is not None:
            self._shards.emit(event.worker, event.to_dict())
        else:
            with self._lock:
                self._events.append(event)
        return span_id

    def ingest(
        self, payload: Dict[str, Any], time_offset: float = 0.0
    ) -> None:
        """Commit a worker-tracer event verbatim, preserving its ids.

        The corpus scheduler's worker processes run a *real* tracer
        (unlike probe workers, which handcraft payloads for
        :meth:`adopt`): their events already carry globally-unique span
        ids (``"p<pid>:<seq>"``) and correct intra-instance parent
        links, which must survive the hop — re-minting ids here would
        orphan every child span.  Worker seqs are preserved too: the
        shard merge key is ``(serial, seq, position)``, one task's
        events all come from one worker, and serials never straddle
        tasks, so intra-task order is exactly the worker's emit order.

        ``time_offset`` re-bases the worker's wall clock (its ``start``
        / ``t`` are relative to *its* tracer epoch) onto this tracer's:
        pass ``worker_epoch_unix - parent.epoch_unix``.
        """
        if not self._enabled:
            return
        payload = dict(payload)
        worker = payload.get("worker", "main")
        if payload.get("type") == "span":
            event = SpanEvent(
                name=payload.get("name", "ingested"),
                start=float(payload.get("start", 0.0)) + time_offset,
                duration=float(payload.get("duration", 0.0)),
                vstart=float(payload.get("vstart", 0.0)),
                vduration=float(payload.get("vduration", 0.0)),
                span_id=payload.get("span_id", f"{worker}:?"),
                parent_id=payload.get("parent_span_id"),
                run_id=payload.get("run_id") or self.run_id,
                trace_id=payload.get("trace_id") or self.run_id,
                serial=int(payload.get("serial", -1)),
                worker=worker,
                seq=int(payload.get("seq", 0)),
                attrs=dict(payload.get("attrs") or {}),
            )
            if self._shards is not None:
                self._shards.emit(event.worker, event.to_dict())
            else:
                with self._lock:
                    self._events.append(event)
            return
        if "t" in payload:
            payload["t"] = float(payload["t"]) + time_offset
        if self._shards is not None:
            self._shards.emit(worker, payload)
        else:
            with self._lock:
                self._raw.append(payload)

    def events(self) -> List[SpanEvent]:
        """Snapshot of the finished spans, in finish order.

        In shard-streaming mode events go to the shard files instead;
        read them back with :func:`repro.observability.sink.load_traces`.
        """
        with self._lock:
            return list(self._events)

    def raw_events(self) -> List[Dict[str, Any]]:
        """Snapshot of the free-form ledger events (probes, profiles)."""
        with self._lock:
            return list(self._raw)

    def clear(self) -> None:
        """Drop recorded events (open spans are unaffected)."""
        with self._lock:
            self._events.clear()
            self._raw.clear()

    # -- internals -----------------------------------------------------------

    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish(self, open_span: _Span, end: float) -> None:
        stack = self._stack()
        # Pop back to (and including) this span.  Spans leaked open
        # above it (a caller that never exited) are emitted rather than
        # discarded — their ids may already be parent links in recorded
        # children, and a merged trace must never dangle.
        while stack:
            top = stack.pop()
            if top is open_span:
                break
            top.attrs.setdefault("leaked", True)
            self._emit(top, end)
        self._emit(open_span, end)

    def _emit(self, open_span: _Span, end: float) -> None:
        ctx = open_span._ctx
        vend = self.virtual_now()
        event = SpanEvent(
            name=open_span.name,
            start=open_span._start - self._epoch,
            duration=end - open_span._start,
            vstart=open_span._vstart,
            vduration=max(0.0, vend - open_span._vstart),
            span_id=open_span.span_id,
            parent_id=open_span.parent_id,
            run_id=ctx.run_id if ctx is not None else self.run_id,
            trace_id=ctx.trace_id if ctx is not None else self.run_id,
            serial=ctx.serial if ctx is not None else -1,
            worker=ctx.worker if ctx is not None else "main",
            seq=open_span.seq,
            attrs=open_span.attrs,
        )
        if self._shards is not None:
            self._shards.emit(event.worker, event.to_dict())
        else:
            with self._lock:
                self._events.append(event)


#: The process-global tracer; disabled (no-op) until someone installs an
#: enabled one (the CLI's ``--trace`` does, tests do).
_GLOBAL_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer (disabled by default)."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` globally; returns the previous tracer."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous


def span(name: str, **attrs: Any):
    """Open a span on the process-global tracer."""
    return _GLOBAL_TRACER.span(name, **attrs)

"""Trace tooling over the merged event stream.

Everything here consumes the list-of-dicts form produced by
:func:`repro.observability.sink.load_traces` (shards already merged in
serial commit order) and renders text — no third-party visualization
dependencies:

- :func:`render_timeline` — an indented causal timeline (one line per
  span, children under parents, both clocks, probe ledger inlined);
- :func:`folded_stacks` — Brendan-Gregg-style folded stacks
  (``root;child;leaf <self_weight>``), the interchange format every
  flamegraph renderer accepts;
- :func:`diff_traces` / :func:`render_diff` — compare two runs (or a
  run against a BENCH_* baseline JSON) on both clocks; this is what
  reproduces the BENCH_5 wall-vs-simulated gap from telemetry alone;
- :func:`prometheus_exposition` — metric events as Prometheus text
  exposition format, for scraping or pushgateway-style upload.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "render_timeline",
    "folded_stacks",
    "clock_totals",
    "baseline_totals",
    "diff_traces",
    "render_diff",
    "prometheus_exposition",
]


# -- timeline ----------------------------------------------------------------


def render_timeline(
    events: Sequence[Dict[str, Any]],
    with_probes: bool = True,
    limit: Optional[int] = None,
) -> str:
    """An indented causal timeline of the merged trace.

    Spans print in start order, indented under their parents; each line
    shows both clocks.  Probe ledger events print (indented one deeper)
    under their owning span when ``with_probes``.  ``limit`` truncates
    the output (a ``--jobs 4`` corpus trace can run long).
    """
    spans = [e for e in events if e.get("type") == "span"]
    spans.sort(key=lambda s: (s.get("start", 0.0), s.get("seq", 0)))
    depth: Dict[Optional[str], int] = {None: -1}
    # Two passes: parents may finish (and so appear) after children in
    # emit order, but start order nearly always sees parents first; the
    # fallback depth for an unseen parent is 0.
    probe_by_span: Dict[Optional[str], List[Dict[str, Any]]] = {}
    if with_probes:
        for event in events:
            if event.get("type") == "probe":
                probe_by_span.setdefault(event.get("span_id"), []).append(
                    event
                )
    lines: List[str] = []
    for span in spans:
        parent = span.get("parent_span_id")
        d = depth.get(parent, 0) + 1
        depth[span.get("span_id")] = d
        indent = "  " * d
        attrs = span.get("attrs") or {}
        attr_text = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        lines.append(
            f"{span.get('start', 0.0):>9.4f}s {indent}{span.get('name')}"
            f"  [{span.get('span_id')}]"
            f"  wall={float(span.get('duration', 0.0)):.4f}s"
            f"  virtual={float(span.get('vduration', 0.0)):.1f}s"
            + (f"  {attr_text}" if attr_text else "")
        )
        for probe in probe_by_span.get(span.get("span_id"), ()):
            lines.append(
                f"{float(probe.get('t', 0.0)):>9.4f}s {indent}  "
                f"· probe {probe.get('event_id')}"
                f" cache={probe.get('cache')} outcome={probe.get('outcome')}"
                f" wall={float(probe.get('wall_seconds', 0.0)):.4f}s"
            )
        if limit is not None and len(lines) >= limit:
            lines.append(f"... ({len(spans)} spans total, truncated)")
            break
    if not lines:
        lines.append("(no spans)")
    return "\n".join(lines)


# -- flame (folded stacks) ---------------------------------------------------


def folded_stacks(
    events: Sequence[Dict[str, Any]],
    clock: str = "wall",
    scale: float = 1000.0,
) -> str:
    """Folded-stacks output: ``a;b;c <weight>`` per line.

    Weights are *self* time (span duration minus recorded children) on
    the chosen clock (``wall`` or ``virtual``), scaled to integer
    milliseconds by default — the format flamegraph.pl and speedscope
    both ingest.  Identical stacks aggregate.
    """
    if clock not in ("wall", "virtual"):
        raise ValueError(f"clock must be 'wall' or 'virtual', not {clock!r}")
    dur_key = "duration" if clock == "wall" else "vduration"
    spans = [e for e in events if e.get("type") == "span"]
    by_id = {s.get("span_id"): s for s in spans}
    child_total: Dict[Optional[str], float] = {}
    for span in spans:
        parent = span.get("parent_span_id")
        child_total[parent] = child_total.get(parent, 0.0) + float(
            span.get(dur_key, 0.0)
        )
    folded: Dict[str, float] = {}
    for span in spans:
        path: List[str] = []
        cursor: Optional[Dict[str, Any]] = span
        seen = set()
        while cursor is not None:
            sid = cursor.get("span_id")
            if sid in seen:
                break
            seen.add(sid)
            path.append(str(cursor.get("name")))
            cursor = by_id.get(cursor.get("parent_span_id"))
        path.reverse()
        self_time = float(span.get(dur_key, 0.0)) - child_total.get(
            span.get("span_id"), 0.0
        )
        if self_time <= 0.0:
            continue
        key = ";".join(path)
        folded[key] = folded.get(key, 0.0) + self_time
    lines = [
        f"{stack} {max(1, round(weight * scale))}"
        for stack, weight in sorted(folded.items())
    ]
    if not lines:
        lines.append("(no spans)")
    return "\n".join(lines)


# -- diff --------------------------------------------------------------------


def clock_totals(events: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    """Both end-to-end clocks of a trace: wall and simulated seconds.

    Wall is the sum of *root* span durations (spans whose parent id
    resolves to no span in the trace — covers both true roots and
    schema-1 traces).  Simulated is the ``predicate.virtual_seconds``
    counter when present, else the max span ``vstart + vduration``.
    """
    spans = [e for e in events if e.get("type") == "span"]
    ids = {s.get("span_id") for s in spans}
    wall = sum(
        float(s.get("duration", 0.0))
        for s in spans
        if s.get("parent_span_id") not in ids
    )
    simulated = 0.0
    for event in events:
        if (
            event.get("type") == "counter"
            and event.get("name") == "predicate.virtual_seconds"
        ):
            simulated += float(event.get("value", 0.0))
    if simulated == 0.0 and spans:
        simulated = max(
            float(s.get("vstart", 0.0)) + float(s.get("vduration", 0.0))
            for s in spans
        )
    return {"wall": wall, "simulated": simulated}


def _span_totals(events: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for event in events:
        if event.get("type") == "span":
            name = event["name"]
            totals[name] = totals.get(name, 0.0) + float(
                event.get("duration", 0.0)
            )
    return totals


def baseline_totals(payload: Dict[str, Any]) -> Optional[Dict[str, float]]:
    """Clock totals from a BENCH_* baseline JSON, if it carries them.

    Finds the first sub-object (depth-first in key insertion order, up
    to three levels deep) carrying ``wall_seconds`` and/or
    ``simulated_seconds``/``virtual_seconds`` — the clock keys every
    BENCH_* payload variant uses, at whatever nesting level (e.g.
    BENCH_5's ``corpus_end_to_end.sequential.wall_seconds``).
    """

    def _extract(obj: Dict[str, Any]) -> Optional[Dict[str, float]]:
        wall = obj.get("wall_seconds")
        sim = obj.get("simulated_seconds", obj.get("virtual_seconds"))
        if wall is None and sim is None:
            return None
        return {
            "wall": float(wall or 0.0),
            "simulated": float(sim or 0.0),
        }

    def _search(obj: Dict[str, Any], depth: int):
        found = _extract(obj)
        if found is not None:
            return found
        if depth == 0:
            return None
        for value in obj.values():
            if isinstance(value, dict):
                found = _search(value, depth - 1)
                if found is not None:
                    return found
        return None

    return _search(payload, 3)


def diff_traces(
    a_events: Sequence[Dict[str, Any]],
    b_events: Sequence[Dict[str, Any]],
    a_label: str = "a",
    b_label: str = "b",
) -> Dict[str, Any]:
    """Compare two traces on both clocks, with per-span deltas.

    Returns ``{"labels", "clocks": {wall: {a, b, speedup}, simulated:
    {...}}, "spans": [{name, a, b, delta}...]}``.  ``speedup`` is
    ``a / b`` (how much faster ``b`` is), 0.0 when ``b`` spent nothing.
    The wall-vs-simulated disagreement — speculation 2.38x simulated but
    0.85x wall in BENCH_5 — falls straight out of the two speedups.
    """
    a_clocks = clock_totals(a_events)
    b_clocks = clock_totals(b_events)
    clocks: Dict[str, Any] = {}
    for key in ("wall", "simulated"):
        a_val, b_val = a_clocks[key], b_clocks[key]
        clocks[key] = {
            "a": a_val,
            "b": b_val,
            "speedup": (a_val / b_val) if b_val else 0.0,
        }
    a_spans = _span_totals(a_events)
    b_spans = _span_totals(b_events)
    spans = [
        {
            "name": name,
            "a": a_spans.get(name, 0.0),
            "b": b_spans.get(name, 0.0),
            "delta": b_spans.get(name, 0.0) - a_spans.get(name, 0.0),
        }
        for name in sorted(set(a_spans) | set(b_spans))
    ]
    spans.sort(key=lambda row: -abs(row["delta"]))
    return {"labels": [a_label, b_label], "clocks": clocks, "spans": spans}


def render_diff(diff: Dict[str, Any], top: int = 12) -> str:
    """Human-readable two-clock comparison for ``jlreduce trace diff``."""
    a_label, b_label = diff["labels"]
    lines = [f"trace diff: a={a_label}  b={b_label}", ""]
    lines.append("clocks")
    for key in ("wall", "simulated"):
        row = diff["clocks"][key]
        lines.append(
            f"  {key:<10} a={row['a']:>10.3f}s  b={row['b']:>10.3f}s  "
            f"speedup(a/b)={row['speedup']:.2f}x"
        )
    wall = diff["clocks"]["wall"]["speedup"]
    sim = diff["clocks"]["simulated"]["speedup"]
    if wall and sim and (sim / wall > 1.5 or wall / sim > 1.5):
        lines.append(
            f"  note: clocks disagree ({sim:.2f}x simulated vs "
            f"{wall:.2f}x wall) — wall-clock costs are not where the "
            f"probe model says they are"
        )
    rows = diff["spans"][:top]
    if rows:
        lines.append("")
        lines.append("largest span deltas (wall seconds, b - a)")
        for row in rows:
            lines.append(
                f"  {row['name']:<28} a={row['a']:>9.3f}  "
                f"b={row['b']:>9.3f}  delta={row['delta']:>+9.3f}"
            )
    return "\n".join(lines)


# -- prometheus export -------------------------------------------------------


def _prom_name(name: str) -> str:
    safe = "".join(
        c if c.isalnum() or c == "_" else "_" for c in name
    )
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return safe


def prometheus_exposition(
    events: Sequence[Dict[str, Any]], prefix: str = "jlreduce"
) -> str:
    """Metric events rendered as Prometheus text exposition format.

    Counters become ``<prefix>_<name>_total``, gauges plain gauges,
    histograms native Prometheus histograms with cumulative ``le``
    buckets plus ``_sum``/``_count``.  Counter lines with the same name
    (concatenated shards) are summed.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for event in events:
        kind = event.get("type")
        if kind == "counter":
            name = event["name"]
            counters[name] = counters.get(name, 0) + event["value"]
        elif kind == "gauge":
            gauges[event["name"]] = event["value"]
        elif kind == "histogram":
            histograms[event["name"]] = event

    lines: List[str] = []
    for name in sorted(counters):
        metric = f"{prefix}_{_prom_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counters[name]}")
    for name in sorted(gauges):
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {gauges[name]}")
    for name in sorted(histograms):
        hist = histograms[name]
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        buckets = hist.get("buckets") or []
        counts = hist.get("counts") or []
        for bound, count in zip(buckets, counts):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        # counts has one more entry than buckets: the +Inf overflow.
        if len(counts) > len(buckets):
            cumulative += counts[-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {hist.get('sum', 0.0)}")
        lines.append(f"{metric}_count {hist.get('count', cumulative)}")
    if not lines:
        return "# (no metrics)\n"
    return "\n".join(lines) + "\n"

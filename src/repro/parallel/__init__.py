"""Parallel experiment execution and the persistent predicate cache.

The ROADMAP's north star is throughput: the harness used to run every
(benchmark × decompiler × strategy) instance strictly serially with no
outcome reuse across runs, even though the predicate — the paper's
~33-second decompile+compile cycle — is a pure function of (oracle,
kept items).  This package amortizes both axes:

- :mod:`repro.parallel.runner` — a worker-pool corpus runner that fans
  independent instances out and merges outcomes deterministically in
  serial order (``jlreduce bench --jobs N``),
- :mod:`repro.parallel.store` — the persistent predicate cache tier,
  keyed by oracle fingerprint + canonical sub-input hash, which
  :class:`~repro.reduction.predicate.InstrumentedPredicate` reads
  through and writes back, so repeat runs of the same instance cost
  zero fresh predicate calls.  Three backends behind one interface
  (:func:`open_store`): the sharded lazy-loading JSONL tier
  (:class:`ShardedPredicateStore` — hash-selected shard files, LRU
  size-bounded residency, threshold compaction, hit/miss/evict
  telemetry), a sqlite-WAL variant (:class:`SqlitePredicateStore`),
  and the v1 single-file :class:`PredicateStore` both migrate from,
- :mod:`repro.parallel.speculate` — speculative k-ary prefix search for
  GBR's inner binary search (``--speculate K``): k probes per round run
  concurrently on a dedicated pool, committed in deterministic serial
  order so results stay byte-identical to sequential runs,
- :mod:`repro.parallel.procpool` — the ``--probe-backend process``
  pool: fresh physical probes run in spawn-safe worker processes that
  rebuild the predicate chain from a picklable :class:`ProbeTaskSpec`,
  beating the GIL on the pure-Python probe work the thread pool cannot
  overlap; the parent commits results serially, so outcomes stay
  byte-identical across backends,
- :mod:`repro.parallel.scheduler` — the corpus-level analogue: whole
  reduction instances fanned to spawn-safe worker processes
  (:class:`InstanceTaskSpec`), dispatched adaptive longest-job-first,
  committed in serial order (outcomes, metrics, spans, ledger), with a
  shared :class:`WorkerBudget` so corpus workers × probe workers never
  oversubscribe the machine (``jlreduce bench --corpus-jobs N``).

Both lean on the concurrency-safe telemetry in
:mod:`repro.observability`: lock-protected metrics and thread-scoped
per-run registries (:func:`~repro.observability.scoped_metrics`), so
concurrent reductions never pollute each other's
``extras['metrics']``.
"""

from repro.parallel.procpool import (
    ProbeTaskSpec,
    ProcessProbePool,
    ToolLatencyPredicate,
    build_worker_predicate,
)
from repro.parallel.runner import (
    resolve_jobs,
    run_parallel_corpus_experiment,
)
from repro.parallel.scheduler import (
    InstancePool,
    InstanceTaskSpec,
    StoreSpec,
    WorkerBudget,
    close_worker_caches,
    load_cost_hints,
    run_instance_task,
    run_scheduled_corpus_experiment,
)
from repro.parallel.speculate import (
    candidate_midpoints,
    speculation_allowed,
    speculative_interval_search,
)
from repro.parallel.store import (
    DEFAULT_SHARDS,
    PredicateStore,
    ShardedPredicateStore,
    SqlitePredicateStore,
    fingerprint_of,
    key_of,
    open_store,
)

__all__ = [
    "DEFAULT_SHARDS",
    "PredicateStore",
    "ShardedPredicateStore",
    "SqlitePredicateStore",
    "InstancePool",
    "InstanceTaskSpec",
    "ProbeTaskSpec",
    "ProcessProbePool",
    "StoreSpec",
    "ToolLatencyPredicate",
    "WorkerBudget",
    "build_worker_predicate",
    "candidate_midpoints",
    "close_worker_caches",
    "fingerprint_of",
    "key_of",
    "load_cost_hints",
    "run_instance_task",
    "open_store",
    "resolve_jobs",
    "run_parallel_corpus_experiment",
    "run_scheduled_corpus_experiment",
    "speculation_allowed",
    "speculative_interval_search",
]

"""Process-parallel probe evaluation: beat the GIL on physical probes.

BENCH_5's blunt lesson: speculative probing wins 2.38x in *simulated*
seconds but loses wall-clock (0.85x), because probe materialization +
decompile + javac are pure-Python CPU work — a ``ThreadPoolExecutor``
overlaps none of it under the GIL.  The paper's premise is the
opposite: the predicate is an external ~33-second tool invocation, and
k of them genuinely run at once.  This module makes that real by
moving *fresh* physical probes onto a ``ProcessPoolExecutor``.

The contract (DESIGN.md §10) has three parts:

- **Task pickling.**  A :class:`ProbeTaskSpec` is a frozen, picklable
  recipe for rebuilding the predicate chain inside a worker process:
  the serialized application bytes (``serialize_application`` round-
  trips exactly), the decompiler *name* (resolved via
  ``get_decompiler``), the granularity, and the resilience knobs
  (seeded :class:`~repro.resilience.faults.FaultPlan`, retries,
  deadline, tool latency).  Workers cache the rebuilt chain per spec,
  so one pickle+rebuild amortizes over every probe of a run.  Probe
  *inputs* are frozensets of the frozen item dataclasses from
  :mod:`repro.bytecode.items` — picklable by construction — plus the
  picklable :class:`~repro.observability.context.TraceContext` payload
  for the telemetry hop.
- **Worker results.**  :func:`_evaluate_probe` returns a
  :class:`ProbeResult` — verdict (or the raised exception, relayed
  rather than thrown so its metrics survive), wall latency, the
  worker-side metrics *delta* (recorded under a fresh
  ``scoped_metrics`` child), and handcrafted ``predicate.call`` span
  payloads the parent re-emits via
  :meth:`~repro.observability.spans.Tracer.adopt`.
- **Serial commit.**  The parent —
  :meth:`~repro.reduction.predicate.InstrumentedPredicate
  .evaluate_batch` — commits results in serial index order exactly as
  the thread backend does: cache writes, store write-back (the
  persistent cache tier of :mod:`repro.parallel.store` stays entirely
  parent-side — workers never open the store, so its single-``os.write``
  shard-append discipline holds per parent process), virtual
  clock, and the probe provenance ledger all evolve as if the round
  had been issued sequentially, so results stay byte-identical across
  ``--probe-backend {thread,process}`` and sequential runs.

Chaos parity: a worker rebuilds its *own* seeded fault injector (same
derived seed, fresh call counter), so the per-call fault schedule is
not the parent's — but the supported chaos modes are truth-preserving
(transient errors + retries recover the true outcome), so the
*results* remain byte-identical; the differential suite in
``tests/parallel/test_procpool.py`` pins this down.

:class:`ToolLatencyPredicate` models the paper's external tool as a
real per-invocation sleep (``--tool-latency-ms``): unlike the
simulated virtual clock, a sleep is *observable* wall time that a
process (or thread) pool genuinely overlaps — it is what
``benchmarks/bench_procpool.py`` measures its wall speedup against.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
)

from repro.resilience.faults import FaultPlan, derive_seed

__all__ = [
    "ProbeTaskSpec",
    "ProbeResult",
    "ProcessProbePool",
    "ToolLatencyPredicate",
    "build_worker_predicate",
    "worker_label",
]

VarName = Hashable
Predicate = Callable[[FrozenSet[VarName]], bool]


class ToolLatencyPredicate:
    """A predicate that pays a real per-invocation tool latency.

    Sits *innermost* in the chain (directly around the raw oracle), in
    both the parent's sequential chain and the worker replicas, so
    every backend pays the identical latency per physical attempt and
    wall-clock comparisons between them are honest.
    """

    def __init__(self, predicate: Predicate, latency_seconds: float) -> None:
        if latency_seconds < 0:
            raise ValueError(
                f"tool latency must be >= 0, got {latency_seconds}"
            )
        self._predicate = predicate
        self.latency_seconds = latency_seconds

    def __call__(self, sub_input: FrozenSet[VarName]) -> bool:
        time.sleep(self.latency_seconds)
        return self._predicate(sub_input)


@dataclass(frozen=True)
class ProbeTaskSpec:
    """A picklable recipe for rebuilding a predicate chain in a worker.

    ``kind == "oracle"`` rebuilds a
    :class:`~repro.decompiler.oracle.DecompilerOracle` from
    ``app_bytes`` (the exact ``serialize_application`` round-trip) and
    the decompiler *name*; ``kind == "callable"`` ships a small
    picklable predicate directly (the CLI's containment oracle).

    The spec doubles as the worker-side cache key (it is frozen and
    hashable), so every field must be immutable: the chaos plan is the
    frozen :class:`FaultPlan`, and ``chaos_key`` is the same per-
    instance derivation key the harness feeds ``derive_seed`` — the
    worker replica chains are seeded identically to the parent's.
    """

    kind: str = "oracle"
    app_bytes: Optional[bytes] = None
    decompiler: Optional[str] = None
    granularity: str = "item"
    predicate: Optional[Predicate] = None
    chaos: Optional[FaultPlan] = None
    chaos_key: str = ""
    retries: int = 0
    deadline_seconds: Optional[float] = None
    tool_latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("oracle", "callable"):
            raise ValueError(
                f"kind must be 'oracle' or 'callable', got {self.kind!r}"
            )
        if self.kind == "oracle":
            if self.app_bytes is None or self.decompiler is None:
                raise ValueError(
                    "an 'oracle' task spec needs app_bytes and a "
                    "decompiler name"
                )
            if self.granularity not in ("item", "class"):
                raise ValueError(
                    f"granularity must be 'item' or 'class', "
                    f"got {self.granularity!r}"
                )
        elif self.predicate is None:
            raise ValueError("a 'callable' task spec needs a predicate")


@dataclass
class ProbeResult:
    """What one worker probe sends back for the serial commit.

    ``error`` relays a raised exception instead of letting it escape
    through the future, so the attempt's metrics delta (retries,
    timeouts) still reaches the parent; the parent re-raises it at the
    probe's serial commit position, exactly like the thread backend.
    """

    outcome: Optional[bool]
    wall_seconds: float
    error: Optional[BaseException] = None
    metrics: Dict[str, int] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)


def build_worker_predicate(spec: ProbeTaskSpec) -> Predicate:
    """Rebuild the parent's predicate chain (below the cache) from a spec.

    Mirrors ``repro.harness.experiments._run_instance_inner`` layer for
    layer: raw oracle → tool latency → chaos injector →
    :class:`~repro.resilience.ResilientPredicate` (fresh unlimited
    budget — a *limiting* budget never reaches this backend, because
    ``speculation_allowed`` serializes it).  The
    :class:`~repro.reduction.predicate.InstrumentedPredicate` layer
    stays parent-side: memoization, the store, and the clocks are
    committed serially there.
    """
    if spec.kind == "callable":
        raw = spec.predicate
    else:
        from repro.bytecode.serializer import deserialize_application
        from repro.decompiler.oracle import DecompilerOracle

        app = deserialize_application(spec.app_bytes)
        oracle = DecompilerOracle(app, spec.decompiler)
        raw = (
            oracle.item_predicate
            if spec.granularity == "item"
            else oracle.class_predicate
        )
    wrapped: Predicate = raw
    if spec.tool_latency_seconds > 0:
        wrapped = ToolLatencyPredicate(wrapped, spec.tool_latency_seconds)
    if spec.chaos is not None:
        wrapped = spec.chaos.apply(wrapped, spec.chaos_key)
    if (
        spec.chaos is not None
        or spec.retries > 0
        or spec.deadline_seconds is not None
    ):
        from repro.resilience import Budget, ResilientPredicate

        wrapped = ResilientPredicate(
            wrapped,
            budget=Budget(),
            retries=spec.retries,
            deadline_seconds=spec.deadline_seconds,
            seed=derive_seed(0, spec.chaos_key),
        )
    return wrapped


def worker_label() -> str:
    """This worker process's shard label (``p<pid>``)."""
    return f"p{os.getpid()}"


#: Per-process cache of rebuilt predicate chains, keyed by the spec.
#: One pickle + oracle rebuild amortizes over every probe of a run.
_PREDICATES: Dict[ProbeTaskSpec, Predicate] = {}


def _worker_predicate(spec: ProbeTaskSpec) -> Predicate:
    predicate = _PREDICATES.get(spec)
    if predicate is None:
        predicate = build_worker_predicate(spec)
        _PREDICATES[spec] = predicate
    return predicate


def _evaluate_probe(
    spec: ProbeTaskSpec,
    sub_input: FrozenSet[VarName],
    ctx_payload: Optional[Dict[str, Any]] = None,
) -> ProbeResult:
    """One physical probe, evaluated inside a pool worker process.

    Runs under a fresh ``scoped_metrics`` child so the returned metrics
    dict is exactly this probe's delta; with a traced parent
    (``ctx_payload``), also handcrafts the ``predicate.call`` span
    payload the parent re-emits via ``Tracer.adopt`` — the worker has
    no live tracer of its own, only the picklable context capsule.
    """
    from repro.observability import scoped_metrics

    predicate = _worker_predicate(spec)
    outcome: Optional[bool] = None
    error: Optional[BaseException] = None
    with scoped_metrics() as registry:
        start = time.perf_counter()
        try:
            outcome = predicate(sub_input)
        except BaseException as exc:  # noqa: BLE001 — relayed to the parent
            error = exc
        wall = time.perf_counter() - start
    events: List[Dict[str, Any]] = []
    if ctx_payload is not None:
        ctx = ctx_payload.get("ctx") or {}
        events.append(
            {
                "type": "span",
                "name": "predicate.call",
                "start": time.time() - ctx_payload.get("epoch_unix", 0.0),
                "duration": wall,
                "vstart": ctx_payload.get("vt", 0.0),
                "vduration": 0.0,
                "parent_span_id": ctx.get("span_id"),
                "run_id": ctx.get("run_id", ""),
                "trace_id": ctx.get("trace_id", ""),
                "serial": ctx.get("serial", -1),
                "worker": worker_label(),
                "attrs": {
                    "size": len(sub_input),
                    "outcome": outcome,
                    "backend": "process",
                    "pid": os.getpid(),
                },
            }
        )
    return ProbeResult(
        outcome=outcome,
        wall_seconds=wall,
        error=error,
        metrics={
            name: value
            for name, value in registry.counter_values().items()
            if value
        },
        events=events,
    )


class ProcessProbePool:
    """A spawn-safe process pool for physical probe evaluation.

    Duck-typed by ``InstrumentedPredicate.evaluate_batch`` via
    :meth:`submit_probe` (a plain ``ThreadPoolExecutor`` exposes
    ``submit`` instead — that is how the batch picks its backend).
    ``spawn`` is the default start method: it is the only one that is
    both fork-safe under threads (the corpus runner shares one pool
    across worker threads) and portable, and it forces the pickling
    contract to hold — a worker only ever sees what the spec carries.
    """

    def __init__(self, max_workers: int, mp_context: str = "spawn") -> None:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool = ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=multiprocessing.get_context(mp_context),
        )

    def submit_probe(
        self,
        spec: ProbeTaskSpec,
        sub_input: FrozenSet[VarName],
        ctx_payload: Optional[Dict[str, Any]] = None,
    ):
        """Schedule one probe; returns a future of :class:`ProbeResult`."""
        return self._pool.submit(_evaluate_probe, spec, sub_input, ctx_payload)

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "ProcessProbePool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(wait=True)

"""Fan corpus instances out to a worker pool, merge deterministically.

Every (benchmark × decompiler × strategy) instance is independent: its
predicate outcomes, progression rebuilds, and telemetry depend only on
the instance itself.  That makes the corpus experiment embarrassingly
parallel — the only historical obstacles were the telemetry bugs this
package's sibling fixes removed (global-counter-delta attribution and
the real-time-contaminated simulated clock).

Why threads and not processes: the corpus objects (applications,
oracles, closures over both) are not picklable, and the simulated
decompilers are microsecond-scale pure Python, so the run is dominated
by many small GIL-released-free steps rather than one hot C loop.  A
thread pool gets the structure right — per-run scoped metrics, a shared
persistent predicate store (any thread-safe
:func:`~repro.parallel.store.open_store` backend), thread-local
span nesting — and a process pool can slot in behind the same function
once the corpus grows a serialized form.

Determinism: results are merged in *serial order* — the exact order the
serial runner would produce — regardless of completion order, and every
:class:`~repro.harness.experiments.InstanceOutcome` field except
``real_seconds`` is identical to a serial run's (the simulated clock
and timeline are virtual, the metrics are per-run scoped).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

from repro.observability import get_tracer
from repro.harness.experiments import (
    ExperimentConfig,
    InstanceOutcome,
    error_outcome,
    probe_cap_for,
    probe_pool,
    progress_line,
    run_instance,
)
from repro.workloads.corpus import Benchmark

__all__ = ["run_parallel_corpus_experiment", "resolve_jobs"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0 means one per CPU."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _worker_label() -> str:
    """The shard label of the current pool thread (``w3``), or ``main``.

    Derived from the executor's ``jlreduce-worker_<n>`` thread names so
    the label is stable for the thread's lifetime and doubles as the
    span-id namespace and shard filename suffix.
    """
    name = threading.current_thread().name
    _, sep, index = name.rpartition("_")
    if sep and name.startswith("jlreduce-worker") and index.isdigit():
        return f"w{index}"
    return "main"


def run_parallel_corpus_experiment(
    benchmarks: Sequence[Benchmark],
    config: Optional[ExperimentConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = None,
    store=None,
) -> List[InstanceOutcome]:
    """Run every configured strategy on every instance, ``jobs`` at a time.

    Args:
        benchmarks: the corpus.
        config: shared strategy knobs.
        progress: optional line callback; called in serial order (an
            instance's line is emitted only after every earlier
            instance finished), so output is reproducible.
        jobs: worker threads (None/0: one per CPU; 1 degenerates to a
            serial run through the same code path).
        store: optional predicate store (any
            :func:`~repro.parallel.store.open_store` backend) shared by
            all workers (every backend is thread-safe).  Note that a
            warm store changes ``predicate_calls`` — byte-for-byte
            serial equality holds for cold or absent stores.

    Graceful degradation: with ``config.keep_going``, a worker whose
    instance crashes (an unrecoverable oracle error, retry exhaustion,
    a bug in a strategy) yields an error-marked
    :class:`~repro.harness.experiments.InstanceOutcome` in its serial
    position and the rest of the corpus completes; without it the first
    failure propagates, matching the serial runner.

    Returns:
        Outcomes in serial order: benchmarks, then instances, then
        strategies, exactly like the serial runner.
    """
    config = config or ExperimentConfig()
    jobs = resolve_jobs(jobs)
    tasks = [
        (benchmark, instance, strategy)
        for benchmark in benchmarks
        for instance in benchmark.instances
        for strategy in config.strategies
    ]
    outcomes: List[InstanceOutcome] = []
    # Captured once, before fan-out: each task re-attaches a serial-slot
    # derivative of this context on its pool thread, so worker spans
    # parent onto the spawning span and land in per-worker shards.
    tracer = get_tracer()
    parent_ctx = tracer.current_context() if tracer.enabled else None

    def run_traced(serial, benchmark, instance, strategy):
        if parent_ctx is None:
            return run_instance(
                benchmark, instance, strategy, config, store,
                probe_executor=probes,
            )
        task_ctx = parent_ctx.task(serial=serial, worker=_worker_label())
        with tracer.attach(task_ctx):
            return run_instance(
                benchmark, instance, strategy, config, store,
                probe_executor=probes,
            )

    # The probe pool is shared across instances but deliberately
    # separate from the instance pool: an instance worker blocks on its
    # probe futures, and blocking on futures scheduled into one's own
    # pool deadlocks once every worker does it.  A worker budget (when
    # set) caps its physical size so corpus workers + probe workers
    # never exceed the configured total.
    probes = probe_pool(config, max_workers=probe_cap_for(config, jobs))
    try:
        with ThreadPoolExecutor(
            max_workers=max(1, jobs), thread_name_prefix="jlreduce-worker"
        ) as pool:
            futures = [
                pool.submit(
                    run_traced, serial, benchmark, instance, strategy
                )
                for serial, (benchmark, instance, strategy) in enumerate(
                    tasks
                )
            ]
            for future, (benchmark, instance, strategy) in zip(
                futures, tasks
            ):
                try:
                    outcome = future.result()
                except Exception as exc:  # noqa: BLE001 — degraded below
                    # run_instance already converts failures when
                    # keep_going is set; this second net catches anything
                    # that escaped (e.g. setup code outside its guard), so
                    # one bad worker cannot abort the whole bench.
                    if not config.keep_going:
                        raise
                    outcome = error_outcome(
                        benchmark, instance, strategy, exc
                    )
                outcomes.append(outcome)
                if progress is not None:
                    progress(progress_line(outcome))
    finally:
        if probes is not None:
            probes.shutdown(wait=True)
    return outcomes

"""Process-parallel corpus scheduling: whole instances across cores.

PR 7 moved *probes* onto worker processes; the corpus loop above them
stayed a GIL-bound ``ThreadPoolExecutor`` (:mod:`repro.parallel.runner`)
whose workers only overlap external tool latency.  This module fans
**whole reduction instances** out to spawn-safe worker processes, the
way the paper's evaluation actually ran: one machine, many benchmarks,
all cores busy.

The contract extends PR 7's recipe one level up (DESIGN.md §12):

- **Task pickling.**  An :class:`InstanceTaskSpec` is a picklable
  recipe for one (benchmark, instance) pair: the application (inline
  ``serialize_application`` bytes, or a path into a persisted corpus so
  a 1000-app parent never holds the blobs), the scenario and decompiler
  *names*, the full :class:`~repro.harness.experiments.ExperimentConfig`,
  the store recipe (:class:`StoreSpec` — workers open their own handle;
  PR 8's O_APPEND + manifest discipline makes concurrent appends safe),
  and the serial base of the instance's strategy runs.
- **Worker results.**  A worker runs every configured strategy of its
  instance *in serial order* under a fresh ``scoped_metrics`` child and
  a real per-process tracer, and ships back, per strategy: the
  :class:`~repro.harness.experiments.InstanceOutcome` (or the relayed
  exception), the full metrics-registry snapshot, and the span/ledger
  events with their worker-tracer ids intact.
- **Serial-order commit.**  The parent buffers results and commits the
  contiguous prefix in task order: outcomes append (or stream to
  ``on_outcome`` — no O(corpus) memory), relayed errors re-raise (or
  degrade to error outcomes under ``keep_going``), metrics snapshots
  fold into the live registry
  (:meth:`~repro.observability.metrics.MetricsRegistry.merge_snapshot`),
  and events re-base onto the parent clock via
  :meth:`~repro.observability.spans.Tracer.ingest` — so results, the
  virtual clock, telemetry totals, and the probe ledger match a
  ``jobs=1`` run.

Determinism is *stronger* than the thread runner's: strategies of one
instance run sequentially inside one worker, so a shared **cold** store
warms in exactly the ``jobs=1`` order (strategies of an instance are the
only runs that share a fingerprint; distinct benchmarks never collide),
where the thread runner's per-strategy fan-out can interleave them.

**Adaptive longest-job-first dispatch.**  Tasks are predicted from item
counts (persisted-corpus manifests carry them) or prior-run telemetry
(:func:`load_cost_hints` over a results JSONL), largest first, and the
per-scenario cost scale is re-estimated (EWMA) as observations arrive —
the classic LPT heuristic that keeps a straggler from being scheduled
last onto an otherwise-drained pool.  Dispatch order does not affect
results (instances are independent; seeds key on ids, not submission
order), only the makespan.

**Shared worker budget.**  :class:`WorkerBudget` caps corpus workers ×
per-worker probe-pool workers at a configured total
(``ExperimentConfig.worker_budget``), closing PR 7's oversubscription
hole where ``--jobs N --probe-backend process --speculate K`` spawned
``N×K`` probe processes with no global cap.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.harness.experiments import (
    ExperimentConfig,
    InstanceOutcome,
    error_outcome,
    probe_cap_for,
    probe_pool,
    progress_line,
    run_instance,
)
from repro.observability import get_metrics, get_tracer
from repro.observability.context import TraceContext
from repro.parallel.runner import resolve_jobs
from repro.parallel.store import DEFAULT_SHARDS
from repro.workloads.corpus import Benchmark, BuggyInstance, load_manifest

__all__ = [
    "WorkerBudget",
    "StoreSpec",
    "InstancePool",
    "InstanceTaskSpec",
    "StrategyResult",
    "InstanceTaskResult",
    "close_worker_caches",
    "load_cost_hints",
    "run_instance_task",
    "run_scheduled_corpus_experiment",
]


# ----------------------------------------------------------------------
# Worker budget
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerBudget:
    """A global cap on live workers (corpus + probe pools combined).

    ``probe_pool_cap`` answers "how many probe workers may each pool
    hold so the sum stays under budget": the thread runner shares *one*
    probe pool across all corpus workers (``shared=True``); the process
    scheduler gives each of its ``corpus_jobs`` workers a private pool,
    so the leftover divides (``shared=False``).  The cap never drops
    below one worker — a pool that cannot exist would change results,
    and the budget's job is sizing, not semantics.
    """

    total: int

    def __post_init__(self) -> None:
        if self.total < 1:
            raise ValueError(f"worker budget must be >= 1, got {self.total}")

    @classmethod
    def detect(cls, total: Optional[int] = None) -> "WorkerBudget":
        """An explicit total, or one slot per CPU."""
        if total is not None and total > 0:
            return cls(total)
        return cls(os.cpu_count() or 1)

    def corpus_jobs(self, requested: int) -> int:
        """Clamp a requested corpus-worker count to the budget."""
        return max(1, min(requested, self.total))

    def probe_pool_cap(self, corpus_jobs: int, shared: bool = True) -> int:
        """Max workers per probe pool, given ``corpus_jobs`` are taken."""
        leftover = max(0, self.total - corpus_jobs)
        if not shared:
            leftover = leftover // max(1, corpus_jobs)
        return max(1, leftover)


# ----------------------------------------------------------------------
# Task specs (what pickles into a worker)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StoreSpec:
    """A picklable recipe for opening the shared predicate store.

    Workers cannot inherit the parent's file descriptors across a spawn
    — they open their own handle from this recipe (cached per process).
    The parent opens the store first, so the shard layout/manifest
    exists before any worker races to it; after that, PR 8's
    single-``os.write`` O_APPEND append discipline makes concurrent
    multi-process appends safe on every backend.
    """

    path: str
    backend: str = "sharded"
    shards: int = DEFAULT_SHARDS
    max_entries: Optional[int] = None

    def open(self):
        from repro.parallel.store import open_store

        return open_store(
            self.path,
            backend=self.backend,
            shards=self.shards,
            max_entries=self.max_entries,
        )


@dataclass(frozen=True)
class InstanceTaskSpec:
    """A picklable recipe for one whole-instance run (PR 7's
    :class:`~repro.parallel.procpool.ProbeTaskSpec`, one level up).

    Exactly one of ``app_bytes`` / ``app_path`` is set: inline bytes
    for in-memory corpora, a path into a persisted corpus directory for
    paper-scale runs (the parent then never materializes the app).
    ``serial_base`` is the serial index of the instance's *first*
    strategy run — strategy ``i`` commits at ``serial_base + i``,
    matching the thread runner's (benchmark, instance, strategy)
    enumeration exactly.
    """

    benchmark_id: str
    decompiler: str
    scenario: str
    strategies: Tuple[str, ...]
    serial_base: int
    app_seed: int
    config: ExperimentConfig
    app_bytes: Optional[bytes] = None
    app_path: Optional[str] = None
    store: Optional[StoreSpec] = None
    #: Physical probe-pool cap the worker budget allows each worker
    #: (None: historical sizing — ``config.speculate`` workers).
    probe_workers: Optional[int] = None
    #: The parent's ``TraceContext.to_dict()``, or None when untraced.
    ctx: Optional[Dict[str, Any]] = None


@dataclass
class StrategyResult:
    """One strategy's shipment home: outcome or relayed error, plus
    the metrics snapshot and traced events of the run."""

    strategy: str
    outcome: Optional[InstanceOutcome] = None
    error: Optional[BaseException] = None
    metrics: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class InstanceTaskResult:
    """Everything one worker sends back for serial-order commit."""

    serial_base: int
    worker: str
    #: The worker tracer's wall epoch (``time.time()`` at creation) —
    #: the parent re-bases event clocks with it.
    epoch_unix: float
    wall_seconds: float
    strategies: List[StrategyResult] = field(default_factory=list)
    #: Instance-level failure (app load, oracle build) that pre-empted
    #: every strategy.
    error: Optional[BaseException] = None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-process caches: one store handle per recipe, one probe pool per
#: sizing, amortized over every task the worker runs.
_WORKER_STORES: Dict[StoreSpec, Any] = {}
_WORKER_PROBE_POOLS: Dict[Tuple[int, str, Optional[int]], Any] = {}


def _worker_store(spec: Optional[StoreSpec]):
    if spec is None:
        return None
    store = _WORKER_STORES.get(spec)
    if store is None:
        store = spec.open()
        _WORKER_STORES[spec] = store
    return store


def _worker_probe_pool(config: ExperimentConfig, cap: Optional[int]):
    if config.speculate <= 1:
        return None
    key = (config.speculate, config.probe_backend, cap)
    pool = _WORKER_PROBE_POOLS.get(key)
    if pool is None:
        pool = probe_pool(config, max_workers=cap)
        _WORKER_PROBE_POOLS[key] = pool
    return pool


def _worker_tracer(run_id: str):
    """The worker's persistent enabled tracer (installed globally).

    One tracer per process, reused across tasks: its ``seq`` counter
    never resets (``clear()`` keeps it), so span ids
    ``"p<pid>:<seq>"`` stay unique for the process lifetime, across
    every instance it runs.
    """
    from repro.observability.spans import Tracer, set_tracer
    from repro.observability import get_tracer as _get

    tracer = _get()
    if not tracer.enabled:
        tracer = Tracer(enabled=True, run_id=run_id)
        set_tracer(tracer)
    return tracer


def _materialize(spec: InstanceTaskSpec) -> Tuple[Benchmark, BuggyInstance]:
    """Rebuild the (benchmark, instance) pair from the spec's recipe."""
    from repro.bytecode.serializer import deserialize_application

    if spec.app_bytes is not None:
        data = spec.app_bytes
    else:
        with open(spec.app_path, "rb") as fh:
            data = fh.read()
    app = deserialize_application(data)
    benchmark = Benchmark(
        benchmark_id=spec.benchmark_id, seed=spec.app_seed, app=app
    )
    if spec.scenario == "debloat":
        from repro.workloads.debloat import DebloatOracle

        oracle = DebloatOracle(app, spec.benchmark_id)
    else:
        from repro.decompiler.decompile import DECOMPILERS
        from repro.decompiler.oracle import DecompilerOracle

        oracle = DecompilerOracle(app, DECOMPILERS[spec.decompiler])
    instance = BuggyInstance(
        benchmark_id=spec.benchmark_id,
        decompiler=spec.decompiler,
        oracle=oracle,
        scenario=spec.scenario,
    )
    return benchmark, instance


def _run_instance_task(spec: InstanceTaskSpec) -> InstanceTaskResult:
    """One whole instance, evaluated inside a pool worker process.

    Strategies run in serial order; each under a fresh
    ``scoped_metrics`` child (the shipped snapshot is exactly that
    run's delta) and, when traced, an attached per-strategy task
    context, so spans/ledger events carry the same serial slots a
    thread-runner worker would stamp.  Exceptions are relayed, not
    raised — their metrics and the remaining strategies' fate are
    decided at the parent's serial commit.
    """
    from concurrent.futures.process import BrokenProcessPool  # noqa: F401
    from repro.observability import scoped_metrics
    from repro.parallel.procpool import worker_label

    start = time.perf_counter()
    label = worker_label()
    try:
        benchmark, instance = _materialize(spec)
        store = _worker_store(spec.store)
        probes = _worker_probe_pool(spec.config, spec.probe_workers)
    except BaseException as exc:  # noqa: BLE001 — relayed to the parent
        return InstanceTaskResult(
            serial_base=spec.serial_base,
            worker=label,
            epoch_unix=0.0,
            wall_seconds=time.perf_counter() - start,
            error=exc,
        )
    tracer = None
    epoch_unix = 0.0
    base_ctx = None
    if spec.ctx is not None:
        tracer = _worker_tracer(spec.ctx.get("run_id", ""))
        epoch_unix = tracer.epoch_unix
        base_ctx = TraceContext.from_dict(spec.ctx)
    results: List[StrategyResult] = []
    for i, strategy in enumerate(spec.strategies):
        outcome: Optional[InstanceOutcome] = None
        error: Optional[BaseException] = None
        with scoped_metrics() as registry:
            try:
                if base_ctx is not None:
                    task_ctx = base_ctx.task(
                        serial=spec.serial_base + i, worker=label
                    )
                    with tracer.attach(task_ctx):
                        outcome = run_instance(
                            benchmark, instance, strategy, spec.config,
                            store, probe_executor=probes,
                        )
                else:
                    outcome = run_instance(
                        benchmark, instance, strategy, spec.config,
                        store, probe_executor=probes,
                    )
            except BaseException as exc:  # noqa: BLE001 — relayed
                error = exc
        events: List[Dict[str, Any]] = []
        if tracer is not None:
            events = [event.to_dict() for event in tracer.events()]
            events.extend(tracer.raw_events())
            tracer.clear()
        results.append(
            StrategyResult(
                strategy=strategy,
                outcome=outcome,
                error=error,
                metrics=registry.snapshot(),
                events=events,
            )
        )
        if error is not None and not spec.config.keep_going:
            # The parent will raise at this serial slot; later
            # strategies of this instance would be discarded anyway.
            break
    return InstanceTaskResult(
        serial_base=spec.serial_base,
        worker=label,
        epoch_unix=epoch_unix,
        wall_seconds=time.perf_counter() - start,
        strategies=results,
    )


#: The public name of the pool-executable task entry point: the service
#: tier (:mod:`repro.service`) submits these directly to a long-lived
#: :class:`InstancePool` instead of going through
#: :func:`run_scheduled_corpus_experiment`'s one-shot planner.
run_instance_task = _run_instance_task


def close_worker_caches() -> None:
    """Close this process's cached store handles and probe pools.

    Worker processes never need this — their O_APPEND fds die with the
    process when the pool shuts down.  It exists for *thread*-backend
    executors (the service's test/bench mode), where
    :func:`run_instance_task` runs in the parent process and parks its
    store handle in the module-global cache: a graceful service
    shutdown drains the pool, then calls this so no fd outlives the
    server (the satellite "no leaked O_APPEND fds" guarantee).
    """
    for store in _WORKER_STORES.values():
        try:
            store.close()
        except OSError:
            pass  # a close-time flush failure must not mask shutdown
    _WORKER_STORES.clear()
    for pool in _WORKER_PROBE_POOLS.values():
        if pool is not None:
            pool.shutdown(wait=True)
    _WORKER_PROBE_POOLS.clear()


class InstancePool:
    """A long-lived executor for whole-instance reduction tasks.

    PR 9's scheduler built a ``ProcessPoolExecutor`` per corpus run and
    tore it down at the end — the right lifecycle for a one-shot CLI,
    and exactly the wrong one for a service that field jobs all day:
    spawn-imports cost hundreds of milliseconds per worker, and the
    per-process store/probe-pool caches (:data:`_WORKER_STORES`) only
    pay off if workers survive across jobs.  ``InstancePool`` owns the
    executor for the owner's lifetime instead: created lazily on first
    submit, reused for every job, drained once at shutdown.

    ``backend="process"`` is the production configuration (spawn-safe,
    GIL-free, per-worker warm caches).  ``backend="thread"`` runs
    :func:`run_instance_task` in-process — byte-identical results, no
    spawn latency — which tests and latency-focused benches use;
    shutdown then also closes the parent-side worker caches the thread
    workers populated.
    """

    def __init__(self, max_workers: int, backend: str = "process"):
        if backend not in ("process", "thread"):
            raise ValueError(
                f"unknown instance-pool backend {backend!r}; "
                "expected 'process' or 'thread'"
            )
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.backend = backend
        self._executor = None

    @property
    def executor(self):
        if self._executor is None:
            if self.backend == "process":
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=multiprocessing.get_context("spawn"),
                )
            else:
                from concurrent.futures import ThreadPoolExecutor

                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="instance-pool",
                )
        return self._executor

    def submit(self, spec: InstanceTaskSpec):
        """Submit one task recipe; returns its ``Future``."""
        return self.executor.submit(run_instance_task, spec)

    def shutdown(self, wait: bool = True) -> None:
        """Drain and release the executor (idempotent).

        Process workers close their cached fds by exiting; a thread
        backend cleans the caches it left in *this* process.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None
        if self.backend == "thread":
            close_worker_caches()

    def __enter__(self) -> "InstancePool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(wait=True)


# ----------------------------------------------------------------------
# Parent side: planning
# ----------------------------------------------------------------------


@dataclass
class _Task:
    """Parent-side task record: spec ingredients + scheduling state."""

    index: int
    serial_base: int
    benchmark_id: str
    decompiler: str
    scenario: str
    app_seed: int
    units: float
    total_bytes: int
    total_classes: int
    app_path: Optional[str] = None
    #: Retained only for in-memory corpora (inline runs, error
    #: fallbacks); manifest-planned tasks leave these None so the
    #: parent never holds 1000 applications.
    benchmark: Optional[Benchmark] = None
    instance: Optional[BuggyInstance] = None


def _cost_units(num_classes: int, items: Optional[int]) -> float:
    """Predicted relative cost of an instance.

    Item count is the honest driver (probes, progression size); when
    unknown, classes^1.5 approximates it (items grow superlinearly in
    classes for our generator's shapes).
    """
    if items:
        return float(items)
    return float(num_classes) ** 1.5


def _plan_in_memory(
    benchmarks: Iterable[Benchmark], config: ExperimentConfig
) -> List[_Task]:
    from repro.bytecode.metrics import application_size_bytes

    tasks: List[_Task] = []
    serial = 0
    for benchmark in benchmarks:
        for instance in benchmark.instances:
            stats = benchmark.stats or {}
            tasks.append(
                _Task(
                    index=len(tasks),
                    serial_base=serial,
                    benchmark_id=benchmark.benchmark_id,
                    decompiler=instance.decompiler,
                    scenario=getattr(instance, "scenario", "reduction"),
                    app_seed=benchmark.seed,
                    units=_cost_units(
                        len(benchmark.app.classes), stats.get("items")
                    ),
                    total_bytes=stats.get("bytes")
                    or application_size_bytes(benchmark.app),
                    total_classes=len(benchmark.app.classes),
                    app_path=benchmark.app_path,
                    benchmark=benchmark,
                    instance=instance,
                )
            )
            serial += len(config.strategies)
    return tasks


def _plan_from_manifest(
    corpus_path: str,
    config: ExperimentConfig,
    include_debloat: bool = False,
) -> List[_Task]:
    """Plan a persisted corpus from its manifest alone — no app ever
    touches parent memory (the O(corpus)-free path for 1000 apps)."""
    manifest = load_manifest(corpus_path)
    tasks: List[_Task] = []
    serial = 0
    for entry in manifest["benchmarks"]:
        instances = list(entry["instances"])
        if include_debloat:
            from repro.workloads.debloat import DEBLOAT_DECOMPILER

            instances.append(
                {"decompiler": DEBLOAT_DECOMPILER, "scenario": "debloat"}
            )
        for inst in instances:
            tasks.append(
                _Task(
                    index=len(tasks),
                    serial_base=serial,
                    benchmark_id=entry["benchmark_id"],
                    decompiler=inst["decompiler"],
                    scenario=inst.get("scenario", "reduction"),
                    app_seed=entry["seed"],
                    units=_cost_units(entry["classes"], entry.get("items")),
                    total_bytes=entry["bytes"],
                    total_classes=entry["classes"],
                    app_path=os.path.join(corpus_path, entry["app_file"]),
                )
            )
            serial += len(config.strategies)
    return tasks


def load_cost_hints(results_path: str) -> Dict[Tuple[str, str], float]:
    """Per-instance wall-cost hints from a prior run's results JSONL.

    Sums ``real_seconds`` over an instance's strategy rows — the
    scheduler dispatches whole instances, so the instance total is the
    unit that matters.  Torn/foreign lines are skipped (the file may
    still be streaming).
    """
    hints: Dict[Tuple[str, str], float] = {}
    with open(results_path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            try:
                key = (record["benchmark_id"], record["decompiler"])
                seconds = float(record.get("real_seconds", 0.0))
            except (KeyError, TypeError, ValueError):
                continue
            hints[key] = hints.get(key, 0.0) + seconds
    return hints


# ----------------------------------------------------------------------
# Parent side: commit
# ----------------------------------------------------------------------


def _fallback_error_outcome(
    task: _Task, strategy: str, error: BaseException
) -> InstanceOutcome:
    """The keep-going error outcome for a relayed worker failure.

    With in-memory corpora this is exactly
    :func:`~repro.harness.experiments.error_outcome`; manifest-planned
    tasks rebuild the same record from manifest stats (the manifest's
    ``bytes`` *is* ``len(serialize_application(app))``), so the two
    paths stay byte-identical.
    """
    if task.benchmark is not None and task.instance is not None:
        return error_outcome(task.benchmark, task.instance, strategy, error)
    get_metrics().counter("runner.failures").inc()
    return InstanceOutcome(
        benchmark_id=task.benchmark_id,
        decompiler=task.decompiler,
        strategy=strategy,
        scenario=task.scenario,
        total_bytes=task.total_bytes,
        total_classes=task.total_classes,
        final_bytes=task.total_bytes,
        final_classes=task.total_classes,
        predicate_calls=0,
        real_seconds=0.0,
        simulated_seconds=0.0,
        status="error",
        error=f"{type(error).__name__}: {error}",
    )


class _Committer:
    """Serial-order commit of worker results into parent state."""

    def __init__(
        self,
        config: ExperimentConfig,
        progress: Optional[Callable[[str], None]],
        on_outcome: Optional[Callable[[InstanceOutcome], None]],
        collect: bool,
    ) -> None:
        self.config = config
        self.progress = progress
        self.on_outcome = on_outcome
        self.collect = collect
        self.outcomes: List[InstanceOutcome] = []
        self.count = 0
        self._tracer = get_tracer()
        self._metrics = get_metrics()

    def emit(self, outcome: InstanceOutcome) -> None:
        self.count += 1
        if self.collect:
            self.outcomes.append(outcome)
        if self.on_outcome is not None:
            self.on_outcome(outcome)
        if self.progress is not None:
            self.progress(progress_line(outcome))

    def commit(self, task: _Task, result: InstanceTaskResult) -> None:
        """Fold one worker shipment in, exactly as ``jobs=1`` would."""
        offset = 0.0
        if self._tracer.enabled and result.epoch_unix:
            offset = result.epoch_unix - self._tracer.epoch_unix
        by_index = {
            i: sr for i, sr in enumerate(result.strategies)
        }
        for i, strategy in enumerate(self.config.strategies):
            shipped = by_index.get(i)
            error = result.error if shipped is None else shipped.error
            if shipped is not None:
                if self._tracer.enabled:
                    for event in shipped.events:
                        self._tracer.ingest(event, time_offset=offset)
                if shipped.metrics:
                    self._metrics.merge_snapshot(shipped.metrics)
            if error is not None:
                if not self.config.keep_going:
                    raise error
                self.emit(_fallback_error_outcome(task, strategy, error))
                continue
            if shipped is None or shipped.outcome is None:
                # A worker never ships a half-empty result unless the
                # instance-level error above consumed it; defensive.
                missing = RuntimeError(
                    f"worker shipped no result for {task.benchmark_id}/"
                    f"{task.decompiler}/{strategy}"
                )
                if not self.config.keep_going:
                    raise missing
                self.emit(_fallback_error_outcome(task, strategy, missing))
                continue
            self.emit(shipped.outcome)


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------


def run_scheduled_corpus_experiment(
    benchmarks: Optional[Iterable[Benchmark]] = None,
    config: Optional[ExperimentConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = 1,
    store=None,
    store_spec: Optional[StoreSpec] = None,
    corpus_path: Optional[str] = None,
    include_debloat: bool = False,
    on_outcome: Optional[Callable[[InstanceOutcome], None]] = None,
    collect: bool = True,
    cost_hints: Optional[Dict[Tuple[str, str], float]] = None,
) -> Union[List[InstanceOutcome], int]:
    """Run the corpus through the process-parallel instance scheduler.

    Args:
        benchmarks: an in-memory corpus (any iterable — consumed once).
        config: shared strategy knobs; ``config.worker_budget`` (when
            set) clamps ``jobs`` and sizes worker probe pools so total
            live workers stay under budget.
        progress: per-instance status-line callback, in serial order.
        jobs: worker *processes* (None/0: one per CPU; 1 runs inline —
            same enumeration, no pool).
        store: a live predicate store, used by inline runs.
        store_spec: the picklable store recipe worker processes open;
            required to share a store at ``jobs != 1`` (a live handle
            cannot cross a spawn).  The parent touches the store first
            so the on-disk layout exists before workers race to it.
        corpus_path: a persisted corpus directory (from
            :func:`repro.workloads.corpus.save_corpus`) — planned from
            its manifest alone, apps streamed into workers by path;
            mutually exclusive with ``benchmarks``.
        include_debloat: with ``corpus_path``, add one coverage-based
            debloating instance per benchmark.
        on_outcome: streaming consumer called per outcome in serial
            order (pair with ``collect=False`` for O(1)-memory runs).
        collect: return the outcome list (default) or, when False, just
            the outcome count.
        cost_hints: ``{(benchmark_id, decompiler): seconds}`` from
            :func:`load_cost_hints` — prior-run telemetry sharpening
            the longest-job-first order.

    Returns outcomes in serial order — byte-identical (minus
    ``real_seconds``) to ``run_corpus_experiment(..., jobs=1)`` — or
    the count when ``collect=False``.
    """
    config = config or ExperimentConfig()
    if (benchmarks is None) == (corpus_path is None):
        raise ValueError("pass exactly one of benchmarks / corpus_path")
    if corpus_path is not None:
        tasks = _plan_from_manifest(
            corpus_path, config, include_debloat=include_debloat
        )
    else:
        tasks = _plan_in_memory(benchmarks, config)

    jobs = resolve_jobs(jobs)
    budget = (
        WorkerBudget(config.worker_budget)
        if config.worker_budget is not None
        else None
    )
    if budget is not None:
        jobs = budget.corpus_jobs(jobs)

    committer = _Committer(config, progress, on_outcome, collect)
    if jobs == 1:
        _run_inline(tasks, config, store, store_spec, committer)
    else:
        _run_pooled(
            tasks, config, jobs, budget, store, store_spec, committer,
            cost_hints or {},
        )
    return committer.outcomes if collect else committer.count


def _run_inline(
    tasks: List[_Task],
    config: ExperimentConfig,
    store,
    store_spec: Optional[StoreSpec],
    committer: _Committer,
) -> None:
    """The ``jobs=1`` degenerate case: same enumeration, no processes.

    Mirrors ``run_corpus_experiment``'s serial loop (shared probe pool,
    no per-task trace contexts), with the scheduler's extras: manifest
    tasks materialize on demand and drop after use, outcomes stream.
    """
    opened = None
    if store is None and store_spec is not None:
        store = opened = store_spec.open()
    probes = probe_pool(config, max_workers=probe_cap_for(config, 1))
    try:
        for task in tasks:
            if task.benchmark is not None:
                benchmark, instance = task.benchmark, task.instance
            else:
                benchmark, instance = _materialize(_spec_of(task, config))
            for strategy in config.strategies:
                try:
                    outcome = run_instance(
                        benchmark, instance, strategy, config, store,
                        probe_executor=probes,
                    )
                except Exception as exc:  # noqa: BLE001 — degraded below
                    if not config.keep_going:
                        raise
                    outcome = error_outcome(
                        benchmark, instance, strategy, exc
                    )
                committer.emit(outcome)
    finally:
        if probes is not None:
            probes.shutdown(wait=True)
        if opened is not None:
            opened.close()


def _spec_of(
    task: _Task,
    config: ExperimentConfig,
    store_spec: Optional[StoreSpec] = None,
    probe_workers: Optional[int] = None,
    ctx: Optional[Dict[str, Any]] = None,
) -> InstanceTaskSpec:
    app_bytes = None
    if task.app_path is None:
        from repro.bytecode.serializer import serialize_application

        app_bytes = serialize_application(task.benchmark.app)
    return InstanceTaskSpec(
        benchmark_id=task.benchmark_id,
        decompiler=task.decompiler,
        scenario=task.scenario,
        strategies=tuple(config.strategies),
        serial_base=task.serial_base,
        app_seed=task.app_seed,
        config=config,
        app_bytes=app_bytes,
        app_path=task.app_path,
        store=store_spec,
        probe_workers=probe_workers,
        ctx=ctx,
    )


def _run_pooled(
    tasks: List[_Task],
    config: ExperimentConfig,
    jobs: int,
    budget: Optional[WorkerBudget],
    store,
    store_spec: Optional[StoreSpec],
    committer: _Committer,
    cost_hints: Dict[Tuple[str, str], float],
) -> None:
    if store is not None and store_spec is None:
        raise ValueError(
            "a live store cannot cross process workers; pass store_spec "
            "(the picklable recipe) to share a store at jobs != 1"
        )
    if store_spec is not None and store is None:
        # Materialize the on-disk layout before workers race to open it.
        store_spec.open().close()

    probe_workers = None
    if budget is not None and config.speculate > 1:
        probe_workers = budget.probe_pool_cap(jobs, shared=False)

    tracer = get_tracer()
    ctx = (
        tracer.current_context().to_dict() if tracer.enabled else None
    )

    # -- adaptive longest-job-first state --------------------------------
    # Predicted seconds = prior-run hint when available, else cost
    # units × the per-scenario EWMA scale (seconds per unit) learned
    # from completed tasks this run.  Scale updates re-rank the pending
    # set because the argmax scan below re-reads predictions live.
    scales: Dict[str, float] = {}

    def predicted(task: _Task) -> float:
        hint = cost_hints.get((task.benchmark_id, task.decompiler))
        if hint is not None:
            return hint
        return task.units * scales.get(task.scenario, 1.0)

    def observe(task: _Task, wall_seconds: float) -> None:
        if task.units <= 0 or wall_seconds <= 0:
            return
        sample = wall_seconds / task.units
        prior = scales.get(task.scenario)
        scales[task.scenario] = (
            sample if prior is None else 0.7 * prior + 0.3 * sample
        )

    pending = list(tasks)
    inflight: Dict[Any, _Task] = {}
    buffered: Dict[int, Tuple[_Task, InstanceTaskResult]] = {}
    next_commit = 0

    with InstancePool(max_workers=jobs, backend="process") as pool:
        while pending or inflight:
            while pending and len(inflight) < jobs:
                # Longest predicted job first (live argmax: estimates
                # sharpen as observations arrive).
                best = max(range(len(pending)),
                           key=lambda i: predicted(pending[i]))
                task = pending.pop(best)
                spec = _spec_of(
                    task, config, store_spec=store_spec,
                    probe_workers=probe_workers, ctx=ctx,
                )
                inflight[pool.submit(spec)] = task
            done, _ = wait(set(inflight), return_when=FIRST_COMPLETED)
            for future in done:
                task = inflight.pop(future)
                result = future.result()
                observe(task, result.wall_seconds)
                buffered[task.index] = (task, result)
            while next_commit in buffered:
                task, result = buffered.pop(next_commit)
                committer.commit(task, result)
                next_commit += 1

"""Speculative k-ary prefix search for GBR's inner binary search.

The shortest-satisfying-prefix search in :mod:`repro.reduction.gbr` is
an interval-shrinking loop over a *threshold* predicate: the prefix
unions of a progression are nested and every one of them is valid
(INV-PRO), so the monotone predicate ``P`` is true exactly on the
prefixes at or above some minimal index ``r``.  A sequential binary
search probes one midpoint per round; when a worker pool is idle that
leaves hardware on the table — the paper's predicate is a ~33-second
decompile+compile cycle, and k probes of it can run concurrently.

:func:`speculative_interval_search` evaluates ``k`` interior candidates
per round (:func:`candidate_midpoints`) as one batch
(:meth:`~repro.reduction.predicate.InstrumentedPredicate.evaluate_batch`)
and **commits the outcomes in ascending candidate order**: a candidate
tightens the interval only while it still lies strictly inside the
current ``(low, high)``.  Determinism argument: because ``P`` is a
threshold predicate on the prefix chain, every committed outcome is
consistent with the same threshold ``r``, any interval-tightening
sequence preserves the invariant "``P(prefix(low))`` false,
``P(prefix(high))`` true", and the loop only stops at ``high - low <=
1`` — so the returned ``high`` equals ``r``, the exact index the
sequential search returns.  The learned-set trajectory, and therefore
the whole reduction trace and final solution, is byte-identical
(differential-tested in ``tests/parallel/test_speculate.py``).

Cost accounting is honest: every speculative probe is a physical
predicate call that hits the budget/cache/store as usual, but
``simulated_seconds`` charges max-of-batch per round (the batch runs
concurrently).  ``speculate.rounds`` / ``speculate.probes_useful`` /
``speculate.probes_wasted`` expose the tradeoff; for ``k = 1`` the
candidate formula degenerates to the binary-search midpoint exactly,
so the speculative loop issues the same probe sequence as the
sequential one.

Budgets: honest per-attempt budget charging is order-dependent — a
wasted speculative probe can spend the call that a sequential run would
have used on a useful one, so *partial* (budget-exhausted) results
could diverge.  GBR therefore refuses to speculate when a limiting
:class:`~repro.resilience.budget.Budget` sits in the predicate chain
(``speculate.budget_serialized`` counts the downgrade); see DESIGN.md
§8.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Hashable, List

from repro.observability import get_metrics, get_tracer, probe_scope

__all__ = [
    "candidate_midpoints",
    "speculative_interval_search",
    "speculative_shortest_prefix",
    "speculation_allowed",
]

VarName = Hashable


def candidate_midpoints(low: int, high: int, width: int) -> List[int]:
    """Up to ``width`` distinct candidates strictly inside ``(low, high)``.

    The ``i``-th candidate is ``low + (i * (high - low)) // (width + 1)``
    — equal partition points of the open interval.  For ``width == 1``
    this is exactly the binary-search midpoint ``(low + high) // 2``.
    """
    if width < 1:
        raise ValueError(f"speculation width must be >= 1, got {width}")
    span = high - low
    seen = set()
    mids: List[int] = []
    for i in range(1, width + 1):
        mid = low + (i * span) // (width + 1)
        if low < mid < high and mid not in seen:
            seen.add(mid)
            mids.append(mid)
    if not mids and span > 1:
        mids.append((low + high) // 2)
    return mids


def speculative_interval_search(
    predicate,
    progression,
    low: int,
    high: int,
    width: int,
    executor,
    round_start: int = 0,
) -> int:
    """Shrink ``(low, high)`` to ``high - low <= 1`` via k-ary rounds.

    ``round_start`` numbers the first round in the probe provenance
    ledger (the fused head search passes 1, its own batch being 0).

    Preconditions (the caller's binary-search invariant):
    ``P(prefix_union(low))`` is false (or ``low == 0``, known failing)
    and ``P(prefix_union(high))`` is true.  Returns the final ``high`` —
    the same minimal satisfying index the sequential search finds.

    ``predicate`` must expose ``evaluate_batch`` (an
    :class:`~repro.reduction.predicate.InstrumentedPredicate`);
    ``executor`` is a live ``concurrent.futures`` pool.
    """
    metrics = get_metrics()
    probes = metrics.counter("gbr.probes")
    probes_cached = metrics.counter("gbr.probes_cached")
    rounds = metrics.counter("speculate.rounds")
    useful = metrics.counter("speculate.probes_useful")
    wasted = metrics.counter("speculate.probes_wasted")
    tracer = get_tracer()
    round_no = round_start
    while high - low > 1:
        mids = candidate_midpoints(low, high, width)
        rounds.inc()
        unions = [progression.prefix_union(mid) for mid in mids]
        probes.inc(len(mids))
        cached = sum(
            1 for union in unions if predicate.peek(union) is not None
        )
        if cached:
            probes_cached.inc(cached)
        with tracer.span(
            "speculate.round", low=low, high=high, candidates=len(mids)
        ):
            with probe_scope(round=round_no):
                outcomes = predicate.evaluate_batch(
                    unions, executor=executor
                )
        round_no += 1
        for mid, outcome in zip(mids, outcomes):
            # Ascending commit order: a candidate that fell outside the
            # already-tightened interval is wasted speculation (its
            # outcome is implied by a committed one).
            if low < mid < high:
                if outcome:
                    high = mid
                else:
                    low = mid
                useful.inc()
            else:
                wasted.inc()
    return high


def speculative_shortest_prefix(
    predicate,
    progression,
    width: int,
    executor,
):
    """Fused loop-head check + prefix search, one batch per round.

    GBR's sequential main loop issues three probes serially before the
    interval even starts shrinking: the loop-head check ``P(D_0)``, the
    monotonicity check on the full union, and the first midpoint.  This
    variant rides all three on the first speculative batch, so a
    width-``k`` iteration costs ``~log_{k+1}(n)`` predicate rounds
    instead of ``2 + log2(n)``.

    Returns ``None`` when ``P(D_0)`` holds (the main loop terminates),
    else the minimal satisfying prefix index.  Determinism: outcomes are
    committed in the exact order the sequential loop would have issued
    them — ``D_0`` first (a true outcome discards everything else as
    wasted speculation), the full union second (a false outcome raises
    the same non-monotonicity error), interior candidates in ascending
    order last — so the returned index, and therefore the learned-set
    trajectory, is byte-identical to the sequential run.

    Raises :class:`~repro.reduction.problem.ReductionError` when the
    full union fails ``P`` (the sequential search's monotonicity check).
    """
    from repro.reduction.problem import ReductionError

    metrics = get_metrics()
    probes = metrics.counter("gbr.probes")
    probes_cached = metrics.counter("gbr.probes_cached")
    rounds = metrics.counter("speculate.rounds")
    useful = metrics.counter("speculate.probes_useful")
    wasted = metrics.counter("speculate.probes_wasted")
    tracer = get_tracer()
    low = 0
    high = len(progression) - 1
    with tracer.span(
        "gbr.prefix_search", entries=len(progression), width=width
    ) as sp:
        mids = candidate_midpoints(low, high, width) if high - low > 1 else []
        batch = [progression.first]
        if high > 0:
            batch.append(progression.prefix_union(high))
        batch.extend(progression.prefix_union(mid) for mid in mids)
        rounds.inc()
        # The head check is the main loop's own probe, not a search
        # probe — ``gbr.probes`` counts the others, as sequentially.
        probes.inc(len(batch) - 1)
        cached = sum(
            1 for union in batch[1:] if predicate.peek(union) is not None
        )
        if cached:
            probes_cached.inc(cached)
        with tracer.span(
            "speculate.round", low=low, high=high, candidates=len(batch)
        ):
            with probe_scope(round=0):
                outcomes = predicate.evaluate_batch(
                    batch, executor=executor
                )
        if outcomes[0]:
            # P(D_0) holds: the sequential loop would have stopped
            # before probing anything else this iteration.
            wasted.inc(len(batch) - 1)
            sp.set_attr("prefix_index", 0)
            return None
        if high == 0 or not outcomes[1]:
            raise ReductionError(
                "the whole search space no longer satisfies P; "
                "the predicate is not monotone on valid sub-inputs"
            )
        for mid, outcome in zip(mids, outcomes[2:]):
            if low < mid < high:
                if outcome:
                    high = mid
                else:
                    low = mid
                useful.inc()
            else:
                wasted.inc()
        high = speculative_interval_search(
            predicate, progression, low, high, width, executor,
            round_start=1,
        )
        sp.set_attr("prefix_index", high)
    return high


def speculation_allowed(predicate) -> bool:
    """Can this predicate be probed speculatively without changing results?

    Requires batch support and — the determinism contract — **no
    limiting budget** in the wrapper chain: budgets charge per physical
    attempt, so speculative (partially wasted) probing would move the
    exhaustion point and change which anytime partial result a budgeted
    run returns.  An unlimited :class:`~repro.resilience.budget.Budget`
    (the chaos harness always installs one) never exhausts, so it does
    not serialize.
    """
    if not hasattr(predicate, "evaluate_batch"):
        return False
    from repro.resilience.predicate import budget_of

    budget = budget_of(predicate)
    if budget is not None and budget.limited:
        get_metrics().counter("speculate.budget_serialized").inc()
        return False
    return True

"""A persistent, append-only predicate cache (JSONL on disk).

The paper's wall-clock is dominated by predicate invocations — one
decompile+compile cycle averages ~33 s — and the outcome of a predicate
on a kept-item set is a pure function of (oracle, kept items).  So the
single highest-leverage cache in the system is one that *persists*
those outcomes across processes: a repeat run of the same instance
against a warm store costs zero fresh predicate calls.

Key scheme (two-level, collision-resistant):

- **fingerprint** — a stable identifier of the oracle: which program,
  which decompiler, and at which granularity the predicate operates
  (the harness hashes the serialized application bytes; see
  ``repro.harness.experiments``).  Entries under different fingerprints
  never mix, so one store file can serve a whole corpus.
- **key** — SHA-256 over the sorted, *length-prefixed* ``repr()``
  renderings of the kept items.  Canonical: independent of set
  iteration order and of the item objects' identity, so any process
  that reaches the same kept-item set hits the same entry.  The length
  prefix makes the encoding injective over rendering lists (a naive
  separator-join let an item containing the separator collide with a
  pair of items), and ``repr`` — unlike ``str`` — distinguishes items
  of different types that happen to print alike (``1`` vs ``"1"``, or
  two item dataclasses sharing a bracket rendering).

File format: one JSON object per line, ``{"f": fingerprint, "k": key,
"v": outcome}``.  Append-only, so concurrent writers on POSIX never
corrupt earlier entries; a torn final line (killed process, full disk)
is tolerated on load and overwritten by later appends.  Within one
process the store is thread-safe (one lock around the memory index and
the file descriptor).

Multi-process appends: each record is written as **one** ``os.write``
on an ``O_APPEND`` file descriptor.  POSIX makes an ``O_APPEND`` write
atomic with respect to the file offset, so concurrent appenders —
several ``jlreduce`` processes sharing one store file, or the process
probe backend's parents — interleave whole lines, never fragments.
The old buffered text handle could flush one logical line as *two* OS
writes (when the line straddled the buffer boundary), letting another
process's record land mid-line and tear both; torn-line tolerance only
forgives a torn *final* line, so interior tears silently dropped
outcomes.  ``tests/parallel/test_store.py`` hammers this with real
concurrent appender processes.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Tuple

__all__ = ["PredicateStore", "fingerprint_of"]

VarName = Hashable

def fingerprint_of(*parts: str) -> str:
    """A stable oracle fingerprint from arbitrary string parts.

    Parts are length-prefixed, so no choice of part contents can make
    two different part lists hash alike.
    """
    digest = hashlib.sha256()
    for part in parts:
        encoded = part.encode("utf-8")
        digest.update(str(len(encoded)).encode("ascii"))
        digest.update(b":")
        digest.update(encoded)
    return digest.hexdigest()


class PredicateStore:
    """On-disk predicate outcomes, keyed by (fingerprint, sub-input).

    Usage::

        store = PredicateStore("outcomes.jsonl")
        predicate = InstrumentedPredicate(
            raw, store=store, fingerprint=fp
        )
        ...
        store.close()

    The constructor loads every well-formed line of an existing file
    (malformed lines — e.g. a truncated final line from a killed writer
    — are skipped and counted in :attr:`corrupt_lines`), then reopens
    the file for appending.  :meth:`record` writes through immediately,
    one flushed line per new outcome.
    """

    def __init__(self, path) -> None:
        self._path = os.fspath(path)
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[str, str], bool] = {}
        self.corrupt_lines = 0
        self._needs_newline = False
        self._load()
        # An O_APPEND descriptor written with single os.write calls:
        # every record lands as one atomic append, so concurrent
        # multi-process appenders can never tear a line (a buffered
        # text handle may split one line across two OS writes).
        self._fd = os.open(
            self._path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        if self._needs_newline:
            # The file ends mid-line (torn write): start appends on a
            # fresh line so the next record isn't corrupted too.
            os.write(self._fd, b"\n")

    @staticmethod
    def key_of(sub_input: Iterable[VarName]) -> str:
        """Canonical hash of a kept-item set (order-independent).

        Each item's ``repr`` is length-prefixed before hashing, so the
        encoding is injective over the sorted rendering list: an item
        whose rendering contains a would-be separator can never alias a
        different set, and distinct items never share an entry unless
        their ``repr``\\ s are truly identical.
        """
        parts = sorted(repr(v) for v in sub_input)
        rendered = "".join(f"{len(part)}:{part}" for part in parts)
        return hashlib.sha256(rendered.encode("utf-8")).hexdigest()

    # -- lookup / record -----------------------------------------------------

    def lookup(
        self, fingerprint: str, sub_input: FrozenSet[VarName]
    ) -> Optional[bool]:
        """The stored outcome for this oracle + sub-input, or None."""
        return self._entries.get((fingerprint, self.key_of(sub_input)))

    def record(
        self, fingerprint: str, sub_input: FrozenSet[VarName], outcome: bool
    ) -> None:
        """Persist an outcome (idempotent; last write wins on conflict).

        The record is appended as a single ``os.write`` on the
        ``O_APPEND`` descriptor — atomic against concurrent appenders
        in other processes, and unbuffered so a killed process loses at
        most the record it was writing.
        """
        key = (fingerprint, self.key_of(sub_input))
        line = json.dumps(
            {"f": fingerprint, "k": key[1], "v": bool(outcome)}
        )
        payload = (line + "\n").encode("utf-8")
        with self._lock:
            if self._entries.get(key) == bool(outcome):
                return
            self._entries[key] = bool(outcome)
            os.write(self._fd, payload)

    # -- lifecycle -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def path(self) -> str:
        return self._path

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "PredicateStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _load(self) -> None:
        try:
            handle = open(self._path, "r", encoding="utf-8")
        except FileNotFoundError:
            return
        with handle:
            for line in handle:
                self._needs_newline = not line.endswith("\n")
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    fingerprint = entry["f"]
                    key = entry["k"]
                    outcome = bool(entry["v"])
                except (json.JSONDecodeError, KeyError, TypeError):
                    self.corrupt_lines += 1
                    continue
                self._entries[(fingerprint, key)] = outcome

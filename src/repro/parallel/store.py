"""Persistent predicate outcomes: a sharded, content-addressed cache tier.

The paper's wall-clock is dominated by predicate invocations — one
decompile+compile cycle averages ~33 s — and the outcome of a predicate
on a kept-item set is a pure function of (oracle, kept items).  So the
single highest-leverage cache in the system is one that *persists*
those outcomes across processes: a repeat run of the same instance
against a warm store costs zero fresh predicate calls.

Key scheme (two-level, collision-resistant):

- **fingerprint** — a stable identifier of the oracle: which program,
  which decompiler, at which granularity the predicate operates, and
  (optionally) which *tenant* owns the run (the harness hashes the
  serialized application bytes; see ``repro.harness.experiments``).
  Entries under different fingerprints never mix, so one store can
  serve a whole corpus — and many tenants — at once.
- **key** — SHA-256 over the sorted, *length-prefixed* ``repr()``
  renderings of the kept items.  Canonical: independent of set
  iteration order and of the item objects' identity, so any process
  that reaches the same kept-item set hits the same entry.  The length
  prefix makes the encoding injective over rendering lists (a naive
  separator-join let an item containing the separator collide with a
  pair of items), and ``repr`` — unlike ``str`` — distinguishes items
  of different types that happen to print alike (``1`` vs ``"1"``, or
  two item dataclasses sharing a bracket rendering).

Three backends share one duck-typed interface (``lookup`` / ``record``
/ ``close`` / context manager):

- :class:`PredicateStore` — the v1 single-file JSONL store.  Eagerly
  scans its whole history at startup; fine for a laptop, kept for
  compatibility and as the migration source.
- :class:`ShardedPredicateStore` — the cache tier.  A directory of N
  JSONL shard files selected by key hash, loaded *lazily* (startup
  cost is proportional to the shards a run actually touches, not to
  total history), with an LRU, size-bounded in-memory index (whole
  shards are evicted and re-faulted from disk, so eviction never loses
  outcomes) and threshold-triggered compaction (a shard whose dead or
  duplicate lines exceed a ratio is rewritten in place, guarded by an
  exclusive lock file).  Opening a v1 single-file store migrates it
  into shards automatically (the original is kept as ``<path>.v1``).
- :class:`SqlitePredicateStore` — the same interface over a sqlite
  database in WAL mode, for deployments that prefer a real database
  file to a shard directory.  Also migrates a v1 JSONL file in place.

File format (JSONL backends): one JSON object per line, ``{"f":
fingerprint, "k": key, "v": outcome}``.  Append-only, so concurrent
writers on POSIX never corrupt earlier entries; a torn final line
(killed process, full disk) is tolerated on load and repaired by the
next opener.  Two processes that open the same torn shard
simultaneously may *both* append the repair newline — the resulting
blank line is tolerated on load too.  Within one process every store
is thread-safe (one lock around the memory index and the descriptors).

Multi-process appends: each record is written as **one** ``os.write``
on an ``O_APPEND`` file descriptor.  POSIX makes an ``O_APPEND`` write
atomic with respect to the file offset, so concurrent appenders —
several ``jlreduce`` processes sharing one store, or the process probe
backend's parents — interleave whole lines, never fragments.  When two
writers disagree on an outcome (a flaky oracle, a chaos run), the
*last line wins* on the next load: every record of a key is appended,
and the loader keeps the latest.  ``tests/parallel/test_store.py``
hammers both properties with real concurrent appender processes.

Telemetry: every backend feeds the active metrics registry —
``store.lookups`` / ``store.hits`` / ``store.misses`` /
``store.records`` / ``store.evictions`` / ``store.compactions`` /
``store.shard_loads`` / ``store.lines_scanned`` /
``store.migrated_entries`` — so warm-store hit rates land in JSONL
traces, ``jlreduce trace summarize``, and ``jlreduce metrics export``.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from collections import OrderedDict
from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Tuple

from repro.observability import get_metrics

__all__ = [
    "DEFAULT_SHARDS",
    "PredicateStore",
    "ShardedPredicateStore",
    "SqlitePredicateStore",
    "fingerprint_of",
    "key_of",
    "open_store",
]

VarName = Hashable

#: Default shard-file count for :class:`ShardedPredicateStore`.  Small
#: enough that a cold corpus run touches most shards anyway, large
#: enough that one shard holds ~1/16 of history (startup scans shrink
#: proportionally) and concurrent appenders rarely contend.
DEFAULT_SHARDS = 16

#: A compaction lock file older than this is presumed leaked by a
#: killed process and is broken.
_LOCK_GRACE_SECONDS = 300.0

_SQLITE_MAGIC = b"SQLite format 3\x00"


def fingerprint_of(*parts: str) -> str:
    """A stable oracle fingerprint from arbitrary string parts.

    Parts are length-prefixed, so no choice of part contents can make
    two different part lists hash alike.
    """
    digest = hashlib.sha256()
    for part in parts:
        encoded = part.encode("utf-8")
        digest.update(str(len(encoded)).encode("ascii"))
        digest.update(b":")
        digest.update(encoded)
    return digest.hexdigest()


def key_of(sub_input: Iterable[VarName]) -> str:
    """Canonical hash of a kept-item set (order-independent).

    Each item's ``repr`` is length-prefixed before hashing, so the
    encoding is injective over the sorted rendering list: an item
    whose rendering contains a would-be separator can never alias a
    different set, and distinct items never share an entry unless
    their ``repr``\\ s are truly identical.
    """
    parts = sorted(repr(v) for v in sub_input)
    rendered = "".join(f"{len(part)}:{part}" for part in parts)
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


def _parse_line(stripped: str) -> Optional[Tuple[str, str, bool]]:
    """One JSONL record as ``(fingerprint, key, outcome)``, or None."""
    try:
        entry = json.loads(stripped)
        return entry["f"], entry["k"], bool(entry["v"])
    except (json.JSONDecodeError, KeyError, TypeError):
        return None


def _drain_v1_file(path: str) -> Tuple[Dict[Tuple[str, str], bool], int]:
    """Read a v1 single-file store and move it aside to ``<path>.v1``.

    Returns the surviving entries (last write wins) and the count of
    malformed lines.  Raises :class:`ValueError` when the file is a
    sqlite database — that is a different backend, not a v1 store.
    """
    with open(path, "rb") as handle:
        head = handle.read(len(_SQLITE_MAGIC))
    if head.startswith(_SQLITE_MAGIC):
        raise ValueError(
            f"{path} is a sqlite predicate store; open it with "
            "backend='sqlite' (or open_store(path, backend='sqlite'))"
        )
    entries: Dict[Tuple[str, str], bool] = {}
    corrupt = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            parsed = _parse_line(stripped)
            if parsed is None:
                corrupt += 1
                continue
            fingerprint, key, outcome = parsed
            entries[(fingerprint, key)] = outcome
    os.replace(path, path + ".v1")
    return entries, corrupt


class PredicateStore:
    """The v1 store: one append-only JSONL file, eagerly loaded.

    Usage::

        with PredicateStore("outcomes.jsonl") as store:
            predicate = InstrumentedPredicate(
                raw, store=store, fingerprint=fp
            )
            ...

    The constructor loads every well-formed line of an existing file
    (malformed lines — e.g. a truncated final line from a killed writer
    — are skipped and counted in :attr:`corrupt_lines`), then reopens
    the file for appending.  :meth:`record` writes through immediately,
    one ``os.write`` per new outcome.

    This is the compatibility/migration backend: startup scans *all*
    history, the in-memory index is unbounded, and there is no
    compaction.  Services and corpus runs should use
    :class:`ShardedPredicateStore` (see :func:`open_store`).
    """

    def __init__(self, path) -> None:
        self._path = os.fspath(path)
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[str, str], bool] = {}
        self.corrupt_lines = 0
        self.hits = 0
        self.misses = 0
        self._needs_newline = False
        self._load()
        # An O_APPEND descriptor written with single os.write calls:
        # every record lands as one atomic append, so concurrent
        # multi-process appenders can never tear a line (a buffered
        # text handle may split one line across two OS writes).
        self._fd: Optional[int] = os.open(
            self._path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        if self._needs_newline:
            # The file ends mid-line (torn write): start appends on a
            # fresh line so the next record isn't corrupted too.
            os.write(self._fd, b"\n")

    key_of = staticmethod(key_of)

    # -- lookup / record -----------------------------------------------------

    def lookup(
        self, fingerprint: str, sub_input: FrozenSet[VarName]
    ) -> Optional[bool]:
        """The stored outcome for this oracle + sub-input, or None.

        Taken under the store lock: :meth:`record` mutates the entry
        dict concurrently (instance-runner threads, probe commits), and
        an unlocked read is only safe by CPython-GIL accident — not on
        free-threaded builds.
        """
        key = (fingerprint, key_of(sub_input))
        metrics = get_metrics()
        metrics.counter("store.lookups").inc()
        with self._lock:
            outcome = self._entries.get(key)
        if outcome is None:
            self.misses += 1
            metrics.counter("store.misses").inc()
        else:
            self.hits += 1
            metrics.counter("store.hits").inc()
        return outcome

    def record(
        self, fingerprint: str, sub_input: FrozenSet[VarName], outcome: bool
    ) -> None:
        """Persist an outcome (idempotent; last write wins on conflict).

        The record is appended as a single ``os.write`` on the
        ``O_APPEND`` descriptor — atomic against concurrent appenders
        in other processes, and unbuffered so a killed process loses at
        most the record it was writing.

        Raises:
            ValueError: the store has been :meth:`close`\\ d.
        """
        key = (fingerprint, key_of(sub_input))
        line = json.dumps(
            {"f": fingerprint, "k": key[1], "v": bool(outcome)}
        )
        payload = (line + "\n").encode("utf-8")
        with self._lock:
            if self._fd is None:
                raise ValueError("store is closed")
            if self._entries.get(key) == bool(outcome):
                return
            self._entries[key] = bool(outcome)
            os.write(self._fd, payload)
            get_metrics().counter("store.records").inc()

    # -- lifecycle -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def path(self) -> str:
        return self._path

    @property
    def closed(self) -> bool:
        return self._fd is None

    def close(self) -> None:
        """Release the append descriptor.  Idempotent.

        A closed store still answers :meth:`lookup` from memory (the v1
        index is fully resident), but :meth:`record` raises a clear
        :class:`ValueError` instead of handing ``None`` to ``os.write``.
        """
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "PredicateStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _load(self) -> None:
        try:
            handle = open(self._path, "r", encoding="utf-8")
        except FileNotFoundError:
            return
        with handle:
            for line in handle:
                self._needs_newline = not line.endswith("\n")
                line = line.strip()
                if not line:
                    continue
                parsed = _parse_line(line)
                if parsed is None:
                    self.corrupt_lines += 1
                    continue
                fingerprint, key, outcome = parsed
                self._entries[(fingerprint, key)] = outcome


class ShardedPredicateStore:
    """The cache tier: N lazily-loaded JSONL shards under one directory.

    Layout::

        <path>/
            store.json        # manifest: {"version": 2, "shards": N}
            shard-000.jsonl   # records whose key hashes to shard 0
            ...

    A record lands in shard ``int(key[:8], 16) % shards`` — content
    addressing over the canonical sub-input hash, so every process
    (and every tenant, via the fingerprint namespace) agrees on the
    placement without coordination.

    Lazy loading: opening the store reads only the manifest.  A shard
    is scanned on the first lookup or record that touches it, so
    startup cost is proportional to the shards a run actually uses —
    not to total history (the v1 store's O(history) startup scan is
    exactly what this tier removes; ``benchmarks/bench_store.py``
    gates the ratio).

    Eviction (``max_entries``): the in-memory index is an LRU over
    *whole shards*.  When resident entries exceed the bound, the
    least-recently-used shards are dropped (and their append
    descriptors closed).  Disk is never touched by eviction — a later
    lookup simply re-faults the shard — so the bound trades memory for
    re-scan cost, never for correctness.

    Compaction: a shard whose scan finds more than ``compact_ratio``
    dead lines (duplicates superseded by last-write-wins, malformed
    lines) across at least ``compact_min_lines`` lines is rewritten in
    place — live entries only — before this process starts appending.
    The rewrite is guarded by an exclusive ``.lock`` file (stale locks
    older than five minutes are broken) and lands via atomic
    ``os.replace``.  An append raced in by *another* process between
    the scan and the replace can be lost; that is safe for a cache of
    pure-function outcomes — the worst case is one redundant fresh
    probe later, never a wrong answer.

    Migration: pointing this class at an existing v1 single-file store
    ingests every surviving entry into shards and keeps the original
    as ``<path>.v1``.

    Concurrent creation: all openers should agree on ``shards``; once a
    manifest exists it wins over the constructor argument.  If two
    creators race with different counts, the loser's records may land
    in a shard the winner's layout never consults — which degrades to
    a cache miss and one redundant probe, never a wrong outcome.
    """

    MANIFEST = "store.json"

    def __init__(
        self,
        path,
        shards: int = DEFAULT_SHARDS,
        max_entries: Optional[int] = None,
        compact_ratio: float = 0.5,
        compact_min_lines: int = 256,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if not 0.0 < compact_ratio <= 1.0:
            raise ValueError(
                f"compact_ratio must be in (0, 1], got {compact_ratio}"
            )
        self._path = os.fspath(path)
        self._lock = threading.RLock()
        self._max_entries = max_entries
        self._compact_ratio = compact_ratio
        self._compact_min_lines = compact_min_lines
        self._closed = False
        self.corrupt_lines = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.compactions = 0
        self.shard_loads = 0
        self.migrated_entries = 0
        pending: Optional[Dict[Tuple[str, str], bool]] = None
        if os.path.isfile(self._path):
            pending, corrupt = _drain_v1_file(self._path)
            self.corrupt_lines += corrupt
        self._shards = self._init_layout(shards)
        #: Resident shard indexes, LRU-ordered (oldest first).
        self._resident: "OrderedDict[int, Dict[Tuple[str, str], bool]]" = (
            OrderedDict()
        )
        self._resident_entries = 0
        self._fds: Dict[int, int] = {}
        self._needs_newline: Dict[int, bool] = {}
        if pending is not None:
            self._ingest(pending)

    key_of = staticmethod(key_of)

    # -- lookup / record -----------------------------------------------------

    def lookup(
        self, fingerprint: str, sub_input: FrozenSet[VarName]
    ) -> Optional[bool]:
        """The stored outcome for this oracle + sub-input, or None.

        Faults the key's shard into memory on first touch (one scan of
        that shard file, counted in ``store.shard_loads``).

        Raises:
            ValueError: the store has been :meth:`close`\\ d.
        """
        key = key_of(sub_input)
        metrics = get_metrics()
        metrics.counter("store.lookups").inc()
        with self._lock:
            if self._closed:
                raise ValueError("store is closed")
            entries = self._shard_entries(self._shard_of_key(key))
            outcome = entries.get((fingerprint, key))
        if outcome is None:
            self.misses += 1
            metrics.counter("store.misses").inc()
        else:
            self.hits += 1
            metrics.counter("store.hits").inc()
        return outcome

    def record(
        self, fingerprint: str, sub_input: FrozenSet[VarName], outcome: bool
    ) -> None:
        """Persist an outcome (idempotent; last write wins on conflict).

        One ``os.write`` on the shard's ``O_APPEND`` descriptor —
        atomic against concurrent appenders in other processes sharing
        the shard, and unbuffered so a killed process loses at most the
        record it was writing.

        Raises:
            ValueError: the store has been :meth:`close`\\ d.
        """
        key = key_of(sub_input)
        outcome = bool(outcome)
        payload = (
            json.dumps({"f": fingerprint, "k": key, "v": outcome}) + "\n"
        ).encode("utf-8")
        with self._lock:
            if self._closed:
                raise ValueError("store is closed")
            shard = self._shard_of_key(key)
            entries = self._shard_entries(shard)
            if entries.get((fingerprint, key)) == outcome:
                return
            if (fingerprint, key) not in entries:
                self._resident_entries += 1
            entries[(fingerprint, key)] = outcome
            os.write(self._fd_of(shard), payload)
            get_metrics().counter("store.records").inc()
            self._evict(exclude=shard)

    # -- lifecycle -----------------------------------------------------------

    def __len__(self) -> int:
        """Resident (in-memory) entries — *not* total history on disk."""
        return self._resident_entries

    @property
    def path(self) -> str:
        return self._path

    @property
    def shards(self) -> int:
        return self._shards

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release every shard descriptor.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for fd in self._fds.values():
                os.close(fd)
            self._fds.clear()

    def __enter__(self) -> "ShardedPredicateStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _init_layout(self, shards: int) -> int:
        """Create or adopt the store directory; return the shard count."""
        os.makedirs(self._path, exist_ok=True)
        manifest_path = os.path.join(self._path, self.MANIFEST)
        adopted = self._read_manifest(manifest_path)
        if adopted is not None:
            return adopted
        payload = json.dumps(
            {"version": 2, "backend": "jsonl", "shards": shards}
        )
        # Unique tmp per process so concurrent creators never tear each
        # other's manifest; os.replace is atomic, last writer wins, and
        # re-reading converges every opener on the winner.
        tmp = f"{manifest_path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        os.replace(tmp, manifest_path)
        adopted = self._read_manifest(manifest_path)
        return adopted if adopted is not None else shards

    def _read_manifest(self, manifest_path: str) -> Optional[int]:
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            count = int(manifest["shards"])
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"corrupt store manifest {manifest_path}: {exc}"
            ) from exc
        if count < 1:
            raise ValueError(
                f"corrupt store manifest {manifest_path}: shards={count}"
            )
        return count

    def _shard_of_key(self, key: str) -> int:
        return int(key[:8], 16) % self._shards

    def _shard_path(self, shard: int) -> str:
        return os.path.join(self._path, f"shard-{shard:03d}.jsonl")

    def _shard_entries(self, shard: int) -> Dict[Tuple[str, str], bool]:
        """The shard's entry dict, faulting it from disk if needed."""
        entries = self._resident.get(shard)
        if entries is not None:
            self._resident.move_to_end(shard)
            return entries
        entries, lines_total, corrupt, needs_newline = self._scan_shard(shard)
        self.corrupt_lines += corrupt
        self.shard_loads += 1
        metrics = get_metrics()
        metrics.counter("store.shard_loads").inc()
        if lines_total:
            metrics.counter("store.lines_scanned").inc(lines_total)
        dead = lines_total - len(entries)
        if (
            lines_total >= self._compact_min_lines
            and dead / lines_total >= self._compact_ratio
        ):
            if self._compact_shard(shard, entries):
                needs_newline = False
        self._resident[shard] = entries
        self._resident_entries += len(entries)
        self._needs_newline[shard] = needs_newline
        self._evict(exclude=shard)
        return entries

    def _scan_shard(
        self, shard: int
    ) -> Tuple[Dict[Tuple[str, str], bool], int, int, bool]:
        """Parse one shard file: (entries, lines, corrupt, torn-tail)."""
        entries: Dict[Tuple[str, str], bool] = {}
        lines_total = 0
        corrupt = 0
        needs_newline = False
        try:
            handle = open(self._shard_path(shard), "r", encoding="utf-8")
        except FileNotFoundError:
            return entries, 0, 0, False
        with handle:
            for line in handle:
                needs_newline = not line.endswith("\n")
                stripped = line.strip()
                if not stripped:
                    # A doubly-repaired torn tail (two openers each
                    # appended the fix-up newline) reads as a blank
                    # line; tolerated, not counted as history.
                    continue
                lines_total += 1
                parsed = _parse_line(stripped)
                if parsed is None:
                    corrupt += 1
                    continue
                fingerprint, key, outcome = parsed
                entries[(fingerprint, key)] = outcome
        return entries, lines_total, corrupt, needs_newline

    def _fd_of(self, shard: int) -> int:
        """The shard's lazily-opened ``O_APPEND`` descriptor."""
        fd = self._fds.get(shard)
        if fd is None:
            fd = os.open(
                self._shard_path(shard),
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            self._fds[shard] = fd
            if self._needs_newline.pop(shard, False):
                os.write(fd, b"\n")
        return fd

    def _evict(self, exclude: int) -> None:
        """Drop LRU shards until resident entries fit ``max_entries``.

        The just-touched shard (``exclude``) is always kept — evicting
        the shard a lookup is mid-flight on would thrash — so a single
        shard larger than the bound stays resident whole.
        """
        if self._max_entries is None:
            return
        while (
            self._resident_entries > self._max_entries
            and len(self._resident) > 1
        ):
            victim = next(iter(self._resident))
            if victim == exclude:
                break
            dropped = self._resident.pop(victim)
            self._resident_entries -= len(dropped)
            self.evictions += len(dropped)
            get_metrics().counter("store.evictions").inc(len(dropped))
            fd = self._fds.pop(victim, None)
            if fd is not None:
                os.close(fd)
            self._needs_newline.pop(victim, None)

    def _compact_shard(
        self, shard: int, entries: Dict[Tuple[str, str], bool]
    ) -> bool:
        """Rewrite a shard to live entries only.  True when it ran.

        Cooperative exclusion via an ``O_EXCL`` lock file: losers skip
        compaction (the shard stays readable either way).  A lock older
        than the grace period is presumed leaked by a killed compactor
        and is broken.
        """
        shard_path = self._shard_path(shard)
        lock_path = shard_path + ".lock"
        lock_fd = self._take_lock(lock_path)
        if lock_fd is None:
            return False
        try:
            stale = self._fds.pop(shard, None)
            if stale is not None:
                os.close(stale)
            tmp = f"{shard_path}.compact.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:
                for (fingerprint, key), outcome in entries.items():
                    handle.write(
                        json.dumps(
                            {"f": fingerprint, "k": key, "v": outcome}
                        )
                        + "\n"
                    )
            os.replace(tmp, shard_path)
            self.compactions += 1
            get_metrics().counter("store.compactions").inc()
            return True
        finally:
            os.close(lock_fd)
            try:
                os.unlink(lock_path)
            except OSError:
                pass

    @staticmethod
    def _take_lock(lock_path: str) -> Optional[int]:
        flags = os.O_CREAT | os.O_EXCL | os.O_WRONLY
        try:
            return os.open(lock_path, flags)
        except FileExistsError:
            pass
        try:
            age = time.time() - os.path.getmtime(lock_path)
        except OSError:
            return None
        if age < _LOCK_GRACE_SECONDS:
            return None
        try:
            os.unlink(lock_path)
            return os.open(lock_path, flags)
        except (FileExistsError, OSError):
            return None

    def _ingest(self, entries: Dict[Tuple[str, str], bool]) -> None:
        """Append migrated v1 entries into their shards (batched)."""
        grouped: Dict[int, list] = {}
        for (fingerprint, key), outcome in entries.items():
            grouped.setdefault(self._shard_of_key(key), []).append(
                json.dumps({"f": fingerprint, "k": key, "v": outcome})
            )
        for shard, lines in grouped.items():
            payload = ("\n".join(lines) + "\n").encode("utf-8")
            os.write(self._fd_of(shard), payload)
        self.migrated_entries = len(entries)
        if entries:
            get_metrics().counter("store.migrated_entries").inc(len(entries))


class SqlitePredicateStore:
    """The cache tier over a sqlite database (WAL mode).

    Same interface and key scheme as the JSONL backends; conflict
    resolution is ``INSERT OR REPLACE`` (last write wins, like the
    JSONL loaders), multi-process safety comes from sqlite's own WAL
    locking, and a bounded in-memory LRU (``max_entries``) keeps hot
    lookups off the database.  Pointing it at a v1 single-file JSONL
    store migrates the entries and keeps the original as ``<path>.v1``.
    """

    def __init__(self, path, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self._path = os.fspath(path)
        self._lock = threading.Lock()
        self._max_entries = max_entries
        self._cache: "OrderedDict[Tuple[str, str], bool]" = OrderedDict()
        self.corrupt_lines = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.migrated_entries = 0
        pending: Optional[Dict[Tuple[str, str], bool]] = None
        if os.path.isfile(self._path) and os.path.getsize(self._path):
            with open(self._path, "rb") as handle:
                head = handle.read(len(_SQLITE_MAGIC))
            if not head.startswith(_SQLITE_MAGIC):
                pending, corrupt = _drain_v1_file(self._path)
                self.corrupt_lines += corrupt
        try:
            self._conn: Optional[sqlite3.Connection] = sqlite3.connect(
                self._path, check_same_thread=False
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS outcomes ("
                "f TEXT NOT NULL, k TEXT NOT NULL, v INTEGER NOT NULL, "
                "PRIMARY KEY (f, k)) WITHOUT ROWID"
            )
            self._conn.commit()
        except sqlite3.Error as exc:
            raise OSError(
                f"cannot open sqlite store {self._path}: {exc}"
            ) from exc
        if pending:
            self._conn.executemany(
                "INSERT OR REPLACE INTO outcomes (f, k, v) VALUES (?, ?, ?)",
                [
                    (fingerprint, key, int(outcome))
                    for (fingerprint, key), outcome in pending.items()
                ],
            )
            self._conn.commit()
            self.migrated_entries = len(pending)
            get_metrics().counter("store.migrated_entries").inc(len(pending))

    key_of = staticmethod(key_of)

    # -- lookup / record -----------------------------------------------------

    def lookup(
        self, fingerprint: str, sub_input: FrozenSet[VarName]
    ) -> Optional[bool]:
        """The stored outcome for this oracle + sub-input, or None.

        Raises:
            ValueError: the store has been :meth:`close`\\ d.
        """
        key = (fingerprint, key_of(sub_input))
        metrics = get_metrics()
        metrics.counter("store.lookups").inc()
        with self._lock:
            if self._conn is None:
                raise ValueError("store is closed")
            outcome = self._cache.get(key)
            if outcome is not None:
                self._cache.move_to_end(key)
            else:
                row = self._conn.execute(
                    "SELECT v FROM outcomes WHERE f = ? AND k = ?", key
                ).fetchone()
                if row is not None:
                    outcome = bool(row[0])
                    self._cache_put(key, outcome)
        if outcome is None:
            self.misses += 1
            metrics.counter("store.misses").inc()
        else:
            self.hits += 1
            metrics.counter("store.hits").inc()
        return outcome

    def record(
        self, fingerprint: str, sub_input: FrozenSet[VarName], outcome: bool
    ) -> None:
        """Persist an outcome (idempotent; last write wins on conflict).

        Raises:
            ValueError: the store has been :meth:`close`\\ d.
        """
        key = (fingerprint, key_of(sub_input))
        outcome = bool(outcome)
        with self._lock:
            if self._conn is None:
                raise ValueError("store is closed")
            if self._cache.get(key) == outcome:
                self._cache.move_to_end(key)
                return
            self._conn.execute(
                "INSERT OR REPLACE INTO outcomes (f, k, v) VALUES (?, ?, ?)",
                (key[0], key[1], int(outcome)),
            )
            self._conn.commit()
            self._cache_put(key, outcome)
            get_metrics().counter("store.records").inc()

    def _cache_put(self, key: Tuple[str, str], outcome: bool) -> None:
        self._cache[key] = outcome
        self._cache.move_to_end(key)
        if self._max_entries is None:
            return
        while len(self._cache) > self._max_entries:
            self._cache.popitem(last=False)
            self.evictions += 1
            get_metrics().counter("store.evictions").inc()

    # -- lifecycle -----------------------------------------------------------

    def __len__(self) -> int:
        """Total entries in the database (0 once closed)."""
        with self._lock:
            if self._conn is None:
                return 0
            row = self._conn.execute(
                "SELECT COUNT(*) FROM outcomes"
            ).fetchone()
            return int(row[0])

    @property
    def path(self) -> str:
        return self._path

    @property
    def closed(self) -> bool:
        return self._conn is None

    def close(self) -> None:
        """Commit and release the connection.  Idempotent."""
        with self._lock:
            if self._conn is None:
                return
            self._conn.commit()
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "SqlitePredicateStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def open_store(
    path,
    backend: str = "sharded",
    shards: int = DEFAULT_SHARDS,
    max_entries: Optional[int] = None,
):
    """Open a predicate store of the requested backend.

    - ``"sharded"`` (default) — :class:`ShardedPredicateStore`; a v1
      single file at ``path`` is migrated into shards automatically.
    - ``"sqlite"`` — :class:`SqlitePredicateStore`; likewise migrates a
      v1 file.
    - ``"v1"`` — the single-file :class:`PredicateStore` (``shards`` /
      ``max_entries`` do not apply).

    All backends share the ``lookup`` / ``record`` / ``close`` /
    context-manager interface that
    :class:`~repro.reduction.predicate.InstrumentedPredicate` and the
    harness duck-type against.
    """
    if backend == "sharded":
        return ShardedPredicateStore(
            path, shards=shards, max_entries=max_entries
        )
    if backend == "sqlite":
        return SqlitePredicateStore(path, max_entries=max_entries)
    if backend == "v1":
        return PredicateStore(path)
    raise ValueError(
        f"unknown store backend {backend!r} "
        "(expected 'sharded', 'sqlite', or 'v1')"
    )

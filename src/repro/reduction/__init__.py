"""The paper's core contribution: logic-guided input reduction.

- :mod:`repro.reduction.problem` — the Input Reduction Problem
  (Definition 4.1): a variable universe ``I``, a black-box predicate
  ``P``, and a CNF validity constraint ``R``.
- :mod:`repro.reduction.gbr` — Generalized Binary Reduction
  (Algorithm 1), the paper's new algorithm.
- :mod:`repro.reduction.progression` — the PROGRESSION subroutine.
- :mod:`repro.reduction.binary` — J-Reduce's binary reduction over lists
  of sets (the graph-based baseline).
- :mod:`repro.reduction.lossy` — the two lossy encodings of non-graph
  clauses into graph constraints (Section 4.3).
- :mod:`repro.reduction.ddmin` — Zeller & Hildebrandt's ddmin baseline.
- :mod:`repro.reduction.hdd` — hierarchical delta debugging (Misherghi
  & Su), the syntax-tree baseline of the paper's introduction.
- :mod:`repro.reduction.reference` — an exact exponential reducer for
  small instances (optimality-gap testing).
- :mod:`repro.reduction.ordering` — variable-order heuristics for MSA_<.
- :mod:`repro.reduction.predicate` — instrumented predicate wrappers
  (caching, counting, reduction-over-time timelines).
"""

from repro.reduction.problem import (
    BudgetExhausted,
    ReductionError,
    ReductionProblem,
    ReductionResult,
)
from repro.reduction.predicate import InstrumentedPredicate, best_so_far
from repro.reduction.ordering import declaration_order, dependency_order
from repro.reduction.progression import Progression, build_progression
from repro.reduction.gbr import generalized_binary_reduction
from repro.reduction.binary import binary_reduction, binary_reduce_sets
from repro.reduction.lossy import LossyVariant, lossy_graph_encoding, lossy_reduce
from repro.reduction.ddmin import ddmin
from repro.reduction.hdd import ItemTree, bytecode_item_tree, hdd
from repro.reduction.reference import optimal_solution
from repro.reduction.strategies import STRATEGIES, run_strategy

__all__ = [
    "ReductionProblem",
    "ReductionResult",
    "ReductionError",
    "BudgetExhausted",
    "InstrumentedPredicate",
    "best_so_far",
    "declaration_order",
    "dependency_order",
    "Progression",
    "build_progression",
    "generalized_binary_reduction",
    "binary_reduction",
    "binary_reduce_sets",
    "LossyVariant",
    "lossy_graph_encoding",
    "lossy_reduce",
    "ddmin",
    "hdd",
    "ItemTree",
    "bytecode_item_tree",
    "optimal_solution",
    "STRATEGIES",
    "run_strategy",
]

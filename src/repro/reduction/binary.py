"""Binary reduction over lists of sets (the J-Reduce baseline).

Kalhauge & Palsberg's FSE 2019 algorithm works on a list of *closures*
(each a valid sub-input) with a predicate that is monotone on unions of
closures.  The loop: while the required base does not show the bug,
binary-search the shortest list prefix whose union (plus the base) does,
move that prefix's last closure into the base, and keep searching among
the earlier closures only.  GBR (Algorithm 1) generalizes exactly this
structure from closure lists to progressions.

:func:`binary_reduce_sets` is the generic engine; :func:`binary_reduction`
is the full J-Reduce pipeline (steps 2-5 of the recipe quoted in
Section 2) over a dependency graph.
"""

from __future__ import annotations

from typing import (
    Callable,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Sequence,
)

from repro.graphs.closure import all_item_closures, closure_of
from repro.graphs.digraph import DiGraph
from repro.observability import get_tracer, scoped_metrics
from repro.reduction.predicate import InstrumentedPredicate, best_so_far
from repro.reduction.problem import (
    BudgetExhausted,
    ReductionError,
    ReductionResult,
    Stopwatch,
)

__all__ = ["binary_reduce_sets", "binary_reduction"]

VarName = Hashable
Predicate = Callable[[FrozenSet[VarName]], bool]


def binary_reduce_sets(
    deltas: Sequence[FrozenSet[VarName]],
    predicate: Predicate,
    base: FrozenSet[VarName] = frozenset(),
) -> FrozenSet[VarName]:
    """Reduce a list of sets under a union-monotone predicate.

    Returns a union ``base | deltas[i1] | ... | deltas[ik]`` satisfying
    the predicate, minimizing greedily via binary searches (O(k log n)
    predicate calls for k learned sets).

    Raises ReductionError when not even ``base`` plus every delta
    satisfies the predicate.
    """
    base = frozenset(base)
    remaining: List[FrozenSet[VarName]] = [frozenset(d) for d in deltas]

    while not predicate(base):
        if not remaining:
            raise ReductionError(
                "binary reduction exhausted its deltas without "
                "satisfying the predicate"
            )
        prefixes = _prefix_unions(base, remaining)
        if not predicate(prefixes[-1]):
            raise ReductionError(
                "the union of all deltas does not satisfy the predicate; "
                "it is not monotone on unions"
            )
        low, high = -1, len(remaining) - 1  # low failing, high satisfying
        while high - low > 1:
            mid = (low + high) // 2
            if predicate(prefixes[mid]):
                high = mid
            else:
                low = mid
        base = base | remaining[high]
        remaining = remaining[:high]

    return base


def _prefix_unions(
    base: FrozenSet[VarName], deltas: Sequence[FrozenSet[VarName]]
) -> List[FrozenSet[VarName]]:
    unions: List[FrozenSet[VarName]] = []
    running = base
    for delta in deltas:
        running = running | delta
        unions.append(running)
    return unions


def binary_reduction(
    graph: DiGraph,
    predicate: Predicate,
    required: Iterable[VarName] = (),
    strategy: str = "binary-reduction",
) -> ReductionResult:
    """The J-Reduce pipeline over a dependency graph.

    1. compute the closure of each node (via the SCC condensation),
    2. form the list of closures, sorted by size,
    3. run binary reduction on the list,
    4. return the union of the reduced list.

    ``required`` names the items the tool always needs (their closure is
    the starting base).
    """
    watch = Stopwatch()
    instrumented = (
        predicate
        if isinstance(predicate, InstrumentedPredicate)
        else InstrumentedPredicate(predicate)
    )
    calls_before = instrumented.calls
    timeline_before = len(instrumented.timeline)
    with scoped_metrics() as run_metrics, get_tracer().span(
        "binary.run", nodes=len(graph.nodes), strategy=strategy
    ) as sp:
        closures = all_item_closures(graph)
        base = closure_of(graph, required)
        deltas = [closure.members for closure in closures]
        status = "complete"
        try:
            solution = binary_reduce_sets(deltas, instrumented, base)
        except BudgetExhausted:
            # Anytime contract: the predicate budget is spent, so return
            # the smallest satisfying union seen so far (the full input
            # — base plus every closure — when nothing satisfying was
            # ever queried).
            status = "partial"
            solution = best_so_far(
                instrumented, frozenset(base).union(*deltas) if deltas else base
            )
        sp.set_attr("solution_size", len(solution))
        sp.set_attr("status", status)
    return ReductionResult(
        solution=solution,
        strategy=strategy,
        predicate_calls=instrumented.calls - calls_before,
        elapsed_seconds=watch.elapsed(),
        timeline=list(instrumented.timeline[timeline_before:]),
        status=status,
        extras={
            "metrics": {
                name: value
                for name, value in run_metrics.counter_values().items()
                if value
            }
        },
    )

"""ddmin — Zeller & Hildebrandt's minimizing delta debugging (baseline).

The classic algorithm knows nothing about validity: it partitions the
input into chunks and tries removing them, treating any "don't know"
outcome (an invalid sub-input) the same as "failure gone".  On inputs
with dense internal dependencies this is exactly why it performs poorly
(Section 1: "ddmin tends to produce disappointing results") — most
sub-inputs are invalid, so most probes are wasted.

The implementation follows the TSE 2002 paper: try removing each chunk
(reduce to complement); on failure, double the granularity; stop when the
granularity exceeds the input size.  The result is 1-minimal *with
respect to the probes made*, i.e. removing any single remaining chunk at
final granularity breaks the failure.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Hashable, List, Sequence

from repro.reduction.problem import BudgetExhausted

__all__ = ["ddmin"]

VarName = Hashable
Predicate = Callable[[FrozenSet[VarName]], bool]


def ddmin(
    items: Sequence[VarName],
    predicate: Predicate,
) -> FrozenSet[VarName]:
    """Minimize ``items`` while the predicate stays true.

    ``predicate(frozenset(...))`` must be true on the full input; it
    should return False for invalid sub-inputs (the "don't know" case).

    Anytime behavior: when a budgeted predicate raises
    :class:`~repro.reduction.problem.BudgetExhausted` mid-probe, the
    current (smallest known failure-preserving) item list is returned
    instead of propagating — every value ``current`` ever takes has
    satisfied the predicate, so it is always a safe answer.
    """
    current: List[VarName] = list(items)
    try:
        if not predicate(frozenset(current)):
            raise ValueError(
                "ddmin requires the predicate to hold on the input"
            )

        granularity = 2
        while len(current) >= 2:
            chunks = _partition(current, granularity)
            reduced = False

            # Try each chunk alone ("reduce to subset").
            for chunk in chunks:
                if predicate(frozenset(chunk)):
                    current = chunk
                    granularity = 2
                    reduced = True
                    break

            if not reduced:
                # Try each complement ("reduce to complement").
                for i in range(len(chunks)):
                    complement = [
                        item
                        for j, chunk in enumerate(chunks)
                        for item in chunk
                        if j != i
                    ]
                    if complement and predicate(frozenset(complement)):
                        current = complement
                        granularity = max(granularity - 1, 2)
                        reduced = True
                        break

            if not reduced:
                if granularity >= len(current):
                    break
                granularity = min(granularity * 2, len(current))
    except BudgetExhausted:
        pass  # anytime: fall through with the best-so-far list

    return frozenset(current)


def _partition(items: List[VarName], n: int) -> List[List[VarName]]:
    """Split into n nearly-equal contiguous chunks (no empty chunks)."""
    n = min(n, len(items))
    size, extra = divmod(len(items), n)
    chunks: List[List[VarName]] = []
    start = 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks

"""Generalized Binary Reduction (Algorithm 1 of the paper).

GBR solves the Input Reduction Problem approximately in polynomial time.
It maintains:

- the variable order ``<`` (a total order of ``I``),
- the current progression ``D`` (the search space, a list of disjoint
  sets every prefix of which is valid),
- the learned sets ``L`` (each overlaps every bug-preserving valid
  sub-input inside the search space).

Main loop: while ``P(D_0)`` fails, binary-search the shortest prefix
``D_{<=r}`` whose union satisfies ``P``, learn ``D_r``, and rebuild the
progression inside ``D_{<=r}``.  Every iteration learns a set with a new
``<``-smallest element, so there are at most ``|I|`` iterations; each
iteration runs the predicate O(log |D|) times.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Hashable, List, Optional, Sequence

from repro.observability import get_metrics, get_tracer, scoped_metrics
from repro.reduction.ordering import declaration_order, dependency_order
from repro.reduction.predicate import InstrumentedPredicate, best_so_far
from repro.reduction.problem import (
    BudgetExhausted,
    ReductionError,
    ReductionProblem,
    ReductionResult,
    Stopwatch,
)
from repro.reduction.progression import Progression, ProgressionEngine

__all__ = ["generalized_binary_reduction", "GbrTrace"]

VarName = Hashable


class GbrTrace:
    """Optional observer collecting per-iteration facts (for tests/docs)."""

    def __init__(self) -> None:
        self.progressions: List[Progression] = []
        self.learned: List[FrozenSet[VarName]] = []
        self.prefix_indices: List[int] = []

    def on_progression(self, progression: Progression) -> None:
        self.progressions.append(progression)

    def on_learn(self, learned_set: FrozenSet[VarName], r: int) -> None:
        self.learned.append(learned_set)
        self.prefix_indices.append(r)


def generalized_binary_reduction(
    problem: ReductionProblem,
    order: Optional[Sequence[VarName]] = None,
    require_true: FrozenSet[VarName] = frozenset(),
    trace: Optional[GbrTrace] = None,
    max_iterations: Optional[int] = None,
    speculate: int = 1,
    probe_executor=None,
) -> ReductionResult:
    """Run GBR on a reduction problem.

    Args:
        problem: the ``(I, P, R)`` instance.
        order: the total order ``<``; defaults to the dependency order
            derived from the graph constraints (declaration order breaks
            ties).
        require_true: variables every candidate must contain (e.g. the
            ``[M.main()!code]`` entry point).  GBR also works when these
            are expressed as unit clauses in ``R``.
        trace: optional :class:`GbrTrace` observer.
        max_iterations: safety valve; defaults to ``|I| + 1``.
        speculate: probes evaluated concurrently per prefix-search round
            (see :mod:`repro.parallel.speculate`).  1 is the sequential
            binary search; higher widths need ``probe_executor`` and
            leave the result byte-identical — except that a run with a
            *limiting* budget is silently searched sequentially, so its
            anytime partial result stays deterministic
            (``speculate.budget_serialized`` counts this).
        probe_executor: a live ``concurrent.futures`` pool for the
            speculative probes; ignored when ``speculate <= 1``.

    Returns:
        A :class:`ReductionResult` whose ``solution`` satisfies both
        ``P`` and ``R``.
    """
    watch = Stopwatch()
    tracer = get_tracer()
    predicate = _instrument(problem)
    calls_before = predicate.calls
    queries_before = predicate.queries
    timeline_before = len(predicate.timeline)
    constraint = problem.constraint
    if order is None:
        order = dependency_order(constraint, problem.variables)
    else:
        order = list(order)

    universe = problem.universe
    limit = max_iterations if max_iterations is not None else len(universe) + 1

    with scoped_metrics() as run_metrics, tracer.span(
        "gbr.run", variables=len(universe), description=problem.description
    ) as run_span:
        width = 1
        if speculate > 1 and probe_executor is not None:
            # Lazy import: repro.parallel pulls in the corpus runner,
            # which imports the harness, which imports this module.
            from repro.parallel.speculate import speculation_allowed

            if speculation_allowed(predicate):
                width = speculate
        # One engine per run: learned clauses accumulate and the scope
        # only shrinks, so every rebuild reuses the same compiled
        # constraint and solver session.
        engine = ProgressionEngine(constraint, order)
        learned: List[FrozenSet[VarName]] = []
        scope = universe
        progression = engine.build(scope, require_true)
        if trace:
            trace.on_progression(progression)

        iterations = 0
        status = "complete"
        try:
            while True:
                if width > 1:
                    # Fused round: the loop-head check P(D_0) rides the
                    # first speculative batch together with the full-
                    # union check and the first candidates, saving two
                    # serial predicate rounds per iteration.  Commit
                    # order keeps the result byte-identical (see
                    # repro.parallel.speculate).
                    from repro.parallel.speculate import (
                        speculative_shortest_prefix,
                    )

                    r = speculative_shortest_prefix(
                        predicate, progression, width, probe_executor
                    )
                    if r is None:
                        break
                elif predicate(progression.first):
                    break
                else:
                    r = -1  # search inside the iteration span below
                iterations += 1
                if iterations > limit:
                    raise ReductionError(
                        "GBR exceeded its iteration bound; "
                        "is the predicate monotone on valid sub-inputs?"
                    )
                run_metrics.counter("gbr.iterations").inc()
                with tracer.span(
                    "gbr.iteration",
                    iteration=iterations,
                    progression_entries=len(progression),
                ):
                    if r < 0:
                        r = _shortest_satisfying_prefix(
                            predicate, progression
                        )
                    learned_set = progression[r]
                    learned.append(learned_set)
                    engine.learn(learned_set)
                    if trace:
                        trace.on_learn(learned_set, r)
                    scope = progression.prefix_union(r)
                    progression = engine.build(scope, require_true)
                if trace:
                    trace.on_progression(progression)
            solution = progression.first
        except BudgetExhausted:
            # Anytime contract (Figure 8b): the predicate budget is
            # spent, so stop here and return the smallest satisfying
            # sub-input seen so far instead of raising.
            status = "partial"
            solution = best_so_far(predicate, universe)
        run_span.set_attr("iterations", iterations)
        run_span.set_attr("solution_size", len(solution))
        run_span.set_attr("status", status)

    return ReductionResult(
        solution=solution,
        strategy="gbr",
        predicate_calls=predicate.calls - calls_before,
        elapsed_seconds=watch.elapsed(),
        iterations=iterations,
        timeline=list(predicate.timeline[timeline_before:]),
        status=status,
        extras={
            "metrics": _run_metrics(
                run_metrics, predicate, calls_before, queries_before
            )
        },
    )


def _instrument(problem: ReductionProblem) -> InstrumentedPredicate:
    predicate = problem.predicate
    if isinstance(predicate, InstrumentedPredicate):
        return predicate
    return InstrumentedPredicate(predicate)


def _run_metrics(
    run_metrics,
    predicate: InstrumentedPredicate,
    calls_before: int,
    queries_before: int,
) -> dict:
    """Telemetry for ``ReductionResult.extras['metrics']``.

    ``run_metrics`` is this run's scoped registry (see
    :func:`repro.observability.scoped_metrics`), so the counters cover
    exactly this run even when other reductions execute concurrently.
    The predicate hit rate is computed from start-of-run snapshots of
    the wrapper's ``calls``/``queries``, so it is exact even when the
    same wrapper is shared across runs.
    """
    run = {
        name: value
        for name, value in run_metrics.counter_values().items()
        if value
    }
    queries = predicate.queries - queries_before
    calls = predicate.calls - calls_before
    run["predicate.cache_hit_rate"] = (
        round(1.0 - calls / queries, 4) if queries else 0.0
    )
    return run


def _shortest_satisfying_prefix(
    predicate: Callable[[FrozenSet[VarName]], bool],
    progression: Progression,
    width: int = 1,
    executor=None,
) -> int:
    """Binary search for min r >= 1 with ``P(D_{<=r})``.

    Precondition: ``P(D_0)`` is false.  The full union satisfies ``P``
    by the loop invariant; if even it fails, the predicate was not
    monotone (or the progression lost part of the bug), which we report.

    With ``width > 1`` and a live ``executor``, the interval is shrunk
    by the speculative k-ary search instead
    (:func:`repro.parallel.speculate.speculative_interval_search`),
    which returns the identical index.  ``gbr.probes`` counts logical
    probes issued by the search; ``gbr.probes_cached`` counts the subset
    the predicate's memo already held (answered without a fresh call).
    """
    metrics = get_metrics()
    probes = metrics.counter("gbr.probes")
    probes_cached = metrics.counter("gbr.probes_cached")
    peek = getattr(predicate, "peek", None)
    with get_tracer().span(
        "gbr.prefix_search", entries=len(progression), width=width
    ) as sp:
        low = 0  # known failing
        high = len(progression) - 1  # expected satisfying
        if high > 0:
            probes.inc()
            full_union = progression.prefix_union(high)
            if peek is not None and peek(full_union) is not None:
                probes_cached.inc()
        if high == 0 or not predicate(full_union):
            raise ReductionError(
                "the whole search space no longer satisfies P; "
                "the predicate is not monotone on valid sub-inputs"
            )
        if width > 1 and executor is not None:
            from repro.parallel.speculate import speculative_interval_search

            high = speculative_interval_search(
                predicate, progression, low, high, width, executor
            )
        else:
            while high - low > 1:
                mid = (low + high) // 2
                probes.inc()
                union = progression.prefix_union(mid)
                if peek is not None and peek(union) is not None:
                    probes_cached.inc()
                if predicate(union):
                    high = mid
                else:
                    low = mid
        sp.set_attr("prefix_index", high)
    return high

"""Hierarchical Delta Debugging (Misherghi & Su, ICSE 2006) — baseline.

HDD is the paper's Section 1 waypoint between raw ddmin and dependency
models: it exploits the input's *syntax tree* to avoid syntactically
invalid sub-inputs (a method without its class), but knows nothing about
semantic dependencies, so most of its probes on bytecode are still
invalid and read as "failure gone".

The algorithm: walk the tree level by level; at each level run ddmin
over that level's surviving nodes, where removing a node removes its
whole subtree.  The predicate receives the set of kept nodes (items).

:func:`bytecode_item_tree` builds the three-level tree of a bytecode
application: classes, then members/relations/attributes, then code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Hashable, List, Sequence, Set

from repro.reduction.ddmin import ddmin
from repro.reduction.problem import BudgetExhausted

__all__ = ["ItemTree", "hdd", "bytecode_item_tree"]

Node = Hashable
Predicate = Callable[[FrozenSet[Node]], bool]


@dataclass
class ItemTree:
    """A forest: root nodes plus a children map."""

    roots: List[Node]
    children: Dict[Node, List[Node]] = field(default_factory=dict)

    def subtree(self, node: Node) -> Set[Node]:
        """The node and all its descendants."""
        out: Set[Node] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self.children.get(current, ()))
        return out

    def level(self, depth: int) -> List[Node]:
        """All nodes at the given depth (roots are depth 0)."""
        current = list(self.roots)
        for _ in range(depth):
            nxt: List[Node] = []
            for node in current:
                nxt.extend(self.children.get(node, ()))
            current = nxt
        return current

    def max_depth(self) -> int:
        depth = 0
        while self.level(depth + 1):
            depth += 1
        return depth

    def all_nodes(self) -> Set[Node]:
        out: Set[Node] = set()
        for root in self.roots:
            out |= self.subtree(root)
        return out


def hdd(tree: ItemTree, predicate: Predicate) -> FrozenSet[Node]:
    """Hierarchical delta debugging over an item tree.

    ``predicate`` is evaluated on kept-node sets; it must hold on the
    full tree.  Returns the kept set after minimizing every level.

    Anytime behavior: when a budgeted predicate raises
    :class:`~repro.reduction.problem.BudgetExhausted`, the current kept
    set — which satisfied the predicate after every completed level —
    is returned instead of propagating.  (The per-level ddmin calls
    share the contract, so an exhaustion inside a level keeps that
    level's best-so-far and the next level stops immediately.)
    """
    kept: Set[Node] = set(tree.all_nodes())
    try:
        if not predicate(frozenset(kept)):
            raise ValueError(
                "hdd requires the predicate to hold on the input"
            )

        for depth in range(tree.max_depth() + 1):
            level_nodes = [n for n in tree.level(depth) if n in kept]
            if len(level_nodes) < 2:
                continue

            def level_predicate(kept_level: FrozenSet[Node]) -> bool:
                candidate = set(kept)
                for node in level_nodes:
                    if node not in kept_level:
                        candidate -= tree.subtree(node)
                return predicate(frozenset(candidate))

            surviving = ddmin(level_nodes, level_predicate)
            for node in level_nodes:
                if node not in surviving:
                    kept -= tree.subtree(node)
    except BudgetExhausted:
        pass  # anytime: fall through with the best-so-far kept set

    return frozenset(kept)


def bytecode_item_tree(app) -> ItemTree:
    """The syntactic item tree of a bytecode application.

    Level 0: classes and interfaces.  Level 1: their relations, fields,
    attributes, methods/constructors/signatures.  Level 2: code items.
    """
    from repro.bytecode.classfile import JAVA_OBJECT
    from repro.bytecode.items import (
        AttributeItem,
        ClassItem,
        CodeItem,
        ConstructorCodeItem,
        ConstructorItem,
        FieldItem,
        ImplementsItem,
        InterfaceItem,
        MethodItem,
        SignatureItem,
        SuperClassItem,
    )

    roots: List[Node] = []
    children: Dict[Node, List[Node]] = {}

    for decl in app.classes:
        if decl.is_interface:
            root: Node = InterfaceItem(decl.name)
        else:
            root = ClassItem(decl.name)
        roots.append(root)
        kids: List[Node] = []
        if not decl.is_interface and decl.superclass != JAVA_OBJECT:
            kids.append(SuperClassItem(decl.name))
        for iface in decl.interfaces:
            kids.append(ImplementsItem(decl.name, iface))
        for attribute in decl.attributes:
            kids.append(AttributeItem(decl.name, attribute.name))
        for fdecl in decl.fields:
            kids.append(FieldItem(decl.name, fdecl.name))
        for method in decl.methods:
            if method.is_constructor:
                member: Node = ConstructorItem(decl.name, method.descriptor)
                if method.code is not None:
                    children[member] = [
                        ConstructorCodeItem(decl.name, method.descriptor)
                    ]
            elif method.is_abstract or decl.is_interface:
                member = SignatureItem(
                    decl.name, method.name, method.descriptor
                )
            else:
                member = MethodItem(decl.name, method.name, method.descriptor)
                if method.code is not None:
                    children[member] = [
                        CodeItem(decl.name, method.name, method.descriptor)
                    ]
            kids.append(member)
        children[root] = kids

    return ItemTree(roots=roots, children=children)

"""Lossy encodings of CNF dependencies into graph constraints (§4.3).

97.5% of the paper's clauses are already graph constraints.  The rest are
of the form ``(a_1 /\\ ... /\\ a_n) => (b_1 \\/ ... \\/ b_m)`` with
``n > 1 or m > 1``.  Any such clause can be *strengthened* to the single
edge ``a_{i'} => b_{j'}`` (for any i', j'), because

    (a_{i'} => b_{j'})  implies  ((/\\ a_i) => (\\/ b_j)).

A solution of the strengthened graph is therefore a valid sub-input of
the original constraints, and binary reduction applies.  The paper
evaluates two variants: pick ``(i'=1, j'=1)`` or pick ``(i'=n, j'=m)``.
Clause literal order is not preserved by set-based CNF, so "first"/"last"
here means the <-smallest/-largest antecedent and consequent under the
reduction's variable order — documented, deterministic, and faithful to
the spirit (two fixed extreme picks).

Edge cases: a clause with no negative literals (a pure disjunction
``b_1 \\/ ... \\/ b_m``) strengthens to *requiring* ``b_{j'}``; a clause
with no positive literals cannot be strengthened into a dependency edge
at all, and :func:`lossy_graph_encoding` rejects it with a
:class:`~repro.reduction.problem.ReductionError` (the type-rule
generators never emit one, but hand-written constraints can).
"""

from __future__ import annotations

import enum
from typing import (
    Callable,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.graphs.digraph import DiGraph
from repro.logic.cnf import CNF
from repro.reduction.binary import binary_reduction
from repro.reduction.ordering import declaration_order
from repro.reduction.predicate import InstrumentedPredicate
from repro.reduction.problem import (
    ReductionError,
    ReductionProblem,
    ReductionResult,
    Stopwatch,
)

__all__ = ["LossyVariant", "lossy_graph_encoding", "lossy_reduce"]

VarName = Hashable


class LossyVariant(enum.Enum):
    """Which antecedent/consequent pair the encoding keeps."""

    FIRST = "first"  # (i' = 1, j' = 1)
    LAST = "last"  # (i' = n, j' = m)


def lossy_graph_encoding(
    constraint: CNF,
    variant: LossyVariant,
    order: Optional[Sequence[VarName]] = None,
) -> Tuple[DiGraph, FrozenSet[VarName]]:
    """Encode a CNF as (dependency graph, required variables).

    Every clause is strengthened to either one edge or one requirement;
    any solution of the result (a closure union containing the required
    variables) satisfies the original CNF.
    """
    if order is None:
        order = sorted(constraint.variables, key=repr)
    rank = {var: i for i, var in enumerate(order)}

    def pick(candidates: Iterable[VarName]) -> VarName:
        key = lambda v: (rank.get(v, len(rank)), repr(v))  # noqa: E731
        if variant is LossyVariant.FIRST:
            return min(candidates, key=key)
        return max(candidates, key=key)

    graph = DiGraph(nodes=constraint.variables)
    required: Set[VarName] = set()
    for clause in constraint.clauses:
        positives = clause.positives
        negatives = clause.negatives
        if not positives:
            # A ReductionError, not a bare ValueError: harness runs
            # treat it as a per-instance domain failure (recorded as an
            # error-marked outcome under --keep-going) instead of an
            # unhandled crash that kills the whole corpus bench.
            raise ReductionError(
                f"clause {clause!r} has no positive literal and cannot be "
                "strengthened into a graph constraint"
            )
        head = pick(positives)
        if negatives:
            tail = pick(negatives)
            graph.add_edge(tail, head)
        else:
            required.add(head)
    return graph, frozenset(required)


def lossy_reduce(
    problem: ReductionProblem,
    variant: LossyVariant,
    order: Optional[Sequence[VarName]] = None,
    require_true: FrozenSet[VarName] = frozenset(),
) -> ReductionResult:
    """Reduce via the lossy encoding + binary reduction (§4.3 pipeline)."""
    watch = Stopwatch()
    if order is None:
        order = declaration_order(problem.variables)
    graph, required = lossy_graph_encoding(problem.constraint, variant, order)
    predicate = (
        problem.predicate
        if isinstance(problem.predicate, InstrumentedPredicate)
        else InstrumentedPredicate(problem.predicate)
    )
    result = binary_reduction(
        graph,
        predicate,
        required=set(required) | set(require_true),
        strategy=f"lossy-{variant.value}",
    )
    result.elapsed_seconds = watch.elapsed()
    return result

"""Variable orders for MSA_< and the progression.

The paper's Section 4.4: "the variable order < (a total order of I) helps
the main loop terminate in polynomial time; it also helps us design MSA_<
that runs in polynomial time", and Theorem 4.5 needs < to be "picked
well" for graph constraints.

Two orders are provided:

- :func:`declaration_order` — the order items appear in the input.  This
  is what the worked example in Section 4.5 uses (``[B]`` is "the
  smallest variable in J \\ D0" because B's items are declared before the
  remaining ones).
- :func:`dependency_order` — dependencies first: variables are sorted by
  the topological order of the graph-constraint condensation, so when the
  MSA picks the smallest variable of a disjunction it prefers variables
  that drag in little.  Ties (and variables in no graph clause) fall back
  to declaration order.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

from repro.graphs.digraph import DiGraph
from repro.graphs.scc import condensation
from repro.logic.cnf import CNF

__all__ = ["declaration_order", "dependency_order", "graph_of_cnf"]

VarName = Hashable


def declaration_order(variables: Sequence[VarName]) -> List[VarName]:
    """The identity order — items as declared in the input."""
    return list(variables)


def graph_of_cnf(cnf: CNF, variables: Sequence[VarName] = ()) -> DiGraph:
    """The dependency graph induced by the CNF's graph constraints.

    Each graph clause ``~a | b`` becomes the edge ``a -> b`` ("a depends
    on b").  Non-graph clauses contribute no edges.
    """
    graph = DiGraph(nodes=variables or cnf.variables)
    for clause in cnf.clauses:
        if clause.is_graph_constraint():
            (src,) = clause.negatives
            (dst,) = clause.positives
            graph.add_edge(src, dst)
    return graph


def dependency_order(
    cnf: CNF, variables: Sequence[VarName]
) -> List[VarName]:
    """Dependencies-first total order derived from the graph constraints.

    Members of the same SCC stay adjacent; SCCs are ordered so that a
    component precedes everything that depends on it.  Within a component
    (and among components at the same depth) the declaration order breaks
    ties, keeping the result stable.
    """
    declared_rank: Dict[VarName, int] = {
        var: i for i, var in enumerate(variables)
    }
    graph = graph_of_cnf(cnf, variables)
    dag, component_of = condensation(graph)

    # Topological order of the condensation with *dependencies last*
    # (edges point at dependencies), so reverse it.
    component_order = dag.topological_order()
    component_order.reverse()

    component_rank = {comp: i for i, comp in enumerate(component_order)}

    def key(var: VarName):
        component = component_of[var]
        return (component_rank[component], declared_rank[var])

    return sorted(variables, key=key)

"""Instrumented black-box predicates.

The paper's evaluation reports predicate-invocation counts (running the
decompiler is the expensive step), wall-clock time, and reduction *over
time* (Figure 8b: "we can stop both algorithms at any point ... and use
the smallest input until that point that preserves the error message").
:class:`InstrumentedPredicate` wraps a raw predicate and records all
three, with memoization so repeated queries on the same sub-input are
counted once — the paper's tools cache runs the same way.

Clocks: the wrapper keeps two.  The *real* clock is host wall time since
construction (or :meth:`reset_clock`).  The *virtual* clock charges
``cost_per_call`` simulated seconds per fresh invocation and nothing
else, so it is a deterministic function of the query sequence —
independent of host speed.  When a virtual cost is configured, the
timeline and :meth:`virtual_now` use only the virtual clock (that is
what the Figure 8b reproductions plot); without one, the timeline falls
back to real time.

Persistence: an optional *store* (see
:class:`repro.parallel.store.PredicateStore`) makes outcomes survive
across processes.  On an in-memory miss the wrapper reads through to the
store; fresh outcomes are written back.  Store hits count as cache hits,
not calls, so a warm store makes repeat runs cost zero fresh predicate
invocations.

Batch backends: :meth:`evaluate_batch` runs one speculative round's
fresh probes on either a thread pool (the wrapped predicate itself, on
pool threads) or — given a ``task_spec`` and a
:class:`~repro.parallel.procpool.ProcessProbePool` — on worker
*processes* that rebuild the chain from the picklable spec.  Either way
the outcomes are committed parent-side in serial index order, so
results, clocks, store writes, and the provenance ledger stay
byte-identical across backends (see DESIGN.md §10).

Telemetry: every query also feeds the active metrics registry
(``predicate.calls`` / ``predicate.queries`` / ``predicate.cache_hits``
/ ``predicate.store_hits`` / ``predicate.store_misses`` counters — the
store itself additionally emits ``store.*`` hit/miss/evict/compaction
counters, see :mod:`repro.parallel.store` — ``predicate.virtual_seconds``
simulated-cost total, ``predicate.latency_seconds`` histogram of
fresh-call latency), and fresh invocations open a ``predicate.call``
span when tracing is enabled.  Every *physical* probe — a fresh call or
a store hit, never a memo hit — additionally lands one entry in the
probe provenance ledger (:mod:`repro.observability.provenance`): cache
status, outcome, both clocks' costs, speculation round/batch position
(from the active :func:`~repro.observability.provenance.probe_scope`),
and per-probe resilience/budget deltas read off the wrapped predicate
chain.  Memo hits stay counter-only; they dominate the hot path and
per-event records would blow the tracing-overhead budget.
"""

from __future__ import annotations

import hashlib
import time
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.observability import (
    current_probe_fields,
    get_metrics,
    get_tracer,
    scoped_metrics,
)

__all__ = ["InstrumentedPredicate", "best_so_far"]

VarName = Hashable
Predicate = Callable[[FrozenSet[VarName]], bool]


_KEY_MASK = 0xFFFFFFFFFFFFFFFF


def _item_digest(item: VarName) -> int:
    """A stable 64-bit digest of one item (sha256 of its repr)."""
    return int.from_bytes(
        hashlib.sha256(repr(item).encode("utf-8")).digest()[:8], "big"
    )


def _probe_key(
    sub_input: FrozenSet[VarName],
    cache: Optional[Dict[VarName, int]] = None,
) -> str:
    """A short stable hash of a probed subset for the provenance ledger.

    Per-item sha256 digests summed mod 2^64 — order-independent,
    deterministic across processes (no ``hash()`` randomization), and
    identical for identical subsets, so ``trace explain`` can prefix-
    match a handle and equal probes in two traces carry equal keys.
    ``cache`` memoizes the per-item digests: probes re-query the same
    items all run long, and the ledger must not blow the ≤5% tracing
    overhead budget on hashing (see ``benchmarks/bench_telemetry.py``).
    """
    total = 0
    if cache is None:
        for item in sub_input:
            total = (total + _item_digest(item)) & _KEY_MASK
    else:
        get = cache.get
        for item in sub_input:
            digest = get(item)
            if digest is None:
                digest = _item_digest(item)
                cache[item] = digest
            total = (total + digest) & _KEY_MASK
    return f"{total:016x}"


def _chain_stats(predicate: Any) -> Dict[str, float]:
    """Resilience/budget counter snapshot along the wrapped chain.

    Walks ``_predicate`` links duck-typing for a resilient layer
    (``attempts``/``retries``/``timeouts``) and a budget
    (``calls``/``seconds``).  Two snapshots bracketing a fresh call give
    the per-probe deltas the ledger records.
    """
    stats: Dict[str, float] = {}
    current = predicate
    for _ in range(8):
        if current is None:
            break
        if "attempts" not in stats and hasattr(current, "attempts"):
            stats["attempts"] = current.attempts
            stats["retries"] = getattr(current, "retries", 0)
            stats["timeouts"] = getattr(current, "timeouts", 0)
        budget = getattr(current, "budget", None)
        if budget is not None and "budget_calls" not in stats:
            stats["budget_calls"] = budget.calls
            stats["budget_seconds"] = budget.seconds
        current = getattr(current, "_predicate", None)
    return stats


def _stat_deltas(
    before: Dict[str, float], after: Dict[str, float]
) -> Dict[str, float]:
    """Per-probe deltas of the chain counters (only keys seen after)."""
    return {key: after[key] - before.get(key, 0) for key in after}


class _NoAttach:
    """Null context manager for untraced batch workers."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NO_ATTACH = _NoAttach()


class InstrumentedPredicate:
    """Counting / caching / timeline wrapper around a predicate.

    Args:
        predicate: the raw black-box predicate.
        cost_per_call: optional simulated seconds added to the *virtual*
            clock per fresh invocation.  The paper's decompile+compile
            cycle averages ~33 s; our simulated decompilers run in
            microseconds, so benchmarks can model the paper's time axis by
            charging a virtual cost without actually sleeping.
        size_of: how to measure a sub-input for the timeline (defaults to
            ``len``; the harness passes serialized-bytes measures).
        store: optional persistent predicate cache, duck-typed with
            ``lookup(fingerprint, sub_input)`` returning ``bool | None``
            and ``record(fingerprint, sub_input, outcome)``.
        fingerprint: stable identifier of the underlying oracle; required
            when ``store`` is given (it namespaces the store entries so
            different oracles never share outcomes).
        task_spec: optional picklable
            :class:`~repro.parallel.procpool.ProbeTaskSpec` describing
            how a worker *process* rebuilds this predicate's chain;
            required for :meth:`evaluate_batch` to accept a
            :class:`~repro.parallel.procpool.ProcessProbePool`.
    """

    def __init__(
        self,
        predicate: Predicate,
        cost_per_call: float = 0.0,
        size_of: Optional[Callable[[FrozenSet[VarName]], int]] = None,
        store=None,
        fingerprint: Optional[str] = None,
        task_spec=None,
    ):
        if store is not None and not fingerprint:
            raise ValueError(
                "a predicate store needs an oracle fingerprint to key by"
            )
        self._predicate = predicate
        self._cost_per_call = cost_per_call
        self._size_of = size_of or len
        self._store = store
        self._fingerprint = fingerprint
        self._task_spec = task_spec
        self._cache: Dict[FrozenSet[VarName], bool] = {}
        self._key_cache: Dict[VarName, int] = {}  # per-item ledger digests
        self.calls = 0  # fresh (uncached) invocations
        self.queries = 0  # all queries, cached included
        self.store_hits = 0  # queries answered by the persistent store
        self.virtual_clock = 0.0
        self.best_size: Optional[int] = None
        self.best_input: Optional[FrozenSet[VarName]] = None
        self.timeline: List[Tuple[float, int]] = []
        self._start = time.perf_counter()

    def __call__(self, sub_input: FrozenSet[VarName]) -> bool:
        sub_input = frozenset(sub_input)
        metrics = get_metrics()
        self.queries += 1
        metrics.counter("predicate.queries").inc()
        cached = self._cache.get(sub_input)
        if cached is not None:
            metrics.counter("predicate.cache_hits").inc()
            return cached
        tracer = get_tracer()
        if self._store is not None:
            stored = self._store.lookup(self._fingerprint, sub_input)
            if stored is None:
                metrics.counter("predicate.store_misses").inc()
            else:
                self.store_hits += 1
                metrics.counter("predicate.cache_hits").inc()
                metrics.counter("predicate.store_hits").inc()
                self._cache[sub_input] = stored
                if stored:
                    self._note_success(sub_input)
                if tracer.enabled:
                    tracer.event(
                        "probe",
                        key=_probe_key(sub_input, self._key_cache),
                        cache="store",
                        outcome=stored,
                        wall_seconds=0.0,
                        virtual_charge=0.0,
                        **current_probe_fields(),
                    )
                return stored
        before_stats = _chain_stats(self._predicate) if tracer.enabled else {}
        with tracer.span("predicate.call", size=len(sub_input)) as sp:
            before = time.perf_counter()
            outcome = self._predicate(sub_input)
            sp.set_attr("outcome", outcome)
        latency = time.perf_counter() - before
        # Counted only after the call returns: an invocation that raises
        # (budget exhausted, unrecoverable oracle crash) never ran to
        # completion, so it must not inflate the fresh-call counter or
        # the virtual clock that anytime partial results are judged by.
        self.calls += 1
        metrics.counter("predicate.calls").inc()
        self.virtual_clock += self._cost_per_call
        metrics.counter("predicate.virtual_seconds").inc(self._cost_per_call)
        metrics.histogram("predicate.latency_seconds").observe(latency)
        if tracer.enabled:
            tracer.event(
                "probe",
                span_id=sp.span_id,
                key=_probe_key(sub_input, self._key_cache),
                cache="fresh",
                outcome=outcome,
                wall_seconds=latency,
                virtual_charge=self._cost_per_call,
                **current_probe_fields(),
                **_stat_deltas(before_stats, _chain_stats(self._predicate)),
            )
        self._cache[sub_input] = outcome
        if self._store is not None:
            self._store.record(self._fingerprint, sub_input, outcome)
        if outcome:
            self._note_success(sub_input)
        return outcome

    def peek(self, sub_input: FrozenSet[VarName]) -> Optional[bool]:
        """The in-memory cached outcome for a sub-input, or None.

        No counters move and the store is not consulted — this exists so
        search loops can report how many of their logical probes the
        memo already held (``gbr.probes_cached``) without perturbing the
        query statistics.
        """
        return self._cache.get(frozenset(sub_input))

    def evaluate_batch(
        self,
        sub_inputs: Sequence[FrozenSet[VarName]],
        executor,
    ) -> List[bool]:
        """Evaluate one speculative round of sub-inputs concurrently.

        Cache and store hits are counted exactly as in :meth:`__call__`.
        Fresh outcomes run on ``executor`` and are *committed in serial
        order* (index 0 first), so the cache, call counters, store
        writes, and best-so-far evolve as if the round had been issued
        sequentially — with two deliberate exceptions:

        - the virtual clock advances by ``cost_per_call`` **once per
          round**, booked on the round's first *committed* fresh
          outcome, because the round's calls overlap on the pool
          (``simulated_seconds`` is max-of-batch, the time a parallel
          tool invocation would take).  A round whose every committed
          position raised charges nothing — exactly like a sequential
          raising call, which never completes and never charges;
        - if a fresh call raised, its exception is re-raised *after*
          committing every earlier-in-order outcome, and every
          later-in-order outcome is discarded uncommitted (a sequential
          run would never have issued them).  Discarded probes that
          physically *completed* still land in the provenance ledger,
          flagged ``discarded=true`` with a zero virtual charge — the
          ledger's "one event per physical probe" invariant holds even
          for work an earlier failure threw away.

        Backends: a plain ``concurrent.futures`` pool runs the wrapped
        predicate on worker threads under the caller's active metrics
        registry (``scoped_metrics`` survives the thread hop).  An
        executor exposing ``submit_probe`` (a
        :class:`~repro.parallel.procpool.ProcessProbePool`) instead
        ships this predicate's picklable ``task_spec`` to worker
        processes; their returned metrics deltas are merged into the
        active registry and their span payloads re-emitted via
        ``Tracer.adopt``, in serial order, before the common commit
        loop runs.  Either backend commits through the same loop, so
        results are byte-identical across backends.
        """
        inputs = [frozenset(s) for s in sub_inputs]
        results: List[Optional[bool]] = [None] * len(inputs)
        fresh: List[Tuple[int, FrozenSet[VarName]]] = []
        pending: Dict[FrozenSet[VarName], int] = {}
        aliases: List[Tuple[int, int]] = []
        metrics = get_metrics()
        tracer = get_tracer()
        # Captured once on the issuing thread: the speculation engine's
        # probe_scope (round number) annotates every ledger entry this
        # round commits, even though the calls run on pool threads.
        scope = current_probe_fields() if tracer.enabled else {}
        for position, sub_input in enumerate(inputs):
            self.queries += 1
            metrics.counter("predicate.queries").inc()
            cached = self._cache.get(sub_input)
            if cached is not None:
                metrics.counter("predicate.cache_hits").inc()
                results[position] = cached
                continue
            if sub_input in pending:
                # A duplicate within the round: a sequential run would
                # answer the repeat from the cache.
                metrics.counter("predicate.cache_hits").inc()
                aliases.append((position, pending[sub_input]))
                continue
            if self._store is not None:
                stored = self._store.lookup(self._fingerprint, sub_input)
                if stored is None:
                    metrics.counter("predicate.store_misses").inc()
                else:
                    self.store_hits += 1
                    metrics.counter("predicate.cache_hits").inc()
                    metrics.counter("predicate.store_hits").inc()
                    self._cache[sub_input] = stored
                    if stored:
                        self._note_success(sub_input)
                    results[position] = stored
                    if tracer.enabled:
                        tracer.event(
                            "probe",
                            key=_probe_key(sub_input, self._key_cache),
                            cache="store",
                            outcome=stored,
                            wall_seconds=0.0,
                            virtual_charge=0.0,
                            batch_pos=position,
                            **scope,
                        )
                    continue
            pending[sub_input] = position
            fresh.append((position, sub_input))

        if fresh:
            if hasattr(executor, "submit_probe"):
                settled = self._execute_fresh_process(fresh, executor, tracer)
            else:
                settled = self._execute_fresh_threads(
                    fresh, executor, tracer, metrics
                )
            self._commit_settled(settled, results, tracer, metrics, scope)

        for position, source in aliases:
            results[position] = results[source]
        return [bool(r) for r in results]

    def _execute_fresh_threads(self, fresh, executor, tracer, metrics):
        """Run fresh probes on a thread pool (the wrapped chain itself)."""
        registry = metrics
        # The issuing task's causal position and virtual clock,
        # carried onto the probe-pool threads so their
        # ``predicate.call`` spans parent onto the open
        # ``speculate.round`` span instead of floating free.
        ctx = tracer.current_context() if tracer.enabled else None
        vclock = tracer.current_clock()

        def run_one(sub_input: FrozenSet[VarName]):
            # The worker thread sees the global registry by default;
            # install the caller's so the run's scoped counters (and
            # any per-run attribution above them) stay exact.
            with scoped_metrics(registry):
                if ctx is not None:
                    attach = tracer.attach(ctx, clock=vclock)
                else:
                    attach = _NO_ATTACH
                with attach:
                    with tracer.span(
                        "predicate.call", size=len(sub_input)
                    ) as sp:
                        before = time.perf_counter()
                        outcome = self._predicate(sub_input)
                        sp.set_attr("outcome", outcome)
                return outcome, time.perf_counter() - before

        futures = [
            (position, sub_input, executor.submit(run_one, sub_input))
            for position, sub_input in fresh
        ]
        settled = []
        for position, sub_input, future in futures:
            try:
                outcome, latency = future.result()
                settled.append((position, sub_input, outcome, latency, None))
            except BaseException as exc:  # noqa: BLE001 — re-raised on commit
                settled.append((position, sub_input, None, 0.0, exc))
        return settled

    def _execute_fresh_process(self, fresh, executor, tracer):
        """Run fresh probes on worker processes via the task spec.

        Each worker rebuilds the chain from ``task_spec`` (cached per
        process) and sends back a
        :class:`~repro.parallel.procpool.ProbeResult`; the worker-side
        metrics deltas and span payloads are folded into the parent's
        registry/tracer here, in serial order, so the merged telemetry
        is deterministic — the outcomes themselves go through the same
        commit loop as the thread backend.
        """
        if self._task_spec is None:
            raise ValueError(
                "a process probe pool needs an InstrumentedPredicate "
                "built with task_spec= (the picklable chain recipe)"
            )
        ctx_payload = None
        if tracer.enabled:
            ctx_payload = {
                "ctx": tracer.current_context().to_dict(),
                "epoch_unix": tracer.epoch_unix,
                "vt": tracer.virtual_now(),
            }
        futures = [
            (
                position,
                sub_input,
                executor.submit_probe(self._task_spec, sub_input, ctx_payload),
            )
            for position, sub_input in fresh
        ]
        settled = []
        metrics = get_metrics()
        for position, sub_input, future in futures:
            try:
                probe = future.result()
            except BaseException as exc:  # noqa: BLE001 — pool infrastructure
                settled.append((position, sub_input, None, 0.0, exc))
                continue
            settled.append(
                (
                    position,
                    sub_input,
                    probe.outcome,
                    probe.wall_seconds,
                    probe.error,
                )
            )
            # Counters moved in the worker (retries, timeouts, oracle
            # internals) merge here whether or not the probe commits —
            # the thread backend's counters also move as probes *run*.
            for name, value in probe.metrics.items():
                if value:
                    metrics.counter(name).inc(value)
            if tracer.enabled:
                for payload in probe.events:
                    tracer.adopt(payload)
        return settled

    def _commit_settled(self, settled, results, tracer, metrics, scope):
        """Commit one round's fresh outcomes in serial index order.

        The round's single ``cost_per_call`` virtual charge is booked
        on the first *committed* fresh outcome — a round whose lowest-
        index fresh probe raised charges nothing, exactly like the
        sequential run it must mirror.  On an error, completed later-
        in-order probes are discarded uncommitted but still emit a
        ``discarded=true`` ledger event (one event per physical probe).
        """
        charged = False
        for index, (position, sub_input, outcome, latency, error) in (
            enumerate(settled)
        ):
            if error is not None:
                if tracer.enabled:
                    for (
                        later_position,
                        later_input,
                        later_outcome,
                        later_latency,
                        later_error,
                    ) in settled[index + 1:]:
                        if later_error is not None:
                            continue
                        tracer.event(
                            "probe",
                            key=_probe_key(later_input, self._key_cache),
                            cache="fresh",
                            outcome=later_outcome,
                            wall_seconds=later_latency,
                            virtual_charge=0.0,
                            batch_pos=later_position,
                            discarded=True,
                            **scope,
                        )
                raise error
            self.calls += 1
            metrics.counter("predicate.calls").inc()
            metrics.histogram("predicate.latency_seconds").observe(latency)
            round_charge = 0.0
            if not charged:
                # The round ran concurrently: one call's worth of
                # simulated time covers the whole batch (max-of-batch).
                charged = True
                self.virtual_clock += self._cost_per_call
                metrics.counter("predicate.virtual_seconds").inc(
                    self._cost_per_call
                )
                round_charge = self._cost_per_call
            self._cache[sub_input] = outcome
            if self._store is not None:
                self._store.record(self._fingerprint, sub_input, outcome)
            if outcome:
                self._note_success(sub_input)
            results[position] = outcome
            if tracer.enabled:
                # Committed (hence emitted) in serial order, so the
                # merged ledger reads like a sequential run.  Per-probe
                # resilience deltas are skipped here — concurrent
                # attempts make bracketing snapshots racy.
                tracer.event(
                    "probe",
                    key=_probe_key(sub_input, self._key_cache),
                    cache="fresh",
                    outcome=outcome,
                    wall_seconds=latency,
                    virtual_charge=round_charge,
                    batch_pos=position,
                    **scope,
                )

    def _note_success(self, sub_input: FrozenSet[VarName]) -> None:
        size = self._size_of(sub_input)
        if self.best_size is None or size < self.best_size:
            self.best_size = size
            self.best_input = sub_input
            stamp = (
                self.virtual_now() if self._cost_per_call else self.now()
            )
            self.timeline.append((stamp, size))

    def now(self) -> float:
        """Elapsed time: real seconds plus the simulated per-call cost."""
        return (time.perf_counter() - self._start) + self.virtual_clock

    def virtual_now(self) -> float:
        """The simulated clock alone: ``cost_per_call`` × fresh calls.

        Deterministic across hosts and thread interleavings — this is
        the "simulated seconds" axis the harness and Figure 8b use
        (:meth:`now` mixes in real machine time and is only suitable for
        wall-clock reporting).
        """
        return self.virtual_clock

    def reset_clock(self) -> None:
        """Restart only the time axis (clock + virtual cost).

        The cache, counters, timeline, and best-so-far survive — use
        :meth:`reset` to make the wrapper safe for reuse across runs.
        """
        self._start = time.perf_counter()
        self.virtual_clock = 0.0

    def reset(self) -> None:
        """Forget everything: cache, counters, best-so-far, timeline, clock.

        Strategies that reuse one instrumented predicate across runs
        (e.g. back-to-back experiments on the same oracle) must call
        this between runs, otherwise ``calls``/``timeline``/``best_*``
        from the previous run leak into the next result.  The persistent
        store (if any) is external state and is deliberately kept.
        """
        self._cache.clear()
        self.calls = 0
        self.queries = 0
        self.store_hits = 0
        self.best_size = None
        self.best_input = None
        self.timeline.clear()
        self.reset_clock()


def best_so_far(
    predicate: Callable[[FrozenSet[VarName]], bool],
    fallback: FrozenSet[VarName],
) -> FrozenSet[VarName]:
    """The smallest satisfying sub-input a wrapper has seen, or a fallback.

    The anytime contract (Figure 8b: "stop both algorithms at any point
    and use the smallest input until that point") is implemented by
    reading the instrumented wrapper's ``best_input``.  When the run was
    cut off before *any* satisfying query (or the predicate is not an
    :class:`InstrumentedPredicate`), the fallback — the full input, which
    satisfies the predicate by Definition 4.1's assumptions — is the
    best-known answer.
    """
    best = getattr(predicate, "best_input", None)
    return best if best is not None else frozenset(fallback)

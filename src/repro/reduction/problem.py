"""The Input Reduction Problem (Definition 4.1).

An instance is ``(I, P, R)`` where ``I`` is a set of variables, ``P`` is a
black-box predicate on subsets of ``I`` (true iff the sub-input still
induces the bug), and ``R`` is a CNF over ``I`` whose models are exactly
the *valid* sub-inputs.  The paper assumes ``P(I)``, ``R(I)``, and that
``P`` is monotone on valid sub-inputs.

``I`` is kept as an ordered sequence: the declaration order doubles as the
default variable order ``<`` for MSA_<.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.logic.cnf import CNF

__all__ = [
    "ReductionProblem",
    "ReductionResult",
    "ReductionError",
    "BudgetExhausted",
]

VarName = Hashable
Predicate = Callable[[FrozenSet[VarName]], bool]


class ReductionError(RuntimeError):
    """Raised when a reduction invariant is violated.

    In a correct setup this indicates a broken input: an unsatisfiable
    validity constraint, a predicate that fails on the full input, or a
    non-monotone predicate.
    """


class BudgetExhausted(ReductionError):
    """A per-run call/time budget is spent (see :mod:`repro.resilience`).

    Raised by a budgeted predicate wrapper when the next fresh
    invocation would exceed the run's budget.  The reduction algorithms
    treat it as a *stop* signal, not a failure: they catch it and return
    the best bug-preserving sub-input found so far with
    ``ReductionResult.status == "partial"`` (the paper's Figure 8b
    anytime contract: "stop both algorithms at any point and use the
    smallest input until that point").
    """

    def __init__(self, message: str, budget=None):
        super().__init__(message)
        self.budget = budget


@dataclass
class ReductionProblem:
    """One instance of the Input Reduction Problem.

    Attributes:
        variables: the universe ``I`` in declaration order.
        predicate: the black-box ``P``; called only on valid sub-inputs by
            the logic-aware algorithms.
        constraint: the validity CNF ``R`` over (a subset of) ``I``.
        description: free-form label for reports.
    """

    variables: Sequence[VarName]
    predicate: Predicate
    constraint: CNF
    description: str = ""

    def __post_init__(self) -> None:
        universe = set(self.variables)
        if len(universe) != len(self.variables):
            raise ValueError("duplicate variables in the universe")
        stray = self.constraint.variables - universe
        if stray:
            raise ValueError(
                f"constraint mentions variables outside I: {sorted(map(str, stray))!r}"
            )

    @property
    def universe(self) -> FrozenSet[VarName]:
        return frozenset(self.variables)

    def check_assumptions(self) -> None:
        """Verify ``R(I)`` and ``P(I)`` (Definition 4.1's assumptions)."""
        full = self.universe
        if not self.constraint.satisfied_by(full):
            raise ReductionError("R(I) does not hold: the full input is invalid")
        if not self.predicate(full):
            raise ReductionError("P(I) does not hold: the full input shows no bug")

    def is_valid(self, sub_input: FrozenSet[VarName]) -> bool:
        """Does ``R`` accept this sub-input?"""
        return self.constraint.satisfied_by(sub_input)


@dataclass
class ReductionResult:
    """Outcome of running one reduction strategy on one problem.

    ``timeline`` records ``(seconds_since_start, best_size_so_far)`` pairs
    — one per predicate invocation that found a new smaller bug-preserving
    sub-input — which is what Figure 8b plots.

    ``status`` is ``"complete"`` for a full run and ``"partial"`` when a
    predicate budget exhausted mid-run and the strategy returned its
    best-so-far satisfying sub-input instead (see
    :class:`BudgetExhausted`).  A partial solution still satisfies the
    predicate; it just may not be as small as a complete run's.
    """

    solution: FrozenSet[VarName]
    strategy: str
    predicate_calls: int
    elapsed_seconds: float
    iterations: int = 0
    timeline: List[Tuple[float, int]] = field(default_factory=list)
    extras: dict = field(default_factory=dict)
    status: str = "complete"

    @property
    def size(self) -> int:
        return len(self.solution)

    @property
    def is_partial(self) -> bool:
        return self.status == "partial"

    def relative_size(self, problem: ReductionProblem) -> float:
        total = len(problem.variables)
        return len(self.solution) / total if total else 1.0

    def __repr__(self) -> str:
        return (
            f"ReductionResult(strategy={self.strategy!r}, "
            f"size={self.size}, calls={self.predicate_calls}, "
            f"elapsed={self.elapsed_seconds:.3f}s)"
        )


class Stopwatch:
    """Tiny helper shared by the strategies for elapsed-time accounting."""

    def __init__(self) -> None:
        self.start = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self.start

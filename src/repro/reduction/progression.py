r"""The PROGRESSION subroutine of Generalized Binary Reduction.

``PROGRESSION_{R_I}(L, J)`` produces a non-empty list of disjoint subsets
of ``J`` whose union is ``J``, such that **every prefix union is a valid
sub-input** (satisfies ``R_I``) that overlaps every learned set in ``L``
(invariant INV-PRO).  Construction, following the paper:

- strengthen: ``R+ = R_I  /\  (\\/ L)  for each L in learned``, with the
  variables outside ``J`` set to 0,
- ``D_0 = MSA_<(R+)``,
- ``D_{k+1} = MSA_<(R+ /\ x | D_{<=k} = 1) \\ D_{<=k}`` where ``x`` is the
  ``<``-smallest variable of ``J`` not yet covered,
- stop when ``J`` is exhausted.

The per-entry MSA calls are implemented incrementally
(:meth:`repro.logic.msa.MsaSolver.extend`), so building a progression is
one cascading pass over the clause database rather than a fresh solve per
entry.

Across GBR iterations the work is incremental too: a
:class:`ProgressionEngine` keeps one working CNF, one
:class:`~repro.logic.msa.MsaSolver` (with its lazily-built solver
session), and the learned clauses for a whole run.  Each iteration only
*appends* a learned clause and *shrinks* the scope, so instead of
re-materializing ``constraint.restrict(scope)`` plus a fresh solver per
rebuild, the engine scopes the persistent solver with assumptions
(out-of-scope variables false) — same results, none of the per-rebuild
compilation.  :func:`build_progression_reference` preserves the
materializing implementation for differential tests and benchmarks.
"""

from __future__ import annotations

import threading
from bisect import bisect_right, insort
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.logic.cnf import CNF, Clause
from repro.logic.msa import MsaSolver
from repro.observability import get_metrics, get_tracer
from repro.reduction.problem import ReductionError

__all__ = [
    "Progression",
    "ProgressionEngine",
    "build_progression",
    "build_progression_reference",
]

VarName = Hashable


class Progression:
    """A list of disjoint sets whose prefix unions are all valid.

    Prefix unions are materialized lazily: a binary search touches only
    O(log n) distinct prefixes, so eagerly building all n of them (O(n²)
    element copies for n entries) wasted almost all of the work.  Each
    requested union is built by extending the largest already-cached
    prefix below it — the entries are disjoint, so the chain extension
    is exact — then cached for later probes.  The
    ``progression.union_elements`` counter tallies elements copied into
    materialized unions (the regression test compares it against the
    eager baseline's quadratic count).
    """

    def __init__(self, entries: Sequence[FrozenSet[VarName]]):
        if not entries:
            raise ValueError("a progression must be non-empty")
        self.entries: List[FrozenSet[VarName]] = [
            frozenset(e) for e in entries
        ]
        self._union_cache: Dict[int, FrozenSet[VarName]] = {
            0: self.entries[0]
        }
        self._cached_indices: List[int] = [0]  # kept sorted
        self._union_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, index: int) -> FrozenSet[VarName]:
        return self.entries[index]

    def __iter__(self):
        return iter(self.entries)

    @property
    def first(self) -> FrozenSet[VarName]:
        """``D_0`` — the candidate solution."""
        return self.entries[0]

    def prefix_union(self, r: int) -> FrozenSet[VarName]:
        """``D^∪_{<=r}`` — the union of entries 0..r inclusive."""
        n = len(self.entries)
        if r < 0:
            r += n
        if not 0 <= r < n:
            raise IndexError(f"prefix index {r} out of range for {self!r}")
        with self._union_lock:
            cached = self._union_cache.get(r)
            if cached is not None:
                return cached
            # Extend the nearest cached prefix below r (index 0 is
            # always present).
            pos = bisect_right(self._cached_indices, r) - 1
            base_index = self._cached_indices[pos]
            running = set(self._union_cache[base_index])
            for index in range(base_index + 1, r + 1):
                running.update(self.entries[index])
            result = frozenset(running)
            self._union_cache[r] = result
            insort(self._cached_indices, r)
        get_metrics().counter("progression.union_elements").inc(len(result))
        return result

    @property
    def union(self) -> FrozenSet[VarName]:
        return self.prefix_union(len(self.entries) - 1)

    def __repr__(self) -> str:
        sizes = [len(e) for e in self.entries]
        return f"Progression({len(self.entries)} entries, sizes={sizes})"


class ProgressionEngine:
    """Incremental ``PROGRESSION_{R_I}`` builder for a whole GBR run.

    GBR only ever *adds* learned sets and *shrinks* the scope, so one
    engine serves every rebuild of a run:

    - the working CNF is cloned once from ``R_I``; learned clauses are
      appended monotonically (never popped),
    - one :class:`MsaSolver` (and the solver session it lazily builds)
      persists across rebuilds; learned clauses flow into its occurrence
      structures via :meth:`MsaSolver.notice_clause`,
    - the scope is applied as assumptions (:meth:`MsaSolver.set_scope`)
      for the duration of one :meth:`build` — semantically identical to
      the reference's ``constraint.restrict(scope)``, without
      re-compiling the restricted CNF and its indexes every iteration.
    """

    def __init__(self, constraint: CNF, order: Sequence[VarName]):
        self.order = list(order)
        self.working = CNF(constraint.clauses, variables=constraint.variables)
        self.solver = MsaSolver(self.working, self.order)
        self.learned: List[FrozenSet[VarName]] = []

    def learn(self, learned_set: FrozenSet[VarName]) -> None:
        """Append a learned set (as an all-positive clause) to ``R+``."""
        learned_set = frozenset(learned_set)
        self.learned.append(learned_set)
        clause = Clause.implication([], learned_set)
        if self.working.add_clause(clause):
            self.solver.notice_clause(clause)

    def build(
        self,
        scope: FrozenSet[VarName],
        require_true: FrozenSet[VarName] = frozenset(),
    ) -> Progression:
        """``PROGRESSION_{R_I}(L, J)`` with ``L`` = the learned sets so far.

        Raises:
            ReductionError: when ``R+`` is unsatisfiable, i.e. the
                search space contains no valid sub-input hitting every
                learned set.
        """
        scope = frozenset(scope)
        get_metrics().counter("progression.rebuilds").inc()
        with get_tracer().span(
            "progression.build", scope=len(scope), learned=len(self.learned)
        ) as sp:
            for learned_set in self.learned:
                if not learned_set & scope:
                    raise ReductionError(
                        "learned set fell fully outside the search space"
                    )
            solver = self.solver
            solver.set_scope(scope)
            try:
                scoped_order = [v for v in self.order if v in scope]
                # Under a partial `order` some scope variables are
                # stragglers; they go through the same incremental-MSA
                # extension as ordered variables (sorted by the solver's
                # rank for determinism), so every prefix union keeps
                # satisfying R+ (INV-PRO) instead of being appended as
                # one unchecked raw entry.
                stragglers = sorted(
                    scope - set(scoped_order), key=solver.rank
                )

                first = solver.compute(
                    require_true=frozenset(require_true) & scope
                )
                if first is None:
                    raise ReductionError(
                        "R+ is unsatisfiable: "
                        "no valid sub-input in the search space"
                    )

                entries: List[FrozenSet[VarName]] = [first]
                covered = set(first)
                for var in scoped_order + stragglers:
                    if var in covered:
                        continue
                    extended = solver.extend(covered, [var])
                    if extended is None:
                        raise ReductionError(
                            f"could not extend progression with {var!r}; "
                            "is R(J) violated?"
                        )
                    entry = frozenset(extended - covered)
                    entries.append(entry)
                    covered = set(extended)
            finally:
                solver.set_scope(None)
            sp.set_attr("entries", len(entries))

        return Progression(entries)


def build_progression(
    constraint: CNF,
    order: Sequence[VarName],
    learned: Iterable[FrozenSet[VarName]],
    scope: FrozenSet[VarName],
    require_true: FrozenSet[VarName] = frozenset(),
) -> Progression:
    """One-shot ``PROGRESSION_{R_I}(L, J)`` (see module docstring).

    Args:
        constraint: ``R_I``.
        order: the total variable order ``<`` (over all of ``I``).
        learned: the learned sets ``L`` (each a subset of ``scope``).
        scope: ``J`` — the current search space.
        require_true: extra variables forced true (e.g. the entry point
            the tool always needs); these are usually also unit clauses
            in ``R_I``, but passing them here keeps ``D_0`` honest even
            for constraint-free problems.

    Raises:
        ReductionError: when ``R+`` is unsatisfiable, i.e. the search
            space contains no valid sub-input hitting every learned set.

    Callers rebuilding per iteration (GBR) should hold a
    :class:`ProgressionEngine` instead of re-invoking this.
    """
    engine = ProgressionEngine(constraint, order)
    for learned_set in learned:
        engine.learn(frozenset(learned_set))
    return engine.build(frozenset(scope), require_true)


def build_progression_reference(
    constraint: CNF,
    order: Sequence[VarName],
    learned: Iterable[FrozenSet[VarName]],
    scope: FrozenSet[VarName],
    require_true: FrozenSet[VarName] = frozenset(),
) -> Progression:
    """The pre-engine implementation, preserved as a baseline.

    Materializes ``constraint.restrict(scope)`` plus the learned clauses
    and builds a fresh :class:`MsaSolver` per call — the differential
    tests assert :class:`ProgressionEngine` produces identical entries,
    and the hot-path benchmark measures the engine's speedup over this.
    """
    scope = frozenset(scope)
    learned = list(learned)
    get_metrics().counter("progression.rebuilds").inc()
    with get_tracer().span(
        "progression.build", scope=len(scope), learned=len(learned)
    ) as sp:
        strengthened = constraint.restrict(scope)
        for learned_set in learned:
            inside = frozenset(learned_set) & scope
            if not inside:
                raise ReductionError(
                    "learned set fell fully outside the search space"
                )
            strengthened.add_clause(Clause.implication([], inside))

        scoped_order = [v for v in order if v in scope]
        solver = MsaSolver(strengthened, scoped_order)
        stragglers = sorted(scope - set(scoped_order), key=solver.rank)

        first = solver.compute(require_true=frozenset(require_true) & scope)
        if first is None:
            raise ReductionError(
                "R+ is unsatisfiable: no valid sub-input in the search space"
            )

        entries: List[FrozenSet[VarName]] = [first]
        covered = set(first)
        for var in scoped_order + stragglers:
            if var in covered:
                continue
            extended = solver.extend(covered, [var])
            if extended is None:
                raise ReductionError(
                    f"could not extend progression with {var!r}; "
                    "is R(J) violated?"
                )
            entry = frozenset(extended - covered)
            entries.append(entry)
            covered = set(extended)
        sp.set_attr("entries", len(entries))

    return Progression(entries)

"""An exact (exponential) reference reducer for small instances.

The Input Reduction Problem is NP-complete (Theorem 4.2), so GBR settles
for approximate solutions.  For *small* universes we can afford the
exact optimum by enumerating valid sub-inputs in size order — the test
suite uses this to measure GBR's optimality gap, and the paper's example
is small enough to confirm GBR's answer is the true minimum.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Hashable, Optional

from repro.logic.counting import enumerate_models
from repro.reduction.problem import ReductionProblem

__all__ = ["optimal_solution", "MAX_EXACT_VARIABLES"]

MAX_EXACT_VARIABLES = 24

VarName = Hashable


def optimal_solution(
    problem: ReductionProblem,
) -> Optional[FrozenSet[VarName]]:
    """The smallest valid, bug-preserving sub-input — by brute force.

    Enumerates all models of the validity constraint, sorts them by
    size, and returns the first that satisfies the predicate.  Guarded
    to :data:`MAX_EXACT_VARIABLES` variables; returns None when no model
    satisfies the predicate.
    """
    if len(problem.variables) > MAX_EXACT_VARIABLES:
        raise ValueError(
            f"optimal_solution is exponential; refuse on "
            f"{len(problem.variables)} > {MAX_EXACT_VARIABLES} variables"
        )
    models = sorted(
        enumerate_models(problem.constraint, problem.variables),
        key=lambda m: (len(m), sorted(map(str, m))),
    )
    for model in models:
        if problem.predicate(model):
            return model
    return None

"""A uniform registry of reduction strategies.

Every strategy takes a :class:`repro.reduction.problem.ReductionProblem`
(plus optional keyword arguments shared across strategies) and returns a
:class:`repro.reduction.problem.ReductionResult`.  The experiment harness
and the CLI dispatch through this registry.

Registered strategies:

- ``gbr`` — Generalized Binary Reduction with the dependency order (the
  paper's reducer).
- ``gbr-declaration`` — GBR with the raw declaration order (ablation).
- ``lossy-first`` / ``lossy-last`` — the two §4.3 encodings + binary
  reduction.
- ``ddmin`` — validity-blind ddmin over the items (invalid sub-inputs
  count as "failure gone").

The class-granularity J-Reduce baseline needs the class-level dependency
graph, which only the substrate layers can provide; the harness builds it
via :func:`repro.reduction.binary.binary_reduction` directly.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Optional, Sequence

from repro.reduction.ddmin import ddmin
from repro.reduction.gbr import generalized_binary_reduction
from repro.reduction.lossy import LossyVariant, lossy_reduce
from repro.reduction.ordering import declaration_order
from repro.reduction.predicate import InstrumentedPredicate
from repro.reduction.problem import (
    ReductionProblem,
    ReductionResult,
    Stopwatch,
)

__all__ = ["STRATEGIES", "run_strategy"]

VarName = Hashable
Strategy = Callable[..., ReductionResult]


def _run_gbr(
    problem: ReductionProblem,
    require_true: FrozenSet[VarName] = frozenset(),
    order: Optional[Sequence[VarName]] = None,
) -> ReductionResult:
    return generalized_binary_reduction(
        problem, order=order, require_true=require_true
    )


def _run_gbr_declaration(
    problem: ReductionProblem,
    require_true: FrozenSet[VarName] = frozenset(),
    order: Optional[Sequence[VarName]] = None,
) -> ReductionResult:
    chosen = order if order is not None else declaration_order(problem.variables)
    result = generalized_binary_reduction(
        problem, order=chosen, require_true=require_true
    )
    result.strategy = "gbr-declaration"
    return result


def _run_lossy_first(
    problem: ReductionProblem,
    require_true: FrozenSet[VarName] = frozenset(),
    order: Optional[Sequence[VarName]] = None,
) -> ReductionResult:
    return lossy_reduce(
        problem, LossyVariant.FIRST, order=order, require_true=require_true
    )


def _run_lossy_last(
    problem: ReductionProblem,
    require_true: FrozenSet[VarName] = frozenset(),
    order: Optional[Sequence[VarName]] = None,
) -> ReductionResult:
    return lossy_reduce(
        problem, LossyVariant.LAST, order=order, require_true=require_true
    )


def _run_ddmin(
    problem: ReductionProblem,
    require_true: FrozenSet[VarName] = frozenset(),
    order: Optional[Sequence[VarName]] = None,
) -> ReductionResult:
    """Validity-blind ddmin: invalid sub-inputs probe as False."""
    from repro.resilience import budget_of

    watch = Stopwatch()
    constraint = problem.constraint
    raw = problem.predicate

    def guarded(sub_input: FrozenSet[VarName]) -> bool:
        if require_true and not (frozenset(require_true) <= sub_input):
            return False
        if not constraint.satisfied_by(sub_input):
            return False  # the "don't know" outcome
        return raw(sub_input)

    instrumented = InstrumentedPredicate(guarded)
    items = list(order) if order is not None else list(problem.variables)
    solution = ddmin(items, instrumented)
    # ddmin's anytime contract swallows BudgetExhausted and returns its
    # best-so-far list, so partiality is read back off the budget.
    budget = budget_of(problem.predicate)
    status = (
        "partial" if budget is not None and budget.exhausted else "complete"
    )
    return ReductionResult(
        solution=solution,
        strategy="ddmin",
        predicate_calls=instrumented.calls,
        elapsed_seconds=watch.elapsed(),
        timeline=list(instrumented.timeline),
        status=status,
    )


STRATEGIES: Dict[str, Strategy] = {
    "gbr": _run_gbr,
    "gbr-declaration": _run_gbr_declaration,
    "lossy-first": _run_lossy_first,
    "lossy-last": _run_lossy_last,
    "ddmin": _run_ddmin,
}


def run_strategy(
    name: str,
    problem: ReductionProblem,
    require_true: FrozenSet[VarName] = frozenset(),
    order: Optional[Sequence[VarName]] = None,
) -> ReductionResult:
    """Run the named strategy (see module docstring for the registry)."""
    try:
        strategy = STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise ValueError(f"unknown strategy {name!r}; known: {known}") from None
    return strategy(problem, require_true=require_true, order=order)

"""Resilient predicate execution: budgets, retries, anytime results.

The paper's predicate is a real decompile+compile cycle (~33 s) that
can hang, crash, or flake, and Figure 8b's whole premise is that a
reduction can be stopped at any point and still yield the smallest
bug-preserving input found so far.  This package is that robustness
axis of the ROADMAP:

- :mod:`repro.resilience.budget` — :class:`Budget`, per-run caps on
  fresh predicate attempts and simulated seconds; exhaustion raises
  :class:`~repro.reduction.problem.BudgetExhausted`, which every
  reduction algorithm converts into a ``status == "partial"`` anytime
  result instead of a crash.
- :mod:`repro.resilience.predicate` — :class:`ResilientPredicate`, the
  fault-handling layer under ``InstrumentedPredicate``: per-call
  deadlines (:class:`PredicateTimeout`), seeded
  retry-with-exponential-backoff for transient failures, and
  majority-vote resolution for flip-style flakiness.
- :mod:`repro.resilience.faults` — deterministic, seeded fault
  injection (:class:`FlakyOracle`, :class:`SlowOracle`,
  :class:`CrashingOracle`) plus :class:`FaultPlan`, the recipe behind
  ``jlreduce bench --chaos``.

Layering (bottom = closest to the real tool)::

    chaos injector → ResilientPredicate → InstrumentedPredicate

so cache hits are free (no budget, no retries) and the timeline stays
a function of logical fresh queries, not physical attempts.
"""

from repro.reduction.problem import BudgetExhausted
from repro.resilience.budget import Budget
from repro.resilience.faults import (
    FAULT_KINDS,
    CrashingOracle,
    FaultPlan,
    FlakyOracle,
    OracleCrash,
    SlowOracle,
    TransientOracleError,
)
from repro.resilience.predicate import (
    PredicateTimeout,
    ResilientPredicate,
    budget_of,
)

__all__ = [
    "Budget",
    "BudgetExhausted",
    "ResilientPredicate",
    "PredicateTimeout",
    "budget_of",
    "TransientOracleError",
    "OracleCrash",
    "FlakyOracle",
    "SlowOracle",
    "CrashingOracle",
    "FaultPlan",
    "FAULT_KINDS",
]

"""PR 3's :class:`Budget` repurposed as service admission control.

The service tier (:mod:`repro.service`) needs per-tenant quotas with
exactly the semantics :class:`~repro.resilience.budget.Budget` already
implements for per-run predicate caps: thread-safe accounting of calls
and (virtual) seconds against optional limits, with *latched*
exhaustion — once a budget refuses an attempt it refuses every later
one, so a tenant cannot oscillate around its cap.

What admission control cannot use is the raising API: a reduction run
converts :class:`BudgetExhausted` into an anytime partial result, but
an HTTP front-end wants a non-raising verdict it can turn into a 429.
:class:`AdmissionBudget` is that adapter — a thin, non-raising facade
over one private ``Budget`` per tenant:

- :meth:`try_admit` spends one call at submission time (the job-count
  quota, ``max_jobs``) and answers ``None`` (admitted) or the refusal
  reason;
- :meth:`settle` charges the job's *simulated* seconds after it
  completes (the cost quota, ``max_seconds``) — charging may latch the
  budget, so the next :meth:`try_admit` refuses, but it never raises
  into the service loop.

Keeping one ``AdmissionBudget`` per tenant is what makes exhaustion
isolation structural: a latched budget is a latched *instance*, and no
other tenant holds a reference to it (tested by
``tests/service/test_admission.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.reduction.problem import BudgetExhausted
from repro.resilience.budget import Budget

__all__ = ["AdmissionBudget"]


class AdmissionBudget:
    """Non-raising per-tenant admission quota over one :class:`Budget`.

    Args:
        max_jobs: total jobs the tenant may ever have admitted
            (None: unlimited).
        max_seconds: total *simulated* seconds the tenant's completed
            jobs may consume (None: unlimited).  Charged by
            :meth:`settle`, checked at the next :meth:`try_admit`.
    """

    def __init__(
        self,
        max_jobs: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ):
        self._budget = Budget(
            max_calls=max_jobs,
            max_seconds=max_seconds,
            seconds_per_call=0.0,
        )

    def try_admit(self) -> Optional[str]:
        """Spend one admission slot; None if admitted, else the reason.

        Mirrors ``Budget.spend_call``: a refused admission charges
        nothing, and the refusal latches — every later call refuses
        too, even if limits would nominally allow it again.
        """
        try:
            self._budget.spend_call()
        except BudgetExhausted as exc:
            return str(exc)
        return None

    def settle(self, simulated_seconds: float) -> None:
        """Charge a completed job's simulated cost against the quota.

        Over-spending latches the budget (the *next* admission is
        refused) but never raises — the job already ran; admission
        control only shapes the future.
        """
        if simulated_seconds <= 0:
            return
        try:
            self._budget.charge_seconds(simulated_seconds)
        except BudgetExhausted:
            pass  # latched; surfaces as the next try_admit's refusal

    @property
    def exhausted(self) -> bool:
        return self._budget.exhausted

    @property
    def limited(self) -> bool:
        return self._budget.limited

    @property
    def calls(self) -> int:
        return self._budget.calls

    @property
    def seconds(self) -> float:
        return self._budget.seconds

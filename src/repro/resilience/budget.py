"""Per-run predicate budgets: max fresh calls / max simulated seconds.

The paper's predicate is a ~33-second decompile+compile cycle, so a
production reduction service cannot let one run invoke it without
bound.  A :class:`Budget` caps a run two ways:

- ``max_calls`` — fresh predicate *attempts* (retries count: every
  attempt costs a real tool run, whether or not it succeeds);
- ``max_seconds`` — simulated seconds, charged ``seconds_per_call``
  per attempt plus any retry-backoff delay.

Both clocks are virtual, so a budgeted run is a deterministic function
of the query sequence — the same property the harness's simulated
clock has (see :class:`repro.reduction.predicate.InstrumentedPredicate`).

Exhaustion latches: once a budget raises
:class:`~repro.reduction.problem.BudgetExhausted` it raises on every
later charge, so an algorithm that swallows the first signal (ddmin
inside hdd, say) still stops at the next fresh call.  Cached queries
never reach the budget — they are free, which is exactly why the
budget sits *under* the caching wrapper.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.reduction.problem import BudgetExhausted

__all__ = ["Budget", "BudgetExhausted"]


class Budget:
    """A thread-safe spend tracker for one reduction run.

    Args:
        max_calls: cap on fresh predicate attempts (None: unlimited).
        max_seconds: cap on simulated seconds (None: unlimited).
        seconds_per_call: simulated seconds charged per attempt (the
            harness passes its ``simulated_seconds_per_run``, i.e. the
            paper's ~33 s decompile+compile cost).
    """

    def __init__(
        self,
        max_calls: Optional[int] = None,
        max_seconds: Optional[float] = None,
        seconds_per_call: float = 0.0,
    ) -> None:
        if max_calls is not None and max_calls < 0:
            raise ValueError(f"max_calls must be >= 0, got {max_calls}")
        if max_seconds is not None and max_seconds < 0:
            raise ValueError(f"max_seconds must be >= 0, got {max_seconds}")
        if seconds_per_call < 0:
            raise ValueError(
                f"seconds_per_call must be >= 0, got {seconds_per_call}"
            )
        self.max_calls = max_calls
        self.max_seconds = max_seconds
        self.seconds_per_call = float(seconds_per_call)
        self.calls = 0
        self.seconds = 0.0
        self.exhausted = False
        self._lock = threading.Lock()

    @property
    def limited(self) -> bool:
        """Does this budget cap anything at all?"""
        return self.max_calls is not None or self.max_seconds is not None

    def spend_call(self) -> None:
        """Charge one fresh predicate attempt.

        Raises :class:`BudgetExhausted` — *without* charging — when the
        attempt would exceed either cap, and on every call after that.
        """
        with self._lock:
            if self.exhausted:
                raise BudgetExhausted(self._message("already exhausted"), self)
            if self.max_calls is not None and self.calls + 1 > self.max_calls:
                self.exhausted = True
                raise BudgetExhausted(self._message("call budget"), self)
            if (
                self.max_seconds is not None
                and self.seconds + self.seconds_per_call > self.max_seconds
            ):
                self.exhausted = True
                raise BudgetExhausted(self._message("time budget"), self)
            self.calls += 1
            self.seconds += self.seconds_per_call

    def charge_seconds(self, seconds: float) -> None:
        """Charge extra simulated time (e.g. retry backoff)."""
        with self._lock:
            if self.exhausted:
                raise BudgetExhausted(self._message("already exhausted"), self)
            self.seconds += seconds
            if self.max_seconds is not None and self.seconds > self.max_seconds:
                self.exhausted = True
                raise BudgetExhausted(self._message("time budget"), self)

    def _message(self, which: str) -> str:
        return (
            f"predicate budget exhausted ({which}): "
            f"{self.calls} calls (max {self.max_calls}), "
            f"{self.seconds:.1f}s simulated (max {self.max_seconds})"
        )

    def __repr__(self) -> str:
        return (
            f"Budget(calls={self.calls}/{self.max_calls}, "
            f"seconds={self.seconds:.1f}/{self.max_seconds}, "
            f"exhausted={self.exhausted})"
        )

"""Deterministic fault injection for predicate oracles.

Real predicate oracles — a decompile+compile cycle per invocation —
hang, crash, and flake.  The replication literature (see PAPERS.md)
reports nondeterministic oracles as the *common* case in production
reduction pipelines, so the resilience layer must be testable against
exactly those behaviors without any real nondeterminism.  Every wrapper
here draws from a private ``random.Random(seed)``, so a fault schedule
is a pure function of ``(seed, call index)``: tests and the chaos bench
replay identical fault patterns on every run, on every host.

Fault models:

- :class:`FlakyOracle` — a seeded fraction of calls fail *transiently*:
  mode ``"error"`` raises :class:`TransientOracleError` (a retry redraws
  and eventually reaches the true outcome), mode ``"flip"`` returns the
  wrong boolean (majority voting recovers the truth with high
  probability).
- :class:`SlowOracle` — a seeded fraction of calls sleep ``delay`` real
  seconds first, to trip per-call deadlines.
- :class:`CrashingOracle` — raises :class:`OracleCrash`, which the retry
  policy deliberately does *not* retry: it models a dead tool, and the
  harness should record the instance as failed and move on.

:class:`FaultPlan` is the serializable recipe the CLI's chaos flags and
the harness share; ``plan.apply(predicate, key)`` derives a per-instance
seed from ``(plan.seed, key)`` so serial and parallel corpus runs inject
byte-identical fault schedules.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass
from typing import Callable, FrozenSet, Hashable

__all__ = [
    "TransientOracleError",
    "OracleCrash",
    "FlakyOracle",
    "SlowOracle",
    "CrashingOracle",
    "FaultPlan",
    "FAULT_KINDS",
    "derive_seed",
]


def derive_seed(master: int, key: str) -> int:
    """A stable per-instance seed from a master seed and a string key.

    Hash-based (not ``random``-based), so it is identical across
    processes, hosts, and ``PYTHONHASHSEED`` settings — serial and
    parallel corpus runs derive the same schedule for the same instance.
    """
    digest = hashlib.sha256(f"{master}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")

VarName = Hashable
Predicate = Callable[[FrozenSet[VarName]], bool]

#: Chaos kinds the CLI and :class:`FaultPlan` accept.
FAULT_KINDS = ("flaky", "flip", "slow", "crash")


class TransientOracleError(RuntimeError):
    """A recoverable oracle failure: retrying the call may succeed."""


class OracleCrash(RuntimeError):
    """An unrecoverable oracle failure: retrying will not help."""


def _check_rate(rate: float) -> float:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"fault rate must be in [0, 1], got {rate}")
    return float(rate)


class FlakyOracle:
    """A predicate whose calls fail transiently with seeded probability.

    Args:
        predicate: the true underlying predicate.
        rate: per-call fault probability.
        seed: RNG seed; the fault schedule is a pure function of it.
        mode: ``"error"`` raises :class:`TransientOracleError` on a
            fault; ``"flip"`` returns the negated true outcome instead.
    """

    def __init__(
        self,
        predicate: Predicate,
        rate: float,
        seed: int = 0,
        mode: str = "error",
    ) -> None:
        if mode not in ("error", "flip"):
            raise ValueError(f"mode must be 'error' or 'flip', got {mode!r}")
        self._predicate = predicate
        self._rate = _check_rate(rate)
        self._mode = mode
        self._rng = random.Random(seed)
        self.calls = 0
        self.faults = 0

    def __call__(self, sub_input: FrozenSet[VarName]) -> bool:
        self.calls += 1
        if self._rng.random() < self._rate:
            self.faults += 1
            if self._mode == "error":
                raise TransientOracleError(
                    f"injected transient fault on call {self.calls}"
                )
            return not self._predicate(sub_input)
        return self._predicate(sub_input)


class SlowOracle:
    """A predicate where a seeded fraction of calls stall first.

    ``delay`` is a *real* sleep — this oracle exists to trip the
    deadline machinery in
    :class:`~repro.resilience.predicate.ResilientPredicate`, which
    measures wall time.
    """

    def __init__(
        self,
        predicate: Predicate,
        rate: float,
        seed: int = 0,
        delay: float = 0.05,
    ) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self._predicate = predicate
        self._rate = _check_rate(rate)
        self._delay = delay
        self._rng = random.Random(seed)
        self.calls = 0
        self.slow_calls = 0

    def __call__(self, sub_input: FrozenSet[VarName]) -> bool:
        self.calls += 1
        if self._rng.random() < self._rate:
            self.slow_calls += 1
            time.sleep(self._delay)
        return self._predicate(sub_input)


class CrashingOracle:
    """A predicate that dies unrecoverably.

    Crashes with seeded probability ``rate`` per call, or exactly on
    call number ``crash_at_call`` when given (1-based; handy for tests
    that need one deterministic mid-run crash).
    """

    def __init__(
        self,
        predicate: Predicate,
        rate: float = 0.0,
        seed: int = 0,
        crash_at_call: int = 0,
    ) -> None:
        self._predicate = predicate
        self._rate = _check_rate(rate)
        self._crash_at_call = crash_at_call
        self._rng = random.Random(seed)
        self.calls = 0
        self.crashes = 0

    def __call__(self, sub_input: FrozenSet[VarName]) -> bool:
        self.calls += 1
        scheduled = self._crash_at_call and self.calls == self._crash_at_call
        if scheduled or (self._rate and self._rng.random() < self._rate):
            self.crashes += 1
            raise OracleCrash(f"injected oracle crash on call {self.calls}")
        return self._predicate(sub_input)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded fault-injection recipe (the CLI's ``--chaos`` flags).

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        rate: per-call fault probability.
        seed: master seed; per-instance oracles derive their own seed
            from ``(seed, key)`` so fault schedules are independent
            across instances yet reproducible across runs and across
            serial/parallel execution.
        delay: real seconds a ``"slow"`` fault stalls for.
    """

    kind: str
    rate: float = 0.2
    seed: int = 0
    delay: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            known = ", ".join(FAULT_KINDS)
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {known}")
        _check_rate(self.rate)

    def derived_seed(self, key: str) -> int:
        """A stable per-instance seed from the master seed and a key."""
        return derive_seed(self.seed, key)

    def apply(self, predicate: Predicate, key: str):
        """Wrap ``predicate`` in this plan's fault injector."""
        seed = self.derived_seed(key)
        if self.kind == "flaky":
            return FlakyOracle(predicate, self.rate, seed, mode="error")
        if self.kind == "flip":
            return FlakyOracle(predicate, self.rate, seed, mode="flip")
        if self.kind == "slow":
            return SlowOracle(predicate, self.rate, seed, delay=self.delay)
        return CrashingOracle(predicate, self.rate, seed)

"""ResilientPredicate: deadlines, retries, voting, and budgets.

This wrapper layers *under*
:class:`repro.reduction.predicate.InstrumentedPredicate`::

    raw oracle (may flake / stall / crash)
      └─ FlakyOracle / SlowOracle / CrashingOracle   (chaos mode only)
           └─ ResilientPredicate   (deadline, retry, vote, budget)
                └─ InstrumentedPredicate   (cache, timeline, telemetry)

The ordering matters: the instrumented layer's cache means only *fresh*
queries reach the resilient layer, so cache hits cost neither budget
nor retries, and the timeline/virtual clock still count one fresh call
per distinct sub-input regardless of how many physical attempts the
resilient layer needed underneath.

Per call the wrapper applies, in order:

1. **budget** — every physical attempt charges the run's
   :class:`~repro.resilience.budget.Budget` first; an over-budget
   attempt raises :class:`~repro.reduction.problem.BudgetExhausted`,
   which the reduction algorithms turn into an anytime partial result.
2. **deadline** — with ``deadline_seconds`` set, the attempt runs on a
   daemon thread and an overrun raises :class:`PredicateTimeout` (the
   stuck call is abandoned, never joined).
3. **retry** — retryable failures (:class:`TransientOracleError`,
   which includes timeouts) are retried up to ``retries`` times with
   seeded exponential backoff; anything else (e.g.
   :class:`~repro.resilience.faults.OracleCrash`) propagates
   immediately.
4. **vote** — with ``votes = 2k+1 > 1``, each logical query resolves
   that many independent attempts and returns the majority, which
   recovers the truth from flip-style flakiness with high probability.

Backoff is *virtual* by default (accumulated in ``backoff_seconds`` and
charged to the budget's simulated clock, never slept), so resilient
runs stay deterministic and fast; pass ``sleep=True`` for wall-clock
backoff against a real tool.

Telemetry: ``predicate.retries`` and ``predicate.timeouts`` counters on
the active metrics registry (see :mod:`repro.observability`).
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, FrozenSet, Hashable, Optional, Tuple

from repro.observability import get_metrics, get_tracer
from repro.resilience.budget import Budget
from repro.resilience.faults import TransientOracleError

__all__ = ["ResilientPredicate", "PredicateTimeout", "budget_of"]

VarName = Hashable
Predicate = Callable[[FrozenSet[VarName]], bool]


class PredicateTimeout(TransientOracleError):
    """A predicate call exceeded its per-call deadline.

    Subclasses :class:`TransientOracleError` because a timeout is
    transient by assumption — the default retry policy retries it.
    """


class ResilientPredicate:
    """A fault-handling predicate wrapper (see the module docstring).

    Args:
        predicate: the raw (possibly faulty) predicate.
        budget: optional per-run :class:`Budget`; every physical
            attempt charges it before running.
        retries: retryable failures tolerated per attempt slot (0: fail
            on the first one).
        votes: odd number of successful attempts to majority-vote per
            logical query (1: no voting).
        deadline_seconds: optional per-attempt wall-clock deadline.
        backoff_base: first retry's backoff in (virtual) seconds; the
            delay doubles per retry with seeded jitter.  0 disables
            backoff accounting entirely.
        backoff_cap: upper bound on a single backoff delay.
        seed: seeds the backoff jitter (determinism across runs).
        sleep: really sleep the backoff delay (default: charge it to
            the budget's simulated clock only).
        retry_on: exception types considered transient.
    """

    def __init__(
        self,
        predicate: Predicate,
        *,
        budget: Optional[Budget] = None,
        retries: int = 0,
        votes: int = 1,
        deadline_seconds: Optional[float] = None,
        backoff_base: float = 0.0,
        backoff_cap: float = 60.0,
        seed: int = 0,
        sleep: bool = False,
        retry_on: Tuple[type, ...] = (TransientOracleError,),
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if votes < 1 or votes % 2 == 0:
            raise ValueError(f"votes must be a positive odd number, got {votes}")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0, got {deadline_seconds}"
            )
        self._predicate = predicate
        self.budget = budget
        self.max_retries = retries
        self.votes = votes
        self._deadline = deadline_seconds
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._sleep = sleep
        self._retry_on = retry_on
        self._rng = random.Random(seed)
        self.attempts = 0  # physical invocations, retries included
        self.retries = 0  # retry attempts actually taken
        self.timeouts = 0  # attempts killed by the deadline
        self.backoff_seconds = 0.0  # accumulated (virtual) backoff

    def __call__(self, sub_input: FrozenSet[VarName]) -> bool:
        if self.votes == 1:
            return self._resolve(sub_input)
        true_votes = sum(
            1 for _ in range(self.votes) if self._resolve(sub_input)
        )
        return true_votes * 2 > self.votes

    # -- internals -----------------------------------------------------------

    def _resolve(self, sub_input: FrozenSet[VarName]) -> bool:
        """One voted outcome: budget-checked attempts with retries."""
        metrics = get_metrics()
        failures = 0
        while True:
            if self.budget is not None:
                self.budget.spend_call()
            try:
                return self._attempt(sub_input)
            except self._retry_on as exc:
                if isinstance(exc, PredicateTimeout):
                    self.timeouts += 1
                    metrics.counter("predicate.timeouts").inc()
                failures += 1
                if failures > self.max_retries:
                    raise
                self.retries += 1
                metrics.counter("predicate.retries").inc()
                self._backoff(failures)

    def _attempt(self, sub_input: FrozenSet[VarName]) -> bool:
        self.attempts += 1
        if self._deadline is None:
            return self._predicate(sub_input)
        return self._attempt_with_deadline(sub_input)

    def _attempt_with_deadline(self, sub_input: FrozenSet[VarName]) -> bool:
        """Run one attempt on a daemon thread; abandon it on overrun."""
        box: list = []
        done = threading.Event()
        # Carry the caller's causal position (and virtual clock) onto
        # the deadline thread, so any spans the wrapped predicate opens
        # there stay linked into the task's trace.
        tracer = get_tracer()
        ctx = tracer.current_context() if tracer.enabled else None
        vclock = tracer.current_clock()

        def work() -> None:
            try:
                if ctx is not None:
                    with tracer.attach(ctx, clock=vclock):
                        box.append(("ok", self._predicate(sub_input)))
                else:
                    box.append(("ok", self._predicate(sub_input)))
            except BaseException as exc:  # noqa: BLE001 — relayed below
                box.append(("err", exc))
            finally:
                done.set()

        worker = threading.Thread(
            target=work, daemon=True, name="predicate-deadline"
        )
        worker.start()
        if not done.wait(self._deadline):
            raise PredicateTimeout(
                f"predicate call exceeded its {self._deadline}s deadline"
            )
        kind, payload = box[0]
        if kind == "err":
            raise payload
        return payload

    def _backoff(self, failures: int) -> None:
        """Exponential backoff with seeded jitter in [0.5x, 1x]."""
        if self._backoff_base <= 0:
            return
        delay = self._backoff_base * (2 ** (failures - 1))
        delay = min(delay, self._backoff_cap) * (0.5 + self._rng.random() / 2)
        self.backoff_seconds += delay
        if self.budget is not None:
            self.budget.charge_seconds(delay)
        if self._sleep:
            time.sleep(delay)


def budget_of(predicate) -> Optional[Budget]:
    """The :class:`Budget` inside a predicate wrapper chain, or None.

    Walks ``_predicate`` links (both ``InstrumentedPredicate`` and
    ``ResilientPredicate`` expose one) looking for a ``budget``
    attribute.  Lets result-building code ask, after the fact, whether
    a run's budget exhausted — e.g. ddmin returns its best-so-far set
    on exhaustion rather than raising, so the strategy layer checks the
    budget to label the result ``"partial"``.
    """
    seen = set()
    current = predicate
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        budget = getattr(current, "budget", None)
        if isinstance(budget, Budget):
            return budget
        current = getattr(current, "_predicate", None)
    return None

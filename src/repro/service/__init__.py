"""Reduction-as-a-service: the long-lived multi-tenant job tier.

Everything below the CLI so far runs one :class:`ExperimentConfig` and
exits.  This package turns the engine into always-on infrastructure
(DESIGN.md §13): an asyncio HTTP front-end accepts reduction jobs from
many tenants, a weighted-fair scheduler with `Budget`-backed admission
control queues them, and execution fans out to the existing
process-pool machinery (:class:`repro.parallel.scheduler.InstancePool`)
over one shared warm predicate store, tenant-namespaced.

- :mod:`repro.service.jobs` — the job model: a JSON job request
  (workload spec or serialized app bytes) bridged to PR 9's picklable
  :class:`InstanceTaskSpec`, and the queued → running → done lifecycle.
- :mod:`repro.service.admission` — per-tenant admission control:
  quotas via :class:`repro.resilience.admission.AdmissionBudget`,
  bounded queues with retry-after backpressure, stride-scheduled
  weighted fair dispatch.
- :mod:`repro.service.server` — the service core (dispatch loop,
  graceful drain) and the stdlib-asyncio HTTP/1.1 front-end behind
  ``jlreduce serve``.
- :mod:`repro.service.client` — the blocking ``http.client`` client
  behind ``jlreduce submit``.
- :mod:`repro.service.loadgen` — the concurrent load generator behind
  ``jlreduce loadgen`` and ``benchmarks/bench_service.py`` (BENCH_10's
  jobs/sec + p50/p95/p99 curve).
"""

from repro.service.admission import (
    Admission,
    AdmissionController,
    TenantPolicy,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (
    JOB_STATES,
    Job,
    JobRequest,
    job_config,
    job_spec,
)
from repro.service.loadgen import run_loadgen
from repro.service.server import ReductionService, ServiceConfig, serve

__all__ = [
    "Admission",
    "AdmissionController",
    "JOB_STATES",
    "Job",
    "JobRequest",
    "ReductionService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "TenantPolicy",
    "job_config",
    "job_spec",
    "run_loadgen",
    "serve",
]

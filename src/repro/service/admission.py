"""Multi-tenant admission control and weighted fair dispatch.

The front door of the service tier.  Every tenant gets three shields —
and every other tenant gets shielded *from* them:

- **Quota** — an :class:`~repro.resilience.admission.AdmissionBudget`
  per tenant (PR 3's latched ``Budget`` underneath): ``max_jobs``
  caps admissions outright, ``max_seconds`` caps the cumulative
  *simulated* seconds the tenant's completed jobs burn.  Exhaustion
  latches per tenant instance, so one tenant hammering its cap can
  never flip another tenant's budget.
- **Backpressure** — a bounded per-tenant queue: once
  ``max_queue_depth`` jobs wait, further submissions are refused with
  a retry-after estimate (depth × observed mean service time ÷
  dispatch width) the HTTP layer turns into ``429 Retry-After``.
- **Fair dispatch** — stride scheduling across tenant queues: each
  dispatched job advances the tenant's virtual *pass* by
  ``1 / weight``, and the dispatcher always serves the eligible tenant
  with the smallest pass.  A heavy tenant with a deep queue therefore
  gets exactly its weight share of worker slots, not all of them; a
  tenant waking from idle re-enters at the current minimum pass, so it
  neither starves nor cashes in banked idle time.

The controller is a plain synchronized data structure — no asyncio, no
metrics — so it unit-tests in isolation; the server wraps it with the
event loop and the ``service.*`` telemetry.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.resilience.admission import AdmissionBudget
from repro.service.jobs import Job

__all__ = ["Admission", "AdmissionController", "TenantPolicy"]


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's admission knobs."""

    weight: float = 1.0
    max_queue_depth: int = 64
    max_jobs: Optional[int] = None
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )


@dataclass(frozen=True)
class Admission:
    """The verdict on one submission."""

    admitted: bool
    #: ``"queue_full"`` | ``"quota"`` — the 429 taxonomy.
    reason: str = ""
    detail: str = ""
    retry_after: Optional[float] = None


class _TenantState:
    def __init__(self, name: str, policy: TenantPolicy):
        self.name = name
        self.policy = policy
        self.queue: Deque[Job] = deque()
        self.budget = AdmissionBudget(
            max_jobs=policy.max_jobs, max_seconds=policy.max_seconds
        )
        self.pass_value = 0.0
        self.admitted = 0
        self.rejected: Dict[str, int] = {"queue_full": 0, "quota": 0}
        self.completed = 0
        self.failed = 0

    def stats(self) -> Dict[str, object]:
        return {
            "weight": self.policy.weight,
            "queue_depth": len(self.queue),
            "admitted": self.admitted,
            "rejected": dict(self.rejected),
            "completed": self.completed,
            "failed": self.failed,
            "quota_jobs": self.budget.calls,
            "quota_seconds": round(self.budget.seconds, 3),
            "quota_exhausted": self.budget.exhausted,
        }


class AdmissionController:
    """Bounded, quota'd, weighted-fair queues over all tenants.

    Thread-safe: the asyncio server calls it from one loop, but tests
    (and a future threaded front-end) may not be so polite.
    """

    def __init__(
        self,
        default_policy: Optional[TenantPolicy] = None,
        policies: Optional[Dict[str, TenantPolicy]] = None,
        dispatch_width: int = 1,
    ):
        self.default_policy = default_policy or TenantPolicy()
        self.policies = dict(policies or {})
        self.dispatch_width = max(1, dispatch_width)
        self._tenants: Dict[str, _TenantState] = {}
        self._lock = threading.Lock()
        #: EWMA of observed end-to-end job seconds; seeds the
        #: retry-after estimate before any job has finished.
        self._mean_latency = 0.5

    def _tenant(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            policy = self.policies.get(name, self.default_policy)
            state = self._tenants[name] = _TenantState(name, policy)
        return state

    # -- submission ----------------------------------------------------

    def submit(self, job: Job) -> Admission:
        """Admit (enqueue) or refuse one job."""
        with self._lock:
            tenant = self._tenant(job.request.tenant)
            if len(tenant.queue) >= tenant.policy.max_queue_depth:
                tenant.rejected["queue_full"] += 1
                return Admission(
                    admitted=False,
                    reason="queue_full",
                    detail=(
                        f"tenant {tenant.name!r} queue at bound "
                        f"{tenant.policy.max_queue_depth}"
                    ),
                    retry_after=self._retry_after(len(tenant.queue)),
                )
            refusal = tenant.budget.try_admit()
            if refusal is not None:
                tenant.rejected["quota"] += 1
                return Admission(
                    admitted=False,
                    reason="quota",
                    detail=f"tenant {tenant.name!r}: {refusal}",
                    # A latched quota never un-latches; the hint tells
                    # clients to go away for a while, not to retry-spin.
                    retry_after=60.0,
                )
            was_idle = not tenant.queue
            tenant.queue.append(job)
            tenant.admitted += 1
            if was_idle:
                # Re-enter at the active minimum: no banked credit for
                # idle time, no starvation for waking up.
                active = [
                    t.pass_value
                    for t in self._tenants.values()
                    if t.queue and t is not tenant
                ]
                if active:
                    tenant.pass_value = max(tenant.pass_value, min(active))
            return Admission(admitted=True)

    def _retry_after(self, depth: int) -> float:
        estimate = depth * self._mean_latency / self.dispatch_width
        return min(60.0, max(1.0, round(estimate, 1)))

    # -- dispatch ------------------------------------------------------

    def next_job(self) -> Optional[Job]:
        """Pop the next job under weighted fair (stride) scheduling."""
        with self._lock:
            eligible = [t for t in self._tenants.values() if t.queue]
            if not eligible:
                return None
            tenant = min(
                eligible, key=lambda t: (t.pass_value, t.name)
            )
            tenant.pass_value += 1.0 / tenant.policy.weight
            return tenant.queue.popleft()

    # -- completion ----------------------------------------------------

    def record_completion(
        self,
        tenant_name: str,
        latency_seconds: float,
        simulated_seconds: float,
        failed: bool = False,
    ) -> None:
        """Fold one finished job back in: quota charge, latency EWMA."""
        with self._lock:
            tenant = self._tenant(tenant_name)
            if failed:
                tenant.failed += 1
            else:
                tenant.completed += 1
            tenant.budget.settle(simulated_seconds)
            if latency_seconds > 0:
                self._mean_latency = (
                    0.7 * self._mean_latency + 0.3 * latency_seconds
                )

    # -- introspection -------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return sum(len(t.queue) for t in self._tenants.values())

    def tenant_names(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    def stats(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            return {
                name: self._tenants[name].stats()
                for name in sorted(self._tenants)
            }

"""A blocking HTTP client for the reduction service.

``jlreduce submit`` and the test-suite both need a dependency-free way
to talk to :mod:`repro.service.server`; stdlib ``http.client`` is
enough because the protocol is one JSON request per connection.  The
async load generator lives separately in :mod:`repro.service.loadgen`
— a blocking client cannot hold 100+ jobs in flight.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An HTTP-level failure, carrying the status and decoded body."""

    def __init__(self, status: int, body: Dict[str, Any]):
        super().__init__(
            f"service returned {status}: {body.get('error', body)}"
        )
        self.status = status
        self.body = body


class ServiceClient:
    """One service endpoint, one blocking request at a time."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> tuple:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
            return response.status, decoded
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        status, body = self._request("GET", "/v1/healthz")
        if status != 200:
            raise ServiceError(status, body)
        return body

    def submit(self, job: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one job; raises :class:`ServiceError` on refusal.

        A 429 refusal's ``body["retry_after"]`` is the server's
        backpressure hint — callers that want to wait-and-retry should
        honor it (``jlreduce loadgen`` does).
        """
        status, body = self._request("POST", "/v1/jobs", job)
        if status != 202:
            raise ServiceError(status, body)
        return body

    def job(self, job_id: str) -> Dict[str, Any]:
        status, body = self._request("GET", f"/v1/jobs/{job_id}")
        if status != 200:
            raise ServiceError(status, body)
        return body

    def jobs(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        path = "/v1/jobs" + (f"?tenant={tenant}" if tenant else "")
        status, body = self._request("GET", path)
        if status != 200:
            raise ServiceError(status, body)
        return body["jobs"]

    def stats(self) -> Dict[str, Any]:
        status, body = self._request("GET", "/v1/stats")
        if status != 200:
            raise ServiceError(status, body)
        return body

    def drain(self) -> Dict[str, Any]:
        status, body = self._request("POST", "/v1/drain")
        if status != 202:
            raise ServiceError(status, body)
        return body

    def shutdown(self) -> Dict[str, Any]:
        status, body = self._request("POST", "/v1/shutdown")
        if status != 202:
            raise ServiceError(status, body)
        return body

    # -- conveniences --------------------------------------------------

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_seconds: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in ("success", "error"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['status']!r} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll_seconds)

    def wait_until_up(self, timeout: float = 30.0) -> None:
        """Block until the server answers /v1/healthz (CI startup)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.health()
                return
            except (OSError, ServiceError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

"""The service job model: wire requests, lifecycle, and task bridging.

A reduction job arrives as JSON (one POST body) and must leave the
front-end as the one shape the execution machinery already speaks:
PR 9's picklable :class:`~repro.parallel.scheduler.InstanceTaskSpec`.
This module is that bridge, plus the small state machine the server
tracks per job.

Two request kinds share one schema:

- **workload** — ``benchmark_id`` + corpus ``profile``: the app is
  generated server-side with the id-keyed corpus generator
  (:func:`repro.workloads.corpus.build_benchmark`), so the same
  ``(profile, benchmark_id)`` names the same application bytes here as
  in an offline ``jlreduce bench`` — the property BENCH_10's identity
  lane checks.
- **app** — ``app_b64`` carries the serialized application itself
  (``repro.bytecode.serializer`` format, base64); the tenant ships
  arbitrary bytecode and the service never needs to know where it
  came from.

Job lifecycle (DESIGN.md §13)::

    queued ──> running ──> success
                    └────> error

Rejected submissions (queue full, quota exhausted, draining) never
become jobs — the refusal is the HTTP response, so the job table holds
only work the service accepted responsibility for.
"""

from __future__ import annotations

import base64
import binascii
import re
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.decompiler.decompile import DECOMPILERS
from repro.harness.experiments import (
    STRATEGY_NAMES,
    ExperimentConfig,
    config_from_payload,
)
from repro.parallel.scheduler import InstanceTaskSpec, StoreSpec
from repro.workloads.corpus import CorpusConfig, build_benchmark

__all__ = [
    "JOB_STATES",
    "Job",
    "JobRequest",
    "PROFILES",
    "job_config",
    "job_spec",
    "workload_pairs",
]

JOB_STATES = ("queued", "running", "success", "error")

_TRANSITIONS = {
    "queued": ("running",),
    "running": ("success", "error"),
    "success": (),
    "error": (),
}

#: Corpus profiles a workload job may name (the CLI's ``--profile``,
#: plus the service-bench ``tiny``).
PROFILES = {
    "tiny": CorpusConfig.tiny,
    "small": CorpusConfig.small,
    "paper": CorpusConfig.paper,
    "njr": CorpusConfig.njr,
}

_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")
_BENCHMARK_RE = re.compile(r"^b(\d{3,})$")

#: Generated-app cache bound: (profile, benchmark_id) → serialized
#: bytes.  Repeat submissions of the same workload spec — the warm-lane
#: pattern — skip regeneration entirely.
_APP_CACHE_MAX = 256
_APP_CACHE: "OrderedDict[Tuple[str, str], Tuple[bytes, int]]" = OrderedDict()


@dataclass(frozen=True)
class JobRequest:
    """One validated reduction job, as submitted over the wire."""

    tenant: str
    benchmark_id: str
    decompiler: str = "alpha"
    strategy: str = "our-reducer"
    scenario: str = "reduction"
    profile: str = "small"
    app_b64: Optional[str] = None
    app_seed: int = 0
    #: :func:`config_from_payload` overrides layered on the server's
    #: base config (budgets, speculation, chaos ... not pool sizing).
    config: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobRequest":
        """Validate a JSON submission body; raises ``ValueError``."""
        if not isinstance(payload, dict):
            raise ValueError("job must be a JSON object")
        known = {
            "tenant", "benchmark_id", "decompiler", "strategy",
            "scenario", "profile", "app_b64", "app_seed", "config",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown job fields: {', '.join(unknown)}")
        tenant = payload.get("tenant", "")
        if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
            raise ValueError(
                "tenant must be 1-64 chars of [A-Za-z0-9._-], "
                "starting alphanumeric"
            )
        benchmark_id = payload.get("benchmark_id", "")
        if not isinstance(benchmark_id, str) or not benchmark_id:
            raise ValueError("benchmark_id is required")
        scenario = payload.get("scenario", "reduction")
        if scenario not in ("reduction", "debloat"):
            raise ValueError(f"unknown scenario {scenario!r}")
        decompiler = payload.get(
            "decompiler", "debloat" if scenario == "debloat" else "alpha"
        )
        if scenario == "reduction" and decompiler not in DECOMPILERS:
            known_names = ", ".join(sorted(DECOMPILERS))
            raise ValueError(
                f"unknown decompiler {decompiler!r}; known: {known_names}"
            )
        strategy = payload.get("strategy", "our-reducer")
        if strategy not in STRATEGY_NAMES:
            raise ValueError(f"unknown strategy {strategy!r}")
        profile = payload.get("profile", "small")
        app_b64 = payload.get("app_b64")
        if app_b64 is None:
            if profile not in PROFILES:
                known_names = ", ".join(sorted(PROFILES))
                raise ValueError(
                    f"unknown profile {profile!r}; known: {known_names}"
                )
            if not _BENCHMARK_RE.match(benchmark_id):
                raise ValueError(
                    f"workload benchmark_id must look like 'b003', "
                    f"got {benchmark_id!r}"
                )
        else:
            if not isinstance(app_b64, str):
                raise ValueError("app_b64 must be a base64 string")
            try:
                base64.b64decode(app_b64, validate=True)
            except (binascii.Error, ValueError):
                raise ValueError("app_b64 is not valid base64") from None
        config = payload.get("config", {})
        if not isinstance(config, dict):
            raise ValueError("config must be an object")
        app_seed = payload.get("app_seed", 0)
        if not isinstance(app_seed, int):
            raise ValueError("app_seed must be an integer")
        return cls(
            tenant=tenant,
            benchmark_id=benchmark_id,
            decompiler=decompiler,
            strategy=strategy,
            scenario=scenario,
            profile=profile,
            app_b64=app_b64,
            app_seed=app_seed,
            config=dict(config),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "benchmark_id": self.benchmark_id,
            "decompiler": self.decompiler,
            "strategy": self.strategy,
            "scenario": self.scenario,
            "profile": self.profile,
            "app_b64": self.app_b64,
            "app_seed": self.app_seed,
            "config": dict(self.config),
        }


@dataclass
class Job:
    """One accepted job's server-side record."""

    job_id: str
    request: JobRequest
    serial: int
    state: str = "queued"
    submitted_unix: float = field(default_factory=time.time)
    #: perf_counter marks, for latency math immune to wall-clock steps.
    submitted_perf: float = field(default_factory=time.perf_counter)
    started_perf: Optional[float] = None
    finished_perf: Optional[float] = None
    outcome: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    def advance(self, state: str) -> None:
        if state not in _TRANSITIONS[self.state]:
            raise ValueError(
                f"job {self.job_id}: illegal transition "
                f"{self.state!r} -> {state!r}"
            )
        self.state = state
        if state == "running":
            self.started_perf = time.perf_counter()
        else:
            self.finished_perf = time.perf_counter()

    @property
    def queue_seconds(self) -> Optional[float]:
        if self.started_perf is None:
            return None
        return self.started_perf - self.submitted_perf

    @property
    def latency_seconds(self) -> Optional[float]:
        if self.finished_perf is None:
            return None
        return self.finished_perf - self.submitted_perf

    def to_dict(self) -> Dict[str, Any]:
        """The HTTP status-endpoint shape (no app bytes echoed back)."""
        return {
            "job_id": self.job_id,
            "tenant": self.request.tenant,
            "benchmark_id": self.request.benchmark_id,
            "decompiler": self.request.decompiler,
            "strategy": self.request.strategy,
            "scenario": self.request.scenario,
            "status": self.state,
            "serial": self.serial,
            "submitted_unix": self.submitted_unix,
            "queue_seconds": self.queue_seconds,
            "latency_seconds": self.latency_seconds,
            "outcome": self.outcome,
            "error": self.error,
        }


def job_config(
    request: JobRequest, base: Optional[ExperimentConfig] = None
) -> ExperimentConfig:
    """The job's effective :class:`ExperimentConfig`.

    Per-job overrides layer on the server's base config; the tenant and
    the single requested strategy always win, so every predicate-store
    entry the job writes lands in the tenant's namespace
    (:func:`~repro.harness.experiments.oracle_fingerprint`) and one job
    is always exactly one strategy run.
    """
    config = config_from_payload(request.config, base=base)
    return replace(
        config,
        strategies=(request.strategy,),
        tenant=request.tenant,
    )


def _workload_app(profile: str, benchmark_id: str) -> Tuple[bytes, int]:
    """Generate (and cache) a workload benchmark's serialized app."""
    key = (profile, benchmark_id)
    cached = _APP_CACHE.get(key)
    if cached is not None:
        _APP_CACHE.move_to_end(key)
        return cached
    from repro.bytecode.serializer import serialize_application

    index = int(_BENCHMARK_RE.match(benchmark_id).group(1))
    benchmark = build_benchmark(index, PROFILES[profile]())
    entry = (serialize_application(benchmark.app), benchmark.seed)
    _APP_CACHE[key] = entry
    while len(_APP_CACHE) > _APP_CACHE_MAX:
        _APP_CACHE.popitem(last=False)
    return entry


def workload_pairs(
    profile: str, benchmarks: int
) -> "list[Tuple[str, str]]":
    """The runnable (benchmark_id, decompiler) pairs of a profile.

    A generated benchmark only carries instances for decompilers that
    actually miscompile it — any other pair has no failure to preserve
    and the job errors at run time.  Load generators and the ``submit``
    CLI use this to build mixes of real work.
    """
    if profile not in PROFILES:
        known_names = ", ".join(sorted(PROFILES))
        raise ValueError(f"unknown profile {profile!r}; known: {known_names}")
    pairs = []
    for index in range(benchmarks):
        benchmark = build_benchmark(index, PROFILES[profile]())
        for instance in benchmark.instances:
            pairs.append((benchmark.benchmark_id, instance.decompiler))
    return pairs


def job_spec(
    job: Job,
    base: Optional[ExperimentConfig] = None,
    store_spec: Optional[StoreSpec] = None,
    probe_workers: Optional[int] = None,
    ctx: Optional[Dict[str, Any]] = None,
) -> InstanceTaskSpec:
    """The job as a pool-executable :class:`InstanceTaskSpec`.

    ``serial_base`` is the job's admission serial, so worker spans and
    ledger events land in per-job serial slots and the merged trace
    interleaves deterministically (`trace summarize` / ``timeline``
    work unchanged on service output).
    """
    request = job.request
    if request.app_b64 is not None:
        app_bytes = base64.b64decode(request.app_b64)
        app_seed = request.app_seed
    else:
        app_bytes, app_seed = _workload_app(
            request.profile, request.benchmark_id
        )
    return InstanceTaskSpec(
        benchmark_id=request.benchmark_id,
        decompiler=request.decompiler,
        scenario=request.scenario,
        strategies=(request.strategy,),
        serial_base=job.serial,
        app_seed=app_seed,
        config=job_config(request, base),
        app_bytes=app_bytes,
        store=store_spec,
        probe_workers=probe_workers,
        ctx=ctx,
    )

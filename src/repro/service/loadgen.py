"""An asyncio load generator for the reduction service.

BENCH_10's whole point is a measured curve — jobs/sec and p50/p95/p99
end-to-end latency at 100+ *concurrent* jobs — and a blocking client
cannot produce one.  This module drives the service the way a fleet of
tenants would: up to ``concurrency`` jobs in flight at once (submit →
poll → terminal state counts as one job's lifetime), per-tenant
attribution, and honest handling of backpressure (a 429 sleeps the
server's ``retry_after`` hint and resubmits; the retries are counted,
not hidden).

Used by ``jlreduce loadgen`` and ``benchmarks/bench_service.py``; tests
point it at a thread-backend server for speed.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["build_jobs", "percentile", "run_loadgen"]

#: Submission attempts per job before the generator gives up on it.
MAX_SUBMIT_ATTEMPTS = 200


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]); 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * len(ordered))) - 1))
    if q <= 0:
        rank = 0
    return ordered[rank]


def build_jobs(
    tenants: Dict[str, int],
    total: int,
    profile: str = "small",
    benchmarks: int = 3,
    strategy: str = "our-reducer",
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    config: Optional[Dict[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """A deterministic tenant-mix job list.

    ``tenants`` maps name → share; jobs are dealt proportionally
    (largest-remainder) and interleaved round-robin, cycling through
    the runnable (benchmark, decompiler) pairs of the profile's first
    ``benchmarks`` benchmarks (or an explicit ``pairs`` list) so
    repeat specs exercise the warm store.
    """
    if total < 1:
        raise ValueError(f"total must be >= 1, got {total}")
    if not tenants:
        raise ValueError("need at least one tenant")
    shares = sum(tenants.values())
    if shares <= 0:
        raise ValueError("tenant shares must sum > 0")
    if pairs is None:
        from repro.service.jobs import workload_pairs

        pairs = workload_pairs(profile, benchmarks)
    if not pairs:
        raise ValueError(f"profile {profile!r} yields no runnable pairs")
    counts = {
        name: (share * total) // shares for name, share in tenants.items()
    }
    remainders = sorted(
        tenants,
        key=lambda name: (
            -((tenants[name] * total) % shares), name
        ),
    )
    short = total - sum(counts.values())
    for name in remainders[:short]:
        counts[name] += 1
    queues = {
        name: [
            {
                "tenant": name,
                "benchmark_id": pairs[i % len(pairs)][0],
                "profile": profile,
                "strategy": strategy,
                "decompiler": pairs[i % len(pairs)][1],
                **({"config": dict(config)} if config else {}),
            }
            for i in range(counts[name])
        ]
        for name in tenants
    }
    jobs: List[Dict[str, Any]] = []
    names = sorted(tenants)
    while any(queues.values()):
        for name in names:
            if queues[name]:
                jobs.append(queues[name].pop(0))
    return jobs


# ----------------------------------------------------------------------
# Raw asyncio HTTP (the client side of server.py's HTTP subset)
# ----------------------------------------------------------------------


async def _http_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
    timeout: float = 30.0,
) -> Tuple[int, Dict[str, Any]]:
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout
    )
    try:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Content-Type: application/json\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("ascii") + body)
        await writer.drain()
        status_line = await asyncio.wait_for(
            reader.readline(), timeout=timeout
        )
        status = int(status_line.split()[1])
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        raw = await reader.readexactly(content_length)
        return status, json.loads(raw.decode("utf-8")) if raw else {}
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# ----------------------------------------------------------------------
# The generator
# ----------------------------------------------------------------------


class _Tally:
    def __init__(self) -> None:
        self.latencies: List[float] = []
        self.by_tenant: Dict[str, List[float]] = {}
        self.errors = 0
        self.retries_429 = 0
        self.gave_up = 0


async def _drive_job(
    host: str,
    port: int,
    job: Dict[str, Any],
    sem: asyncio.Semaphore,
    tally: _Tally,
    poll_seconds: float,
) -> None:
    async with sem:
        start = time.perf_counter()
        job_id = None
        for _ in range(MAX_SUBMIT_ATTEMPTS):
            status, body = await _http_json(
                host, port, "POST", "/v1/jobs", job
            )
            if status == 202:
                job_id = body["job_id"]
                break
            if status == 429:
                tally.retries_429 += 1
                hint = body.get("retry_after") or 1.0
                # The hint shapes load honestly, but a bench must not
                # sleep a full server minute per refusal.
                await asyncio.sleep(min(float(hint), 0.25))
                continue
            tally.errors += 1
            return
        if job_id is None:
            tally.gave_up += 1
            return
        while True:
            status, body = await _http_json(
                host, port, "GET", f"/v1/jobs/{job_id}"
            )
            if status == 200 and body["status"] in ("success", "error"):
                break
            await asyncio.sleep(poll_seconds)
        latency = time.perf_counter() - start
        if body["status"] == "error":
            tally.errors += 1
            return
        tally.latencies.append(latency)
        tally.by_tenant.setdefault(job["tenant"], []).append(latency)


def _latency_stats(values: Sequence[float]) -> Dict[str, float]:
    return {
        "count": len(values),
        "mean": sum(values) / len(values) if values else 0.0,
        "p50": percentile(values, 0.50),
        "p95": percentile(values, 0.95),
        "p99": percentile(values, 0.99),
        "max": max(values) if values else 0.0,
    }


async def _run_async(
    host: str,
    port: int,
    jobs: Sequence[Dict[str, Any]],
    concurrency: int,
    poll_seconds: float,
) -> Dict[str, Any]:
    sem = asyncio.Semaphore(concurrency)
    tally = _Tally()
    start = time.perf_counter()
    await asyncio.gather(*[
        _drive_job(host, port, job, sem, tally, poll_seconds)
        for job in jobs
    ])
    wall = time.perf_counter() - start
    completed = len(tally.latencies)
    return {
        "jobs": len(jobs),
        "concurrency": concurrency,
        "completed": completed,
        "errors": tally.errors,
        "gave_up": tally.gave_up,
        "retries_429": tally.retries_429,
        "wall_seconds": round(wall, 4),
        "jobs_per_second": round(completed / wall, 3) if wall else 0.0,
        "latency": _latency_stats(tally.latencies),
        "per_tenant": {
            tenant: _latency_stats(values)
            for tenant, values in sorted(tally.by_tenant.items())
        },
    }


def run_loadgen(
    host: str,
    port: int,
    jobs: Sequence[Dict[str, Any]],
    concurrency: int = 100,
    poll_seconds: float = 0.02,
) -> Dict[str, Any]:
    """Drive a job list at the service; returns the measured curve.

    ``concurrency`` bounds jobs simultaneously in their submit→done
    lifetime — the "100+ concurrent jobs" axis of BENCH_10.  Latency is
    end-to-end per job (submission attempt through observed terminal
    status), so queueing and backpressure show up in the percentiles,
    exactly as a tenant would experience them.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    return asyncio.run(
        _run_async(host, port, jobs, concurrency, poll_seconds)
    )
